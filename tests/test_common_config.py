"""Unit tests for configuration objects and their validation."""

from __future__ import annotations

import pytest

from repro.common import (
    ConfigurationError,
    LoggingConfig,
    LSMerkleConfig,
    PlacementConfig,
    Region,
    SecurityConfig,
    SystemConfig,
    WorkloadConfig,
)
from repro.common.config import validate_regions


class TestLSMerkleConfig:
    def test_paper_default_matches_section_vi(self):
        config = LSMerkleConfig.paper_default()
        assert config.level_thresholds == (10, 10, 100, 1000)
        assert config.num_levels == 4

    def test_exposition_example_matches_figure3(self):
        config = LSMerkleConfig.exposition_example()
        assert config.level_thresholds == (2, 2, 4)

    def test_rejects_single_level(self):
        with pytest.raises(ConfigurationError):
            LSMerkleConfig(level_thresholds=(10,))

    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ConfigurationError):
            LSMerkleConfig(level_thresholds=(10, 0))


class TestLoggingConfig:
    def test_defaults(self):
        config = LoggingConfig()
        assert config.block_size == 100
        assert config.return_block_on_add is True

    def test_rejects_non_positive_block_size(self):
        with pytest.raises(ConfigurationError):
            LoggingConfig(block_size=0)

    def test_rejects_negative_timeout(self):
        with pytest.raises(ConfigurationError):
            LoggingConfig(block_timeout_s=-1.0)


class TestSecurityConfig:
    def test_defaults_are_valid(self):
        config = SecurityConfig()
        assert config.signature_scheme == "hmac"
        assert config.freshness_window_s is None

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            SecurityConfig(signature_scheme="rsa")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dispute_timeout_s": 0},
            {"gossip_interval_s": 0},
            {"freshness_window_s": -1.0},
        ],
    )
    def test_rejects_non_positive_intervals(self, kwargs):
        with pytest.raises(ConfigurationError):
            SecurityConfig(**kwargs)


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        config = WorkloadConfig()
        assert config.batch_size == 100
        assert config.value_size == 100
        assert config.key_space == 100_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_clients": 0},
            {"batch_size": -1},
            {"value_size": 0},
            {"read_fraction": 1.5},
            {"read_fraction": -0.1},
            {"key_space": 0},
            {"key_distribution": "pareto"},
            {"operations_per_client": 0},
        ],
    )
    def test_rejects_invalid_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(**kwargs)

    def test_with_overrides_returns_new_object(self):
        config = WorkloadConfig()
        changed = config.with_overrides(batch_size=500)
        assert changed.batch_size == 500
        assert config.batch_size == 100


class TestSystemConfig:
    def test_paper_default_placement(self):
        config = SystemConfig.paper_default()
        assert config.placement.client_region is Region.CALIFORNIA
        assert config.placement.edge_region is Region.CALIFORNIA
        assert config.placement.cloud_region is Region.VIRGINIA

    def test_with_overrides_replaces_nested_config(self):
        config = SystemConfig.paper_default()
        changed = config.with_overrides(
            placement=PlacementConfig(cloud_region=Region.MUMBAI)
        )
        assert changed.placement.cloud_region is Region.MUMBAI
        assert config.placement.cloud_region is Region.VIRGINIA

    def test_rejects_zero_edge_nodes(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_edge_nodes=0)


class TestRegions:
    def test_short_codes_match_paper(self):
        assert Region.CALIFORNIA.short_code == "C"
        assert Region.OREGON.short_code == "O"
        assert Region.VIRGINIA.short_code == "V"
        assert Region.IRELAND.short_code == "I"
        assert Region.MUMBAI.short_code == "M"

    def test_from_short_code_roundtrip(self):
        for region in Region:
            assert Region.from_short_code(region.short_code) is region

    def test_from_short_code_unknown(self):
        with pytest.raises(ValueError):
            Region.from_short_code("X")

    def test_validate_regions_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            validate_regions([Region.CALIFORNIA, Region.CALIFORNIA])

    def test_validate_regions_accepts_distinct(self):
        validate_regions([Region.CALIFORNIA, Region.MUMBAI])
