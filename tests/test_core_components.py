"""Unit tests for the core components: commit tracking, lazy certification,
disputes/punishment, and gossip."""

from __future__ import annotations

import pytest

from repro.common import ProtocolError
from repro.common.identifiers import OperationId, OperationKind, client_id, cloud_id, edge_id
from repro.core.certification import LazyCertifier
from repro.core.commit import CommitTracker
from repro.core.dispute import PunishmentLedger, judge_dispute
from repro.core.gossip import GossipView, build_gossip, build_gossip_batch, verify_gossip
from repro.log.proofs import CommitPhase, issue_block_proof, issue_phase_one_receipt
from repro.messages.log_messages import DisputeRequest, ReadResponseStatement

ALICE = client_id("alice")
EDGE = edge_id("edge-0")
CLOUD = cloud_id()


def op(sequence: int) -> OperationId:
    return OperationId(client=ALICE, sequence=sequence)


class TestCommitTracker:
    def test_register_and_phase_progression(self):
        tracker = CommitTracker()
        tracker.register(op(0), OperationKind.PUT, issued_at=1.0)
        record = tracker.mark_phase_one(op(0), at=1.5, block_id=7)
        assert record.phase is CommitPhase.PHASE_ONE
        assert record.phase_one_latency == pytest.approx(0.5)
        record = tracker.mark_phase_two(op(0), at=2.0)
        assert record.phase is CommitPhase.PHASE_TWO
        assert record.phase_two_latency == pytest.approx(1.0)

    def test_duplicate_registration_rejected(self):
        tracker = CommitTracker()
        tracker.register(op(0), OperationKind.ADD, 0.0)
        with pytest.raises(ProtocolError):
            tracker.register(op(0), OperationKind.ADD, 0.0)

    def test_unknown_operation_rejected(self):
        tracker = CommitTracker()
        with pytest.raises(ProtocolError):
            tracker.get(op(9))

    def test_phase_two_implies_phase_one(self):
        tracker = CommitTracker()
        tracker.register(op(0), OperationKind.READ, 0.0)
        record = tracker.mark_phase_two(op(0), at=3.0)
        assert record.phase_one_at == 3.0
        assert record.phase is CommitPhase.PHASE_TWO

    def test_failed_operations_stay_failed(self):
        tracker = CommitTracker()
        tracker.register(op(0), OperationKind.PUT, 0.0)
        tracker.mark_failed(op(0), at=1.0, reason="bad proof")
        record = tracker.mark_phase_one(op(0), at=2.0)
        assert record.phase is CommitPhase.FAILED
        assert record.failure_reason == "bad proof"

    def test_block_watching_and_resolution(self):
        tracker = CommitTracker()
        tracker.register(op(0), OperationKind.GET, 0.0)
        tracker.watch_block(op(0), 3)
        tracker.watch_block(op(0), 4)
        assert not tracker.resolve_block(op(0), 3)
        assert tracker.resolve_block(op(0), 4)

    def test_operations_waiting_on_block_excludes_committed(self):
        tracker = CommitTracker()
        tracker.register(op(0), OperationKind.PUT, 0.0)
        tracker.register(op(1), OperationKind.PUT, 0.0)
        tracker.mark_phase_one(op(0), 1.0, block_id=5)
        tracker.mark_phase_one(op(1), 1.0, block_id=5)
        tracker.mark_phase_two(op(1), 2.0)
        waiting = tracker.operations_waiting_on_block(5)
        assert [record.operation_id for record in waiting] == [op(0)]

    def test_phase_change_hook_invoked(self):
        tracker = CommitTracker()
        seen = []
        tracker.on_phase_change = lambda record, phase: seen.append(phase)
        tracker.register(op(0), OperationKind.PUT, 0.0)
        tracker.mark_phase_one(op(0), 1.0)
        tracker.mark_phase_two(op(0), 2.0)
        assert seen == [CommitPhase.PHASE_ONE, CommitPhase.PHASE_TWO]

    def test_latency_aggregation_across_trackers(self):
        first, second = CommitTracker(), CommitTracker()
        first.register(op(0), OperationKind.PUT, 0.0)
        first.mark_phase_one(op(0), 0.5)
        second.register(OperationId(client_id("bob"), 0), OperationKind.PUT, 0.0)
        second.mark_phase_one(OperationId(client_id("bob"), 0), 1.5)
        pooled = CommitTracker.merge_latencies([first, second])
        assert sorted(pooled) == [0.5, 1.5]

    def test_count_in_phase(self):
        tracker = CommitTracker()
        tracker.register(op(0), OperationKind.PUT, 0.0)
        tracker.register(op(1), OperationKind.PUT, 0.0)
        tracker.mark_phase_one(op(1), 1.0)
        assert tracker.count_in_phase(CommitPhase.PENDING) == 1
        assert tracker.count_in_phase(CommitPhase.PHASE_ONE) == 1
        assert len(tracker.pending_operations()) == 1
        assert len(tracker.completed_operations()) == 1


class TestLazyCertifier:
    def _proof(self, registry, block, digest=None):
        return issue_block_proof(
            registry, CLOUD, EDGE, block.block_id, digest or block.digest(), 1.0
        )

    def test_track_subscribe_complete_flow(self, registry, sample_block):
        certifier = LazyCertifier()
        certifier.track(sample_block.block_id, sample_block.digest(), requested_at=0.0)
        assert certifier.subscribe(sample_block.block_id, ALICE, op(0)) is None
        subscribers = certifier.complete(self._proof(registry, sample_block))
        assert subscribers == [(ALICE, op(0))]
        assert certifier.certified_count == 1
        # Subscribing after certification returns the proof immediately.
        assert certifier.subscribe(sample_block.block_id, ALICE, op(1)) is not None

    def test_duplicate_tracking_rejected(self, sample_block):
        certifier = LazyCertifier()
        certifier.track(0, sample_block.digest(), 0.0)
        with pytest.raises(ProtocolError):
            certifier.track(0, sample_block.digest(), 0.0)

    def test_subscribe_unknown_block_rejected(self):
        certifier = LazyCertifier()
        with pytest.raises(ProtocolError):
            certifier.subscribe(9, ALICE, op(0))

    def test_complete_with_wrong_digest_rejected(self, registry, sample_block):
        certifier = LazyCertifier()
        certifier.track(sample_block.block_id, sample_block.digest(), 0.0)
        bad_proof = self._proof(registry, sample_block, digest="0" * 64)
        with pytest.raises(ProtocolError):
            certifier.complete(bad_proof)

    def test_overdue_detection(self, sample_block):
        certifier = LazyCertifier()
        certifier.track(0, sample_block.digest(), requested_at=0.0)
        certifier.track(1, sample_block.digest(), requested_at=8.0)
        assert len(certifier.overdue(now=10.0, timeout_s=5.0)) == 1
        assert len(certifier.overdue(now=1.0, timeout_s=5.0)) == 0
        assert len(certifier.outstanding()) == 2


class TestDisputes:
    def test_missing_proof_dispute_punishes_equivocating_edge(self, registry, sample_block):
        receipt = issue_phase_one_receipt(registry, EDGE, sample_block, 0.0)
        dispute = DisputeRequest(
            client=ALICE, edge=EDGE, block_id=0, kind="missing-proof", receipt=receipt
        )
        judgement = judge_dispute(dispute, certified_digest="f" * 64, registry=registry,
                                  certified_log_size=1)
        assert judgement.edge_punished

    def test_missing_proof_dispute_with_matching_digest_is_rejected(self, registry, sample_block):
        receipt = issue_phase_one_receipt(registry, EDGE, sample_block, 0.0)
        dispute = DisputeRequest(
            client=ALICE, edge=EDGE, block_id=0, kind="missing-proof", receipt=receipt
        )
        judgement = judge_dispute(
            dispute, certified_digest=sample_block.digest(), registry=registry,
            certified_log_size=1,
        )
        assert not judgement.edge_punished

    def test_missing_proof_dispute_when_never_certified(self, registry, sample_block):
        receipt = issue_phase_one_receipt(registry, EDGE, sample_block, 0.0)
        dispute = DisputeRequest(
            client=ALICE, edge=EDGE, block_id=0, kind="missing-proof", receipt=receipt
        )
        judgement = judge_dispute(dispute, None, registry, certified_log_size=0)
        assert judgement.edge_punished

    def test_dispute_without_evidence_rejected(self, registry):
        dispute = DisputeRequest(client=ALICE, edge=EDGE, block_id=0, kind="missing-proof")
        assert not judge_dispute(dispute, None, registry, 0).edge_punished

    def test_read_mismatch_dispute(self, registry, sample_block):
        statement = ReadResponseStatement(
            edge=EDGE, operation_id=op(0), block_id=0, found=True,
            block_digest="a" * 64, issued_at=1.0,
        )
        signature = registry.sign(EDGE, statement)
        dispute = DisputeRequest(
            client=ALICE, edge=EDGE, block_id=0, kind="read-mismatch",
            read_statement=statement, read_signature=signature,
        )
        judgement = judge_dispute(dispute, certified_digest=sample_block.digest(),
                                  registry=registry, certified_log_size=1)
        assert judgement.edge_punished

    def test_omission_dispute_with_gossip_evidence(self, registry):
        statement = ReadResponseStatement(
            edge=EDGE, operation_id=op(0), block_id=0, found=False,
            block_digest=None, issued_at=1.0,
        )
        signature = registry.sign(EDGE, statement)
        dispute = DisputeRequest(
            client=ALICE, edge=EDGE, block_id=0, kind="omission",
            read_statement=statement, read_signature=signature,
        )
        punished = judge_dispute(dispute, certified_digest="b" * 64,
                                 registry=registry, certified_log_size=3)
        assert punished.edge_punished
        truthful = judge_dispute(dispute, certified_digest=None,
                                 registry=registry, certified_log_size=0)
        assert not truthful.edge_punished

    def test_unknown_dispute_kind(self, registry):
        dispute = DisputeRequest(client=ALICE, edge=EDGE, block_id=0, kind="weird")
        assert not judge_dispute(dispute, None, registry, 0).edge_punished

    def test_punishment_ledger(self):
        ledger = PunishmentLedger(punishment_score=100.0)
        assert not ledger.is_punished(EDGE)
        ledger.punish(EDGE, "lied about block 3", recorded_at=1.0, block_id=3)
        ledger.punish(EDGE, "lied again", recorded_at=2.0, block_id=4)
        assert ledger.is_punished(EDGE)
        assert len(ledger) == 2
        assert ledger.total_score(EDGE) == 200.0
        assert len(ledger.records_for(EDGE)) == 2
        assert not ledger.is_punished(edge_id("edge-1"))


class TestGossip:
    def test_build_and_verify(self, registry):
        message = build_gossip(registry, CLOUD, EDGE, certified_log_size=5, timestamp=2.0)
        assert verify_gossip(registry, message, cloud=CLOUD)
        assert not verify_gossip(registry, message, cloud=edge_id("edge-0"))

    def test_view_update_and_monotonicity(self, registry):
        view = GossipView(edge=EDGE)
        first = build_gossip(registry, CLOUD, EDGE, 3, timestamp=1.0)
        second = build_gossip(registry, CLOUD, EDGE, 5, timestamp=2.0)
        stale = build_gossip(registry, CLOUD, EDGE, 1, timestamp=0.5)
        assert view.update(first)
        assert view.update(second)
        assert not view.update(stale)
        assert view.certified_log_size == 5
        assert view.block_should_exist(4)
        assert not view.block_should_exist(5)

    def test_view_ignores_other_edges(self, registry):
        view = GossipView(edge=EDGE)
        other = build_gossip(registry, CLOUD, edge_id("edge-9"), 10, timestamp=1.0)
        assert not view.update(other)
        assert view.certified_log_size == 0

    def test_wrong_edge_message_leaves_view_untouched_even_when_newer(self, registry):
        """Pin: a strictly-newer message for a *different* edge is ignored
        entirely — returns ``False`` and advances neither the size nor
        ``as_of`` (the view's clock tracks its own edge only)."""

        view = GossipView(edge=EDGE)
        view.update(build_gossip(registry, CLOUD, EDGE, 3, timestamp=1.0))
        newer_other = build_gossip(registry, CLOUD, edge_id("edge-9"), 99, timestamp=50.0)
        assert not view.update(newer_other)
        assert view.certified_log_size == 3
        assert view.as_of == 1.0
        # The untouched as_of means later gossip for this edge still applies.
        assert view.update(build_gossip(registry, CLOUD, EDGE, 4, timestamp=2.0))

    def test_equal_timestamp_behavior(self, registry):
        """Pin: a message at exactly ``as_of`` is applied, not rejected —
        only strictly-older timestamps are dropped.  Sizes are monotone, so
        an equal-timestamp message can confirm (no advance, ``False``) or
        advance (``True``) the view, never shrink it."""

        view = GossipView(edge=EDGE)
        assert view.update(build_gossip(registry, CLOUD, EDGE, 3, timestamp=1.0))
        # Equal timestamp, same size: accepted but nothing advances.
        assert not view.update(build_gossip(registry, CLOUD, EDGE, 3, timestamp=1.0))
        assert view.certified_log_size == 3 and view.as_of == 1.0
        # Equal timestamp, larger size: advances.
        assert view.update(build_gossip(registry, CLOUD, EDGE, 5, timestamp=1.0))
        assert view.certified_log_size == 5
        # Equal timestamp, smaller size: never shrinks.
        assert not view.update(build_gossip(registry, CLOUD, EDGE, 2, timestamp=1.0))
        assert view.certified_log_size == 5 and view.as_of == 1.0


class TestGossipBatch:
    def test_build_and_verify_batch(self, registry):
        sizes = {EDGE: 5, edge_id("edge-9"): 7}
        message = build_gossip_batch(registry, CLOUD, sizes, timestamp=2.0)
        assert verify_gossip(registry, message, cloud=CLOUD)
        assert not verify_gossip(registry, message, cloud=EDGE)
        assert message.statement.size_for(EDGE) == 5
        assert message.statement.size_for(edge_id("edge-9")) == 7
        assert message.statement.size_for(edge_id("edge-nope")) is None
        # Entries are ordered by edge id, so the signed bytes do not depend
        # on the mapping's iteration order.
        reversed_input = build_gossip_batch(
            registry, CLOUD, dict(reversed(list(sizes.items()))), timestamp=2.0
        )
        assert reversed_input.statement == message.statement

    def test_view_consumes_batched_form(self, registry):
        view = GossipView(edge=EDGE)
        message = build_gossip_batch(
            registry, CLOUD, {EDGE: 4, edge_id("edge-9"): 9}, timestamp=1.0
        )
        assert view.update(message)
        assert view.certified_log_size == 4
        assert view.as_of == 1.0
        assert view.block_should_exist(3)
        assert not view.block_should_exist(4)

    def test_batch_without_own_edge_ignored(self, registry):
        view = GossipView(edge=EDGE)
        view.update(build_gossip(registry, CLOUD, EDGE, 2, timestamp=1.0))
        absent = build_gossip_batch(
            registry, CLOUD, {edge_id("edge-9"): 50}, timestamp=9.0
        )
        assert not view.update(absent)
        assert view.certified_log_size == 2
        assert view.as_of == 1.0

    def test_batch_monotonicity_matches_single_form(self, registry):
        view = GossipView(edge=EDGE)
        assert view.update(build_gossip_batch(registry, CLOUD, {EDGE: 3}, timestamp=2.0))
        stale = build_gossip_batch(registry, CLOUD, {EDGE: 10}, timestamp=1.0)
        assert not view.update(stale)
        assert view.certified_log_size == 3
        equal = build_gossip_batch(registry, CLOUD, {EDGE: 6}, timestamp=2.0)
        assert view.update(equal)
        assert view.certified_log_size == 6

    def test_wire_size_amortizes_signature(self, registry):
        sizes = {edge_id(f"edge-{i}"): i for i in range(8)}
        batch = build_gossip_batch(registry, CLOUD, sizes, timestamp=1.0)
        singles = [
            build_gossip(registry, CLOUD, edge, size, timestamp=1.0)
            for edge, size in sizes.items()
        ]
        assert batch.wire_size < sum(message.wire_size for message in singles)
