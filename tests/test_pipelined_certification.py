"""Tests for the pipelined (windowed) certification engine.

Covers the LazyCertifier in-flight window (batch ids, out-of-order
retirement, selective retry, cancellation), the edge's windowed dispatch and
window-envelope requests, adversarial cases at depth ≥ 4 (out-of-order and
duplicate certificates, a malicious cloud signing a reordered batch, a lost
request retried selectively with its late duplicate absorbed idempotently),
the mid-handoff drain with an in-flight window, the same-signer Schnorr
batch verification substrate, and the wall-clock pipeline engine the
``cert_pipeline_*`` benchmark rows measure.
"""

from __future__ import annotations

import pytest

from repro.common import ProtocolError
from repro.common.config import (
    ConfigurationError,
    LoggingConfig,
    LSMerkleConfig,
    SecurityConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.common.identifiers import client_id, cloud_id, edge_id
from repro.common.regions import Region
from repro.core.certification import LazyCertifier
from repro.core.certify_engine import ParallelCertifyEngine
from repro.core.certify_pipeline import EdgeCertifyPipeline, run_certify_pipeline
from repro.crypto.signatures import KeyRegistry
from repro.faults import RetryPolicy
from repro.log.block import build_block
from repro.log.entry import make_entry
from repro.log.proofs import (
    build_certify_batch_tree,
    issue_batch_certificate,
    issue_block_proof,
    verify_batch_certificates,
)
from repro.messages.log_messages import (
    BatchCertificateMessage,
    CertifyBatchRequest,
    CertifyWindowRequest,
)
from repro.nodes.cloud import CloudNode
from repro.nodes.edge import EdgeNode
from repro.sim.environment import local_environment
from repro.sim.parameters import SimulationParameters

CLOUD = cloud_id("cloud-0")
EDGE = edge_id("edge-0")
ALICE = client_id("alice")


def pipeline_config(batch_size=3, depth=4):
    return SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(
            block_size=4,
            block_timeout_s=0.02,
            certify_batch_size=batch_size,
            certify_flush_timeout_s=0.02,
            certify_pipeline_depth=depth,
        ),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )


def make_pipelined_edge(num_blocks, batch_size=3, depth=4):
    """A colocated edge/cloud pair with *num_blocks* tracked, queued blocks."""

    env = local_environment(seed=17)
    config = pipeline_config(batch_size, depth)
    cloud = CloudNode(env=env, config=config, region=Region.CALIFORNIA)
    edge = EdgeNode(env=env, cloud=cloud.node_id, config=config)
    env.registry.register(ALICE)
    for index in range(num_blocks):
        entries = [
            make_entry(
                env.registry,
                ALICE,
                sequence=index * 4 + offset,
                payload=b"p-%d" % (index * 4 + offset),
                produced_at=0.0,
            )
            for offset in range(4)
        ]
        block = build_block(edge.node_id, index, entries, created_at=0.0)
        edge.log.append(block)
        edge.certifier.track(index, block.digest(), requested_at=0.0)
        edge.certifier.enqueue_for_dispatch(index)
    return env, cloud, edge


# ----------------------------------------------------------------------
# LazyCertifier windowed state
# ----------------------------------------------------------------------
class TestInFlightWindow:
    def make(self, count):
        certifier = LazyCertifier()
        for block_id in range(count):
            certifier.track(block_id, f"{block_id:064x}", requested_at=1.0)
        return certifier

    def proof(self, registry, block_id):
        return issue_block_proof(
            registry, CLOUD, EDGE, block_id, f"{block_id:064x}", 2.0
        )

    def test_begin_and_retire_out_of_order(self, registry):
        certifier = self.make(4)
        first = certifier.begin_batch([0, 1], now=1.0)
        second = certifier.begin_batch([2, 3], now=1.1)
        assert certifier.in_flight_count == 2
        assert certifier.in_flight(0) and certifier.in_flight(3)
        # The *second* batch's certificate lands first.
        certifier.complete(self.proof(registry, 3))
        certifier.complete(self.proof(registry, 2))
        assert certifier.in_flight_count == 1
        assert second.batch_id not in {
            batch.batch_id for batch in certifier.in_flight_batches()
        }
        certifier.complete(self.proof(registry, 0))
        certifier.complete(self.proof(registry, 1))
        assert certifier.in_flight_count == 0
        assert certifier.retired_batch_count == 2
        assert first.remaining == set()

    def test_begin_batch_rejects_double_membership_and_empty(self):
        certifier = self.make(2)
        certifier.begin_batch([0], now=1.0)
        with pytest.raises(ProtocolError):
            certifier.begin_batch([0, 1], now=1.1)
        with pytest.raises(ProtocolError):
            certifier.begin_batch([], now=1.2)
        with pytest.raises(ProtocolError):
            certifier.begin_batch([99], now=1.3)

    def test_overdue_batches_and_selective_retry_clock(self, registry):
        certifier = self.make(4)
        certifier.begin_batch([0, 1], now=1.0)
        late = certifier.begin_batch([2, 3], now=5.0)
        overdue = certifier.overdue_batches(now=4.0, timeout_s=2.0)
        assert [batch.block_ids for batch in overdue] == [(0, 1)]
        # Retrying the lost batch resets only that batch's clock.
        tasks = certifier.record_batch_retry(overdue[0].batch_id, now=4.0)
        assert [task.block_id for task in tasks] == [0, 1]
        assert all(task.retries == 1 for task in tasks)
        assert certifier.overdue_batches(now=5.5, timeout_s=2.0) == ()
        assert late.retries == 0
        # Tasks riding an in-flight batch are not re-retried by the
        # per-task overdue scan (their clocks were reset with the batch).
        assert certifier.overdue(now=5.5, timeout_s=2.0) == ()

    def test_cancel_batch_requeues_uncertified_members_in_front(self, registry):
        certifier = self.make(4)
        certifier.enqueue_for_dispatch(3)
        batch = certifier.begin_batch([0, 1, 2], now=1.0)
        certifier.complete(self.proof(registry, 1))
        requeued = certifier.cancel_batch(batch.batch_id)
        assert requeued == (0, 2)
        assert certifier.in_flight_count == 0
        assert not certifier.in_flight(0)
        drained = certifier.drain_dispatch_queue()
        assert [task.block_id for task in drained] == [0, 2, 3]

    def test_duplicate_completion_is_idempotent(self, registry):
        certifier = self.make(2)
        certifier.begin_batch([0, 1], now=1.0)
        certifier.complete(self.proof(registry, 0))
        certifier.complete(self.proof(registry, 0))  # duplicate
        assert certifier.certified_count == 1
        assert certifier.in_flight_count == 1
        certifier.complete(self.proof(registry, 1))
        assert certifier.in_flight_count == 0
        assert certifier.retired_batch_count == 1

    def test_abandon_in_flight_frees_the_slot(self, registry):
        certifier = self.make(2)
        batch = certifier.begin_batch([0, 1], now=1.0)
        certifier.abandon_in_flight(0)
        assert certifier.in_flight_count == 1
        certifier.complete(self.proof(registry, 1))
        assert certifier.in_flight_count == 0
        assert batch.remaining == set()


# ----------------------------------------------------------------------
# Edge windowed dispatch + window envelope
# ----------------------------------------------------------------------
class TestWindowedDispatch:
    def test_window_bounds_in_flight_batches(self):
        env, cloud, edge = make_pipelined_edge(12, batch_size=3, depth=2)
        edge._pump_certify_pipeline()
        # Only `depth` batches leave; the rest stay queued.
        assert edge.certifier.in_flight_count == 2
        assert edge.certifier.pending_dispatch_count == 6
        assert edge.stats.get("certify_window_stalls", 0) == 1
        env.run()
        # Retirements pump the queue through the window until dry.
        assert edge.certifier.certified_count == 12
        assert edge.certifier.in_flight_count == 0
        assert edge.stats["certify_batches"] == 4

    def test_multi_batch_pump_ships_one_window_envelope(self):
        env, cloud, edge = make_pipelined_edge(9, batch_size=3, depth=4)
        sent = []
        original_send = env.send

        def recording_send(src, dst, message):
            sent.append(message)
            return original_send(src, dst, message)

        env.send = recording_send
        edge._pump_certify_pipeline()
        windows = [m for m in sent if isinstance(m, CertifyWindowRequest)]
        batches = [m for m in sent if isinstance(m, CertifyBatchRequest)]
        assert len(windows) == 1 and not batches
        assert len(windows[0].batches) == 3
        assert windows[0].num_blocks == 9
        assert edge.stats["certify_windows"] == 1
        assert edge.stats["certify_requests"] == 1
        assert edge.stats["certify_batches"] == 3
        env.run()
        # One certificate per inner batch; all slots retired.
        assert edge.certifier.certified_count == 9
        assert cloud.stats["certify_batches"] == 3
        assert edge.certifier.retired_batch_count == 3

    def test_single_batch_pump_keeps_plain_wire_format(self):
        env, cloud, edge = make_pipelined_edge(3, batch_size=3, depth=4)
        sent = []
        original_send = env.send

        def recording_send(src, dst, message):
            sent.append(message)
            return original_send(src, dst, message)

        env.send = recording_send
        edge._pump_certify_pipeline()
        assert [type(m) for m in sent] == [CertifyBatchRequest]

    def test_misattributed_window_envelope_dropped(self):
        env, cloud, edge = make_pipelined_edge(6, batch_size=3, depth=4)
        mallory = edge_id("edge-mallory")
        env.registry.register(mallory)
        sent = []
        original_send = env.send

        def recording_send(src, dst, message):
            sent.append(message)
            return original_send(src, dst, message)

        env.send = recording_send
        edge._pump_certify_pipeline()
        (window,) = [m for m in sent if isinstance(m, CertifyWindowRequest)]
        # Mallory replays the edge's window under its own name.
        responses = cloud.certify_batch_window(((mallory, window),))
        assert responses == []
        # And a forged signature over the same statement is dropped too.
        forged = CertifyWindowRequest(
            statement=window.statement,
            signature=env.registry.sign(mallory, window.statement),
        )
        assert cloud.certify_batch_window(((edge.node_id, forged),)) == []


# ----------------------------------------------------------------------
# Adversarial pipeline cases at depth >= 4
# ----------------------------------------------------------------------
class TestPipelineAdversarial:
    def certificates_for(self, env, cloud, edge):
        """Short-circuit the cloud: certificates for the edge's window."""

        edge._pump_certify_pipeline()
        batches = [
            tuple(
                (block_id, edge.certifier.task(block_id).block_digest)
                for block_id in batch.block_ids
            )
            for batch in edge.certifier.in_flight_batches()
        ]
        messages = []
        for blocks in batches:
            tree = build_certify_batch_tree(blocks)
            certificate = issue_batch_certificate(
                registry=env.registry,
                cloud=cloud.node_id,
                edge=edge.node_id,
                batch_root=tree.root,
                num_blocks=len(blocks),
                certified_at=1.0,
            )
            messages.append(
                BatchCertificateMessage(certificate=certificate, blocks=blocks)
            )
        return messages

    def test_out_of_order_and_duplicate_certificates_at_depth_4(self):
        env, cloud, edge = make_pipelined_edge(12, batch_size=3, depth=4)
        messages = self.certificates_for(env, cloud, edge)
        assert len(messages) == 4
        # Deliver in reverse order, with a duplicate in the middle.
        for message in [messages[3], messages[1], messages[1], messages[0], messages[2]]:
            edge.on_message(cloud.node_id, message)
        assert edge.certifier.certified_count == 12
        assert edge.certifier.in_flight_count == 0
        assert edge.certifier.retired_batch_count == 4
        assert edge.stats["batch_cert_mismatches"] == 0
        for block_id in range(12):
            assert edge.log.proof_for(block_id) is not None

    def test_malicious_cloud_signing_reordered_batch_rejected(self):
        """A cloud that signs a *reordered* block list produced a root the
        edge cannot reproduce from the returned list order — the whole
        message is rejected and the batch stays in flight for retry."""

        env, cloud, edge = make_pipelined_edge(6, batch_size=3, depth=4)
        messages = self.certificates_for(env, cloud, edge)
        genuine = messages[0]
        reordered_blocks = tuple(reversed(genuine.blocks))
        # The malicious cloud signs the root of the *reordered* list but
        # returns the original order alongside it.
        tree = build_certify_batch_tree(reordered_blocks)
        certificate = issue_batch_certificate(
            registry=env.registry,
            cloud=cloud.node_id,
            edge=edge.node_id,
            batch_root=tree.root,
            num_blocks=len(reordered_blocks),
            certified_at=1.0,
        )
        edge.on_message(
            cloud.node_id,
            BatchCertificateMessage(certificate=certificate, blocks=genuine.blocks),
        )
        assert edge.stats["batch_cert_mismatches"] == 1
        assert edge.certifier.certified_count == 0
        assert edge.certifier.in_flight_count == 2  # both batches still open
        # The reordered delivery *with* its matching list derives proofs for
        # blocks the edge asked to certify under those exact digests, so it
        # is absorbed — order inside a batch is a transport detail; the
        # (id, digest) binding is what the leaves pin.
        edge.on_message(
            cloud.node_id,
            BatchCertificateMessage(
                certificate=certificate, blocks=reordered_blocks
            ),
        )
        assert edge.certifier.certified_count == 3

    def test_lost_batch_retried_selectively_and_duplicate_absorbed(self):
        """Only the lost batch is re-sent; when the 'lost' original answer
        arrives late after the retry's, it is absorbed idempotently."""

        env, cloud, edge = make_pipelined_edge(6, batch_size=3, depth=4)
        dropped = []

        def drop_first_batch(src, dst, message):
            if (
                isinstance(message, (CertifyBatchRequest, CertifyWindowRequest))
                and not dropped
            ):
                dropped.append(message)
                return False
            return True

        env.network.add_send_hook("test:drop-first-batch", drop_first_batch)
        edge._pump_certify_pipeline()
        env.run()
        # The window (both batches) was lost in one envelope: nothing came back.
        assert dropped and edge.certifier.certified_count == 0
        assert edge.certifier.in_flight_count == 2
        env.network.remove_send_hook("test:drop-first-batch")

        env.scheduler.run_until(env.now() + 5.0)
        sent = edge.retry_overdue_certifications(timeout_s=1.0)
        assert sent == 6
        assert edge.stats["certify_batch_retries"] == 2
        # Each lost batch retried as exactly itself (plain batch requests).
        env.run()
        assert edge.certifier.certified_count == 6
        assert edge.certifier.in_flight_count == 0
        retries = edge.certifier.task(0).retries
        assert retries == 1

        # The lost window's certificates surface late (duplicate answers):
        # replay what the cloud would have answered for the original window.
        (window,) = [
            m for m in dropped if isinstance(m, CertifyWindowRequest)
        ] or [None]
        assert window is not None
        for target, message in cloud.certify_batch_window(
            ((edge.node_id, window),)
        ):
            if isinstance(message, BatchCertificateMessage):
                edge.on_message(cloud.node_id, message)
        assert edge.certifier.certified_count == 6  # idempotent
        assert cloud.stats["certify_conflicts"] == 0
        assert cloud.ledger.is_punished(edge.node_id) is False

    def test_rejection_releases_window_slot(self):
        env, cloud, edge = make_pipelined_edge(3, batch_size=3, depth=4)
        # The cloud already certified block 0 under a different digest.
        cloud._certified.setdefault(edge.node_id, {})[0] = "f" * 64
        edge._pump_certify_pipeline()
        env.run()
        # Blocks 1-2 certified; block 0 rejected and its slot released.
        assert edge.certifier.certified_count == 2
        assert edge.stats["certify_rejections"] == 1
        assert edge.certifier.in_flight_count == 0


# ----------------------------------------------------------------------
# Mid-handoff shard with an in-flight window
# ----------------------------------------------------------------------
class TestMidHandoffWindow:
    def build_fleet(self, seed=31):
        from repro.sharding import ShardedWedgeSystem

        config = SystemConfig.paper_default().with_overrides(
            num_edge_nodes=2,
            sharding=ShardingConfig(num_shards=4, certify_pipeline_depth=4),
            logging=LoggingConfig(
                block_size=5,
                block_timeout_s=0.02,
                certify_batch_size=2,
                certify_flush_timeout_s=0.02,
            ),
            lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
        )
        return ShardedWedgeSystem.build(
            config=config, num_clients=1, env=local_environment(seed=seed)
        )

    def test_drain_waits_for_window_then_hands_off_cleanly(self):
        """A handoff ordered while certify batches are in flight must not
        offer until the window drains; lost answers are recovered by the
        selective per-batch retry and the handoff then completes."""

        from repro.log.proofs import CommitPhase
        from repro.workloads.generator import format_key

        system = self.build_fleet()
        client = system.clients[0]

        # Hold back every batch certificate so dispatched windows stay open.
        def drop_certificates(src, dst, message):
            return not isinstance(message, BatchCertificateMessage)

        system.env.network.add_send_hook("test:drop-certificates", drop_certificates)
        operations = [
            (client, client.put(format_key(index), b"v%d" % index))
            for index in range(40)
        ]
        assert system.wait_for_all(operations, CommitPhase.PHASE_ONE, 120)
        system.run_for(0.5)

        source = next(
            edge
            for edge in system.edges
            if any(
                edge.shard_state(s) is not None
                and edge.shard_state(s).certifier.in_flight_count
                for s in edge.owned_shards()
            )
        )
        shard = next(
            s
            for s in source.owned_shards()
            if source.shard_state(s).certifier.in_flight_count
        )
        dest = next(e for e in system.edges if e is not source)

        system.rebalance_shard(shard, dest.node_id)
        system.run_for(1.0)
        # The drain is parked on the open window: no offer can be verified
        # until every listed block is certified, so nothing was granted.
        assert source.stats.get("handoff_window_waits", 0) == 1
        assert system.cloud.stats["shard_handoffs_granted"] == 0
        assert shard in source._migrating

        # Release the network; the lost window is re-sent batch by batch.
        system.env.network.remove_send_hook("test:drop-certificates")
        system.run_for(1.0)
        assert source.retry_overdue_certifications(timeout_s=0.1) > 0
        system.run_for(5.0)
        assert system.cloud.stats["shard_handoffs_granted"] == 1
        assert system.cloud.stats["shard_installs"] == 1
        assert system.shard_owner(shard) == dest.node_id
        assert source.shard_state(shard) is None
        assert dest.shard_state(shard) is not None
        # The moved partition left no certification debris behind.
        snapshot = source.certify_pipeline_snapshot()
        assert shard not in snapshot

    def test_rejection_mid_drain_frees_the_slot_and_drain_completes(self):
        """A ``CertifyRejection`` arriving mid-handoff-drain must release its
        window slot (letting the queued batches ship) and the drain must
        still complete once the block's real certificate is recovered."""

        from repro.log.proofs import CommitPhase
        from repro.messages.log_messages import CertifyRejection
        from repro.workloads.generator import format_key

        system = self.build_fleet(seed=41)
        client = system.clients[0]

        def drop_certificates(src, dst, message):
            return not isinstance(message, BatchCertificateMessage)

        system.env.network.add_send_hook("test:drop-certificates", drop_certificates)
        operations = [
            (client, client.put(format_key(index), b"v%d" % index))
            for index in range(40)
        ]
        assert system.wait_for_all(operations, CommitPhase.PHASE_ONE, 120)
        system.run_for(0.5)

        source = next(
            edge
            for edge in system.edges
            if any(
                edge.shard_state(s) is not None
                and edge.shard_state(s).certifier.in_flight_count
                for s in edge.owned_shards()
            )
        )
        shard = next(
            s
            for s in source.owned_shards()
            if source.shard_state(s).certifier.in_flight_count
        )
        dest = next(e for e in system.edges if e is not source)
        system.rebalance_shard(shard, dest.node_id)
        system.run_for(0.5)
        assert shard in source._migrating
        state = source.shard_state(shard)
        in_flight = state.certifier.in_flight_batches()
        assert in_flight

        # Let answers flow again, then refuse the whole stuck batch: each
        # rejection must free its share of the slot so the window un-wedges.
        system.env.network.remove_send_hook("test:drop-certificates")
        stuck = in_flight[0]
        slots_before = state.certifier.in_flight_count
        for block_id in stuck.block_ids:
            source.on_message(
                system.cloud.node_id,
                CertifyRejection(
                    cloud=system.cloud.node_id,
                    edge=source.node_id,
                    block_id=block_id,
                    existing_digest="f" * 64,
                    offending_digest="e" * 64,
                    reason="simulated stray refusal",
                ),
            )
        system.run_for(0.5)
        assert state.certifier.in_flight_count < slots_before or (
            not state.certifier.in_flight(stuck.block_ids[0])
        )
        assert source.stats.get("certify_rejections", 0) == len(stuck.block_ids)

        # The refused blocks were certified cloud-side before the rejection
        # was injected (only the certificates were dropped): the overdue
        # retry recovers them idempotently and the drain then completes.
        system.run_for(1.0)
        assert source.retry_overdue_certifications(timeout_s=0.1) > 0
        system.run_for(5.0)
        assert system.cloud.stats["shard_handoffs_granted"] == 1
        assert system.cloud.stats["shard_installs"] == 1
        assert system.shard_owner(shard) == dest.node_id
        assert source.shard_state(shard) is None
        assert dest.shard_state(shard) is not None


# ----------------------------------------------------------------------
# Per-shard depth override
# ----------------------------------------------------------------------
class TestShardDepthOverride:
    def test_sharding_config_overrides_logging_depth(self):
        config = pipeline_config(depth=1).with_overrides(
            sharding=ShardingConfig(certify_pipeline_depth=8)
        )
        env = local_environment(seed=19)
        cloud = CloudNode(env=env, config=config, region=Region.CALIFORNIA)
        edge = EdgeNode(env=env, cloud=cloud.node_id, config=config)
        assert edge._certify_pipeline_depth() == 1  # default partition
        shard_state = edge._new_partition(shard_id=3)
        with edge._as_active(shard_state):
            assert edge._certify_pipeline_depth() == 8

    def test_invalid_depths_rejected(self):
        with pytest.raises(ConfigurationError):
            LoggingConfig(certify_pipeline_depth=0)
        with pytest.raises(ConfigurationError):
            ShardingConfig(certify_pipeline_depth=-1)


# ----------------------------------------------------------------------
# Crypto substrate: same-signer batch verification
# ----------------------------------------------------------------------
class TestBatchVerification:
    def make_signed(self, registry, signer, count):
        messages = [f"message-{index}" for index in range(count)]
        return [(registry.sign(signer, m), m) for m in messages]

    def test_schnorr_group_verifies_and_pinpoints_forgery(self):
        registry = KeyRegistry("schnorr")
        registry.register(CLOUD)
        pairs = self.make_signed(registry, CLOUD, 5)
        assert registry.verify_many(pairs) == [True] * 5
        from dataclasses import replace

        forged = (replace(pairs[2][0], value=b"\x01" * 512), pairs[2][1])
        tampered = pairs[:2] + [forged] + pairs[3:]
        assert registry.verify_many(tampered) == [True, True, False, True, True]

    def test_mixed_signers_group_independently(self):
        registry = KeyRegistry("schnorr")
        registry.register(CLOUD)
        registry.register(EDGE)
        pairs = self.make_signed(registry, CLOUD, 2) + self.make_signed(
            registry, EDGE, 2
        )
        assert registry.verify_many(pairs) == [True] * 4

    def test_hmac_falls_back_to_individual(self):
        registry = KeyRegistry("hmac")
        registry.register(CLOUD)
        pairs = self.make_signed(registry, CLOUD, 3)
        assert registry.verify_many(pairs) == [True] * 3

    def test_batch_certificates_group_verify_and_seed_memo(self):
        registry = KeyRegistry("schnorr")
        registry.register(CLOUD)
        registry.register(EDGE)
        certificates = []
        for start in (0, 8):
            blocks = tuple((start + i, f"{start + i:064x}") for i in range(4))
            tree = build_certify_batch_tree(blocks)
            certificates.append(
                issue_batch_certificate(
                    registry=registry,
                    cloud=CLOUD,
                    edge=EDGE,
                    batch_root=tree.root,
                    num_blocks=4,
                    certified_at=1.0,
                )
            )
        assert verify_batch_certificates(registry, certificates, CLOUD) == [
            True,
            True,
        ]
        # Memo seeded: individual verification is now a cache hit.
        assert all(c.verify(registry) for c in certificates)
        assert verify_batch_certificates(registry, certificates, EDGE) == [
            False,
            False,
        ]


# ----------------------------------------------------------------------
# Parallel certify engine + wall-clock pipeline harness
# ----------------------------------------------------------------------
class TestCertifyEngineAndHarness:
    def test_pipeline_harness_depths_certify_everything(self):
        env = local_environment(seed=23)
        cloud = CloudNode(env=env, region=Region.CALIFORNIA)
        edge = edge_id("edge-h")
        env.registry.register(edge)
        pairs = [(i, f"{i:064x}") for i in range(24)]
        for depth, expected_rounds in ((1, 6), (4, 2)):
            pipeline = EdgeCertifyPipeline(
                registry=env.registry,
                edge=edge,
                cloud=cloud.node_id,
                depth=depth,
                batch_size=4,
            )
            offset = depth * 1000
            shifted = [(offset + i, d) for i, d in pairs]
            rounds = run_certify_pipeline(pipeline, cloud, shifted)
            assert pipeline.absorbed == 24
            assert pipeline.drained
            assert rounds == expected_rounds

    def test_engine_worker_pool_matches_inline(self):
        env = local_environment(seed=29)
        cloud = CloudNode(env=env, region=Region.CALIFORNIA)
        engine = ParallelCertifyEngine(
            registry=env.registry, cloud=cloud.node_id, workers=2
        )
        try:
            jobs = [
                (EDGE, tuple((start + i, f"{start + i:064x}") for i in range(3)), 1.0)
                for start in (0, 10, 20)
            ]
            env.registry.register(EDGE)
            pooled = engine.issue_certificates(jobs)
            assert len(pooled) == 3
            for certificate, (edge, blocks, _now) in zip(pooled, jobs):
                assert certificate.edge == edge
                assert certificate.num_blocks == 3
                assert certificate.verify(env.registry)
                assert certificate.batch_root == build_certify_batch_tree(blocks).root
        finally:
            engine.close()

    def test_harness_handles_conflict_rejections_without_stalling(self):
        """A definitively refused block must release its slot and count as
        terminal — the driver completes instead of raising 'stalled'."""

        env = local_environment(seed=37)
        cloud = CloudNode(env=env, region=Region.CALIFORNIA)
        edge = edge_id("edge-r")
        env.registry.register(edge)
        # The cloud already holds a conflicting digest for block 1.
        cloud._certified.setdefault(edge, {})[1] = "f" * 64
        pipeline = EdgeCertifyPipeline(
            registry=env.registry, edge=edge, cloud=cloud.node_id, depth=4, batch_size=2
        )
        rounds = run_certify_pipeline(
            pipeline, cloud, [(i, f"{i:064x}") for i in range(4)], max_rounds=8
        )
        assert rounds >= 1
        assert pipeline.absorbed == 3
        assert pipeline.rejected == 1
        assert pipeline.abandoned == {1}
        assert pipeline.drained
        assert pipeline.certifier.in_flight_count == 0

    def test_lazy_dispute_proofs_derived_on_demand(self):
        env, cloud, edge = make_pipelined_edge(3, batch_size=3, depth=4)
        edge._pump_certify_pipeline()
        env.run()
        assert edge.certifier.certified_count == 3
        # The hot path stored no eager proofs; proof_for derives on demand.
        proof = cloud.proof_for(edge.node_id, 1)
        assert proof is not None and proof.verify(env.registry)
        assert cloud.proof_for(edge.node_id, 1) is proof  # memoized


# ----------------------------------------------------------------------
# Sim parameters for overlapped RTTs
# ----------------------------------------------------------------------
class TestOverlapParameters:
    def test_uplink_channels_overlap_serialization(self):
        slow = SimulationParameters(
            latency_jitter_fraction=0.0, wan_bandwidth_bytes_per_s=10_000
        )
        multi = slow.with_overrides(uplink_channels=4)

        class _Probe:
            def __init__(self, name, region):
                from repro.common.identifiers import edge_id as eid

                self.node_id = eid(name)
                self.region = region
                self.received = []

            def deliver(self, sender, message):
                self.received.append(message)

        class _Payload:
            wire_size = 50_000

        def delivery_times(params):
            from repro.sim.events import EventScheduler
            from repro.sim.network import SimNetwork
            from repro.sim.rng import DeterministicRng
            from repro.sim.topology import Topology

            scheduler = EventScheduler(0.0)
            network = SimNetwork(
                scheduler, Topology(), params, DeterministicRng(7)
            )
            src = _Probe("edge-src", Region.CALIFORNIA)
            dst = _Probe("edge-dst", Region.VIRGINIA)
            network.register(src)
            network.register(dst)
            return [
                network.send(src.node_id, dst.node_id, _Payload())
                for _ in range(4)
            ]

        serial = delivery_times(slow)
        overlapped = delivery_times(multi)
        # One lane: each transfer queues behind the previous (~5s each).
        assert serial[3] - serial[0] == pytest.approx(3 * 5.025, rel=0.01)
        # Four lanes: all four serialize concurrently.
        assert max(overlapped) == pytest.approx(overlapped[0], rel=0.01)
        with pytest.raises(ConfigurationError):
            SimulationParameters(uplink_channels=0)

    def test_cloud_certify_workers_divide_marginal_cost(self):
        serial = SimulationParameters()
        parallel = serial.with_overrides(cloud_certify_workers=4)
        base = serial.batch_certification_cost(0)
        assert parallel.batch_certification_cost(0) == base
        marginal_serial = serial.batch_certification_cost(32) - base
        marginal_parallel = parallel.batch_certification_cost(32) - base
        assert marginal_parallel == pytest.approx(marginal_serial / 4)
        # Explicit worker argument wins over the configured default.
        assert serial.batch_certification_cost(
            32, workers=4
        ) == parallel.batch_certification_cost(32)
        with pytest.raises(ConfigurationError):
            SimulationParameters(cloud_certify_workers=0)

    def test_window_cost_charges_one_signature_per_inner_batch(self):
        params = SimulationParameters()
        one_batch = params.window_certification_cost(1, 32)
        assert one_batch == pytest.approx(params.batch_certification_cost(32))
        eight = params.window_certification_cost(8, 8 * 32)
        # 7 extra signatures + 7 batches' extra per-block lookups.
        assert eight == pytest.approx(
            one_batch
            + 7 * params.sign_seconds
            + 7 * 32 * params.lookup_seconds_per_op
        )
        # Worker lanes divide the per-batch signing and per-block work but
        # never the serial request overhead + envelope verification.
        pooled = params.window_certification_cost(8, 8 * 32, workers=8)
        serial_part = params.request_overhead_seconds + params.verify_seconds
        assert pooled == pytest.approx(serial_part + (eight - serial_part) / 8)


# ----------------------------------------------------------------------
# Monotonic elapsed-time bookkeeping (wall-clock deployments)
# ----------------------------------------------------------------------
class TestMonotonicRetryClock:
    """The overdue-retry clock must be *elapsed* time, never wall-clock: a
    system clock step (NTP correction, manual adjustment) would otherwise
    mass-trigger — or indefinitely suppress — every pending retry at once."""

    def make_pipeline(self, clock=None):
        registry = KeyRegistry("hmac")
        registry.register(EDGE)
        registry.register(CLOUD)
        return EdgeCertifyPipeline(
            registry=registry, edge=EDGE, cloud=CLOUD, depth=2, batch_size=2,
            clock=clock,
        )

    def test_default_clock_is_time_monotonic(self):
        import time

        pipeline = self.make_pipeline()
        assert pipeline.clock is time.monotonic
        # And the no-argument API actually uses it.
        pipeline.submit(0, "0" * 64)
        pipeline.submit(1, "1" * 64)
        assert len(pipeline.dispatch_ready(allow_partial=False)) == 1

    def test_wall_clock_step_cannot_mass_trigger_retries(self, monkeypatch):
        import time as time_module

        mono = {"now": 100.0}
        pipeline = self.make_pipeline(clock=lambda: mono["now"])
        for block_id in range(4):
            pipeline.submit(block_id, f"{block_id:064x}")
        assert pipeline.dispatch_ready(allow_partial=False)
        assert pipeline.certifier.in_flight_count == 2

        # The system clock leaps an hour forward and then a day back — the
        # monotonic elapsed time has barely moved, so nothing is overdue.
        for step in (3600.0, -86400.0):
            monkeypatch.setattr(
                time_module, "time", lambda step=step: 1_700_000_000.0 + step
            )
            assert pipeline.retry_overdue(timeout_s=10.0) == []

        # Genuine elapsed time past the deadline: both lost batches retry,
        # each as exactly that batch under a fresh signature.
        mono["now"] += 11.0
        retries = pipeline.retry_overdue(timeout_s=10.0)
        assert len(retries) == 2
        assert [len(request.items) for request in retries] == [2, 2]
        # The retry reset the overdue clock: nothing re-triggers at once.
        assert pipeline.retry_overdue(timeout_s=10.0) == []

    def test_sim_time_injection_still_works(self):
        pipeline = self.make_pipeline()
        pipeline.submit(0, "0" * 64, now=5.0)
        pipeline.submit(1, "1" * 64, now=5.0)
        assert pipeline.dispatch_ready(now=5.0, allow_partial=False)
        assert pipeline.retry_overdue(timeout_s=2.0, now=6.0) == []
        assert len(pipeline.retry_overdue(timeout_s=2.0, now=8.0)) == 1


# ----------------------------------------------------------------------
# Sustained cloud unavailability under a RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicyUnderOutage:
    """A configured :class:`RetryPolicy` drives overdue retries through a
    sustained cloud outage: the per-batch horizon grows along the backoff
    schedule, batches whose attempt budget is spent stop re-dispatching,
    the in-flight window stays bounded however long the outage lasts, and
    the backlog drains completely once the cloud answers again."""

    POLICY = RetryPolicy(base_s=1.0, factor=2.0, cap_s=8.0, max_attempts=3)

    def make_pipeline(self, depth=2, batch_size=2, policy=POLICY):
        env = local_environment(seed=41)
        cloud = CloudNode(env=env, region=Region.CALIFORNIA)
        edge = edge_id("edge-outage")
        env.registry.register(edge)
        pipeline = EdgeCertifyPipeline(
            registry=env.registry,
            edge=edge,
            cloud=cloud.node_id,
            depth=depth,
            batch_size=batch_size,
            retry_policy=policy,
        )
        return pipeline, cloud, edge

    @staticmethod
    def certify(cloud, edge, requests):
        """Run *requests* through the cloud and return its certificates."""

        pairs = tuple((edge, request) for request in requests)
        return [message for _target, message in cloud.certify_batch_window(pairs)]

    def test_no_policy_and_no_timeout_is_an_error(self):
        pipeline, _cloud, _edge = self.make_pipeline(policy=None)
        with pytest.raises(ValueError):
            pipeline.retry_overdue(now=1.0)

    def test_backoff_grows_then_budget_exhausts(self):
        pipeline, _cloud, _edge = self.make_pipeline()
        pipeline.submit(0, "0" * 64, now=0.0)
        pipeline.submit(1, "1" * 64, now=0.0)
        assert len(pipeline.dispatch_ready(now=0.0, allow_partial=False)) == 1

        # First horizon is delay(1) = 1.0 s: not yet overdue at 0.5 s.
        assert pipeline.retry_overdue(now=0.5) == []
        assert len(pipeline.retry_overdue(now=1.5)) == 1  # retry #1

        # After one retry the horizon is delay(2) = 2.0 s, measured from
        # the retry itself — 1.0 s later is quiet, 2.1 s later fires.
        assert pipeline.retry_overdue(now=2.5) == []
        assert len(pipeline.retry_overdue(now=3.7)) == 1  # retry #2

        # Horizon now delay(3) = 4.0 s.
        assert pipeline.retry_overdue(now=7.0) == []
        assert len(pipeline.retry_overdue(now=7.8)) == 1  # retry #3

        # max_attempts=3 is spent: the batch never re-dispatches on the
        # policy path, no matter how stale it gets.
        assert pipeline.retry_overdue(now=1_000.0) == []
        # An explicit timeout bypasses the budget (operator override).
        assert len(pipeline.retry_overdue(timeout_s=1.0, now=2_000.0)) == 1

    def test_window_stays_bounded_and_drains_after_recovery(self):
        pipeline, cloud, edge = self.make_pipeline(depth=2, batch_size=2)
        for block_id in range(8):
            pipeline.submit(block_id, f"{block_id:064x}", now=0.0)

        # Only depth=2 batches ship; the other four blocks stay queued.
        first_wave = pipeline.dispatch_ready(now=0.0, allow_partial=False)
        assert pipeline.certifier.in_flight_count == 2

        # A long outage: every policy step fires, yet the window never
        # grows — retries re-sign the same two lost batches.
        retried = []
        for now in (1.5, 4.0, 9.0, 30.0):
            retried.extend(pipeline.retry_overdue(now=now))
            assert pipeline.certifier.in_flight_count == 2
            assert pipeline.dispatch_ready(now=now, allow_partial=False) == []
        assert retried  # the outage did trigger re-sends
        assert pipeline.absorbed == 0

        # Recovery: the cloud finally answers the latest retransmissions,
        # then the freed window slots pump the remaining backlog through.
        pipeline.absorb(self.certify(cloud, edge, retried[-2:]))
        now = 31.0
        while not pipeline.drained:
            requests = pipeline.dispatch_ready(now=now, allow_partial=True)
            assert len(requests) <= 2
            pipeline.absorb(self.certify(cloud, edge, requests))
            now += 1.0
        assert pipeline.absorbed == 8
        assert pipeline.certifier.in_flight_count == 0

        # Late duplicates from the first (lost) wave are absorbed
        # idempotently — certified counts do not double.
        pipeline.absorb(self.certify(cloud, edge, first_wave))
        assert pipeline.absorbed == 8
