"""Smoke tests for the hot-path perf suite (`repro.bench.perf`)."""

from __future__ import annotations

import random

from repro.bench import attach_speedups, format_summary, run_perf_suite
from repro.bench.perf import (
    BENCHMARKS,
    bench_certify_batch,
    bench_certify_per_block,
    bench_gossip_batch,
    bench_gossip_per_edge,
)


class TestPerfSuite:
    def test_quick_suite_runs_and_reports_every_benchmark(self):
        summary = run_perf_suite(mode="quick", seed=3)
        assert summary["mode"] == "quick"
        assert set(summary["results"]) == {bench.__name__[len("bench_"):] for bench in BENCHMARKS}
        for result in summary["results"].values():
            assert result["ops"] > 0
            assert result["ops_per_s"] > 0
            assert result["p50_ms"] <= result["p90_ms"] <= result["p99_ms"]

    def test_attach_speedups_against_matching_reference(self):
        summary = run_perf_suite(mode="quick", seed=3)
        reference = {
            "mode": "quick",
            "results": {
                name: {"ops_per_s": result["ops_per_s"] / 2}
                for name, result in summary["results"].items()
            },
        }
        attach_speedups(summary, reference)
        assert all(speedup > 1 for speedup in summary["speedup_vs_seed"].values())
        rendered = format_summary(summary)
        assert "digest_encode" in rendered and "vs seed" in rendered

    def test_attach_speedups_mode_mismatch_yields_none(self):
        summary = run_perf_suite(mode="quick", seed=3)
        attach_speedups(summary, {"mode": "full", "results": {}})
        assert summary["speedup_vs_seed"] is None


class TestBatchAmortizationTargets:
    def test_certify_batch_at_least_3x_per_block(self):
        """The PR acceptance target: batching one signature over 32 blocks
        must certify at least 3x more blocks per second than the per-block
        signature round (measured margin is an order of magnitude)."""

        per_block = bench_certify_per_block(random.Random(7), quick=True)
        batched = bench_certify_batch(random.Random(7), quick=True)
        assert batched.ops_per_s >= 3.0 * per_block.ops_per_s

    def test_gossip_batch_not_slower_than_per_edge(self):
        per_edge = bench_gossip_per_edge(random.Random(7), quick=True)
        batched = bench_gossip_batch(random.Random(7), quick=True)
        assert batched.ops_per_s >= per_edge.ops_per_s
