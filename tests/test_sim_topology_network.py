"""Unit tests for the topology (Table I) and the simulated network."""

from __future__ import annotations

import pytest

from repro.common import ConfigurationError, Region, TransportError
from repro.common.identifiers import client_id, cloud_id, edge_id
from repro.sim.environment import Environment, local_environment
from repro.sim.network import message_wire_size
from repro.sim.parameters import SimulationParameters
from repro.sim.topology import Topology, paper_topology


class TestTopology:
    def test_table1_california_row(self):
        topology = paper_topology()
        row = topology.table_row(Region.CALIFORNIA)
        assert row == {"C": 0.0, "O": 19.0, "V": 61.0, "I": 141.0, "M": 238.0}

    def test_rtt_is_symmetric(self):
        topology = paper_topology()
        assert topology.rtt(Region.CALIFORNIA, Region.MUMBAI) == topology.rtt(
            Region.MUMBAI, Region.CALIFORNIA
        )

    def test_one_way_latency_is_half_rtt_in_seconds(self):
        topology = paper_topology()
        assert topology.one_way_latency_s(Region.CALIFORNIA, Region.VIRGINIA) == pytest.approx(
            61.0 / 2 / 1000
        )

    def test_same_region_uses_intra_dc_latency(self):
        topology = Topology(intra_region_rtt_ms=0.8)
        assert topology.rtt(Region.OREGON, Region.OREGON) == 0.8

    def test_unknown_pair_raises(self):
        topology = Topology(rtt_ms={(Region.CALIFORNIA, Region.OREGON): 19.0})
        with pytest.raises(ConfigurationError):
            topology.rtt(Region.IRELAND, Region.MUMBAI)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(rtt_ms={(Region.CALIFORNIA, Region.OREGON): -5.0})

    def test_all_paper_pairs_present(self):
        topology = paper_topology()
        regions = list(Region)
        for a in regions:
            for b in regions:
                assert topology.rtt(a, b) >= 0


class _Recorder:
    """Minimal environment node that records what it receives."""

    def __init__(self, node_id, region):
        self.node_id = node_id
        self.region = region
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message))


class TestSimNetwork:
    def _env(self, **param_overrides):
        params = SimulationParameters(latency_jitter_fraction=0.0, **param_overrides)
        return Environment(params=params, seed=3)

    def test_wan_delivery_takes_half_rtt(self):
        env = self._env()
        edge = _Recorder(edge_id("e"), Region.CALIFORNIA)
        cloud = _Recorder(cloud_id("c"), Region.VIRGINIA)
        env.attach(edge)
        env.attach(cloud)
        env.send(edge.node_id, cloud.node_id, "ping")
        env.run()
        assert cloud.received
        # 61 ms RTT -> 30.5 ms one way, plus negligible transfer time.
        assert env.now() == pytest.approx(0.0305, abs=0.002)

    def test_client_edge_same_region_uses_metro_latency(self):
        env = self._env()
        client = _Recorder(client_id("a"), Region.CALIFORNIA)
        edge = _Recorder(edge_id("e"), Region.CALIFORNIA)
        env.attach(client)
        env.attach(edge)
        env.send(client.node_id, edge.node_id, "ping")
        env.run()
        expected = env.topology.client_edge_rtt_ms / 2 / 1000
        assert env.now() == pytest.approx(expected, rel=0.2)

    def test_unknown_destination_raises(self):
        env = self._env()
        client = _Recorder(client_id("a"), Region.CALIFORNIA)
        env.attach(client)
        with pytest.raises(TransportError):
            env.send(client.node_id, edge_id("ghost"), "ping")

    def test_duplicate_registration_rejected(self):
        env = self._env()
        client = _Recorder(client_id("a"), Region.CALIFORNIA)
        env.attach(client)
        with pytest.raises(TransportError):
            env.attach(_Recorder(client_id("a"), Region.CALIFORNIA))

    def test_bandwidth_delays_large_messages(self):
        env = self._env(wan_bandwidth_bytes_per_s=1_000_000)

        class Payload:
            wire_size = 1_000_000  # 1 second of serialization at 1 MB/s

        edge = _Recorder(edge_id("e"), Region.CALIFORNIA)
        cloud = _Recorder(cloud_id("c"), Region.VIRGINIA)
        env.attach(edge)
        env.attach(cloud)
        env.send(edge.node_id, cloud.node_id, Payload())
        env.run()
        assert env.now() > 1.0

    def test_uplink_serializes_back_to_back_messages(self):
        env = self._env(wan_bandwidth_bytes_per_s=1_000_000)

        class Payload:
            wire_size = 500_000

        edge = _Recorder(edge_id("e"), Region.CALIFORNIA)
        cloud = _Recorder(cloud_id("c"), Region.VIRGINIA)
        env.attach(edge)
        env.attach(cloud)
        first = env.network.send(edge.node_id, cloud.node_id, Payload())
        second = env.network.send(edge.node_id, cloud.node_id, Payload())
        assert second - first == pytest.approx(0.5, rel=0.1)

    def test_network_stats_split_wan_and_lan(self):
        env = self._env()
        client = _Recorder(client_id("a"), Region.CALIFORNIA)
        edge = _Recorder(edge_id("e"), Region.CALIFORNIA)
        cloud = _Recorder(cloud_id("c"), Region.VIRGINIA)
        for node in (client, edge, cloud):
            env.attach(node)
        env.send(client.node_id, edge.node_id, "metro")
        env.send(edge.node_id, cloud.node_id, "wide-area")
        env.run()
        stats = env.network.stats
        assert stats.lan_messages == 1
        assert stats.wan_messages == 1
        assert stats.bytes_sent == stats.lan_bytes + stats.wan_bytes

    def test_send_interceptor_can_drop_messages(self):
        env = self._env()
        edge = _Recorder(edge_id("e"), Region.CALIFORNIA)
        cloud = _Recorder(cloud_id("c"), Region.VIRGINIA)
        env.attach(edge)
        env.attach(cloud)
        env.network.send_interceptor = lambda src, dst, msg: False
        env.send(edge.node_id, cloud.node_id, "dropped")
        env.run()
        assert cloud.received == []

    def test_message_wire_size_prefers_attribute(self):
        class Sized:
            wire_size = 1234

        assert message_wire_size(Sized()) == 1234
        assert message_wire_size({"a": 1}) > 0


class TestEnvironmentCpuModel:
    def test_charge_delays_response_and_busies_node(self):
        params = SimulationParameters(latency_jitter_fraction=0.0)
        env = local_environment(params=params)

        class Worker:
            def __init__(self):
                self.node_id = edge_id("worker")
                self.region = Region.CALIFORNIA

            def on_message(self, sender, message):
                env.charge(0.050)

        worker = Worker()
        client = _Recorder(client_id("a"), Region.CALIFORNIA)
        env.attach(worker)
        env.attach(client)
        env.send(client.node_id, worker.node_id, "work")
        env.run()
        assert env.busy_until(worker.node_id) >= 0.050

    def test_charge_outside_handler_is_ignored(self):
        env = local_environment()
        env.charge(1.0)  # must not raise
        assert env.now() == 0.0

    def test_negative_charge_rejected(self):
        env = local_environment()
        with pytest.raises(Exception):
            env.charge(-1.0)

    def test_queueing_two_messages_on_busy_node(self):
        params = SimulationParameters(latency_jitter_fraction=0.0)
        env = local_environment(params=params)
        finish_times = []

        class Worker:
            def __init__(self):
                self.node_id = edge_id("worker")
                self.region = Region.CALIFORNIA

            def on_message(self, sender, message):
                env.charge(0.1)
                finish_times.append(env.now())

        worker = Worker()
        client = _Recorder(client_id("a"), Region.CALIFORNIA)
        env.attach(worker)
        env.attach(client)
        env.send(client.node_id, worker.node_id, "one")
        env.send(client.node_id, worker.node_id, "two")
        env.run()
        # The second handler starts only after the first one's CPU time.
        assert finish_times[1] - finish_times[0] >= 0.1 - 1e-9
