"""Unit tests for the LSMerkle codec, mLSM structure, and signed roots."""

from __future__ import annotations

import pytest

from repro.common import SerializationError
from repro.common.config import LSMerkleConfig
from repro.common.identifiers import client_id, cloud_id, edge_id
from repro.log.block import build_block
from repro.log.entry import make_entry
from repro.lsm.compaction import partition_into_pages
from repro.lsm.records import KVRecord
from repro.lsmerkle.codec import (
    SEQUENCE_STRIDE,
    decode_put,
    encode_put,
    is_put_payload,
    page_from_block,
    record_sequence,
    records_from_block,
)
from repro.lsmerkle.mlsm import (
    MerkleizedLSM,
    compute_global_root,
    empty_level_root,
    sign_global_root,
)

ALICE = client_id("alice")
EDGE = edge_id("edge-0")
CLOUD = cloud_id()


def put_block(registry, block_id: int, items, edge=EDGE):
    entries = [
        make_entry(registry, ALICE, index, encode_put(key, value), 1.0)
        for index, (key, value) in enumerate(items)
    ]
    return build_block(edge, block_id, entries, created_at=float(block_id))


class TestPutCodec:
    def test_roundtrip(self):
        payload = encode_put("sensor-1", b"\x00\x01value")
        assert is_put_payload(payload)
        assert decode_put(payload) == ("sensor-1", b"\x00\x01value")

    def test_empty_value(self):
        assert decode_put(encode_put("k", b"")) == ("k", b"")

    def test_unicode_keys(self):
        assert decode_put(encode_put("café", b"v")) == ("café", b"v")

    def test_rejects_nul_in_key(self):
        with pytest.raises(SerializationError):
            encode_put("bad\x00key", b"v")

    def test_non_put_payload(self):
        assert not is_put_payload(b"just a log entry")
        with pytest.raises(SerializationError):
            decode_put(b"just a log entry")

    def test_truncated_payload_rejected(self):
        payload = encode_put("key", b"value")
        with pytest.raises(SerializationError):
            decode_put(payload[:8])

    def test_record_sequence_ordering(self):
        assert record_sequence(0, 0) < record_sequence(0, 1)
        assert record_sequence(0, SEQUENCE_STRIDE - 1) < record_sequence(1, 0)
        with pytest.raises(SerializationError):
            record_sequence(0, SEQUENCE_STRIDE)


class TestPageFromBlock:
    def test_derivation_is_deterministic(self, registry):
        block = put_block(registry, 3, [("b", b"2"), ("a", b"1")])
        page_one = page_from_block(block)
        page_two = page_from_block(block)
        assert page_one.digest() == page_two.digest()
        assert page_one.source_block_id == 3
        assert page_one.keys() == ("a", "b")

    def test_records_carry_block_order_sequences(self, registry):
        block = put_block(registry, 2, [("x", b"1"), ("y", b"2")])
        records = records_from_block(block)
        assert [r.sequence for r in records] == [
            record_sequence(2, 0),
            record_sequence(2, 1),
        ]

    def test_non_put_entries_are_skipped(self, registry):
        entries = [
            make_entry(registry, ALICE, 0, b"plain log entry", 1.0),
            make_entry(registry, ALICE, 1, encode_put("k", b"v"), 1.0),
        ]
        block = build_block(EDGE, 0, entries, 1.0)
        records = records_from_block(block)
        assert len(records) == 1 and records[0].key == "k"

    def test_pure_logging_block_has_no_page(self, registry):
        entries = [make_entry(registry, ALICE, 0, b"log only", 1.0)]
        block = build_block(EDGE, 0, entries, 1.0)
        assert page_from_block(block) is None


class TestMerkleizedLSM:
    def _mlsm(self) -> MerkleizedLSM:
        return MerkleizedLSM(
            config=LSMerkleConfig(level_thresholds=(2, 2, 4)), page_capacity=2
        )

    def test_empty_levels_have_empty_roots(self):
        mlsm = self._mlsm()
        assert mlsm.level_roots() == (empty_level_root(), empty_level_root())
        assert mlsm.global_root() == compute_global_root(mlsm.level_roots())

    def test_apply_merge_updates_roots(self):
        mlsm = self._mlsm()
        before = mlsm.global_root()
        pages = partition_into_pages(
            [KVRecord("a", 1, b"v"), KVRecord("b", 2, b"v")], page_capacity=2, created_at=0.0
        )
        mlsm.apply_merge(0, pages)
        assert mlsm.global_root() != before
        assert mlsm.level_roots()[0] != empty_level_root()

    def test_install_merge_keeps_remaining_level_zero_pages(self, registry):
        mlsm = self._mlsm()
        merged_block = put_block(registry, 0, [("a", b"1")])
        pending_block = put_block(registry, 1, [("b", b"2")])
        merged_page = page_from_block(merged_block)
        pending_page = page_from_block(pending_block)
        mlsm.add_level_zero_page(merged_page)
        mlsm.add_level_zero_page(pending_page)
        new_level_one = partition_into_pages(
            list(merged_page.records), page_capacity=2, created_at=1.0
        )
        mlsm.install_merge(0, new_level_one, remaining_source_pages=[pending_page])
        assert mlsm.tree.levels[0].pages == [pending_page]
        assert mlsm.tree.levels[1].num_pages == 1

    def test_prove_page_roundtrip(self):
        mlsm = self._mlsm()
        pages = partition_into_pages(
            [KVRecord(k, i, b"v") for i, k in enumerate("abcd")], page_capacity=2, created_at=0.0
        )
        mlsm.apply_merge(0, pages)
        level = mlsm.tree.levels[1]
        for page in level.pages:
            proof = mlsm.prove_page(1, page)
            assert proof.verifies_against(mlsm.level_merkle(1).root)

    def test_prove_unknown_page_raises(self):
        from repro.common import ProofVerificationError
        from repro.lsm.page import build_page

        mlsm = self._mlsm()
        stranger = build_page([KVRecord("z", 9, b"v")], created_at=0.0)
        with pytest.raises(ProofVerificationError):
            mlsm.prove_page(1, stranger)

    def test_level_merkle_bounds(self):
        from repro.common import ProofVerificationError

        mlsm = self._mlsm()
        with pytest.raises(ProofVerificationError):
            mlsm.level_merkle(0)
        with pytest.raises(ProofVerificationError):
            mlsm.level_merkle(9)


class TestSignedGlobalRoot:
    def test_sign_and_verify(self, registry):
        roots = (empty_level_root(), empty_level_root())
        signed = sign_global_root(registry, CLOUD, EDGE, roots, version=1, timestamp=2.0)
        assert signed.verify(registry, CLOUD)
        assert signed.statement.global_root == compute_global_root(roots)

    def test_wrong_cloud_identity_rejected(self, registry):
        roots = (empty_level_root(),)
        signed = sign_global_root(registry, CLOUD, EDGE, roots, version=1, timestamp=2.0)
        assert not signed.verify(registry, cloud=edge_id("edge-0"))

    def test_inconsistent_global_root_rejected(self, registry):
        from dataclasses import replace

        roots = (empty_level_root(),)
        signed = sign_global_root(registry, CLOUD, EDGE, roots, version=1, timestamp=2.0)
        tampered_statement = replace(signed.statement, global_root="0" * 64)
        tampered = type(signed)(statement=tampered_statement, signature=signed.signature)
        assert not tampered.verify(registry, CLOUD)
