"""Integration tests: malicious edge nodes are detected and punished.

The paper's central security argument (Sections II-D, IV-B, IV-E) is that a
lying edge node is always caught eventually: the client holds signed evidence
(a Phase I receipt or a signed read/get response), the cloud holds the
certified digests, and disputes reconcile the two.  Each test drives one
adversary and asserts both the client-side detection and the cloud-side
punishment.
"""

from __future__ import annotations

from repro.common import LoggingConfig, LSMerkleConfig, SecurityConfig, SystemConfig
from repro.core.system import WedgeChainSystem
from repro.log.proofs import CommitPhase
from repro.nodes.edge import EdgeNode
from repro.nodes.malicious import (
    BrokenPromiseEdgeNode,
    EquivocatingCertifierEdgeNode,
    NonCertifyingEdgeNode,
    OmittingEdgeNode,
    StaleServingEdgeNode,
    TamperingReadEdgeNode,
)
from repro.sim.environment import local_environment
from repro.workloads.generator import format_key

BLOCK_SIZE = 5


def build_system(edge_class, num_clients=2, seed=61, freshness=None, gossip=True):
    config = SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=BLOCK_SIZE, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
        security=SecurityConfig(
            dispute_timeout_s=1.0,
            gossip_interval_s=0.2,
            freshness_window_s=freshness,
        ),
    )

    def factory(env, cloud, cfg, name, region):
        return edge_class(env=env, cloud=cloud, config=cfg, name=name, region=region)

    return WedgeChainSystem.build(
        config=config,
        num_clients=num_clients,
        env=local_environment(seed=seed),
        edge_factory=factory,
        enable_gossip=gossip,
    )


def write_block(system, client, prefix="k"):
    items = [(f"{prefix}-{i}", b"value") for i in range(BLOCK_SIZE)]
    return client.put_batch(items)


class TestHonestBaselineSanity:
    def test_honest_edge_is_never_punished(self):
        system = build_system(EdgeNode)
        client = system.client(0)
        op = write_block(system, client)
        system.run_for(10.0)
        assert client.operation(op).phase is CommitPhase.PHASE_TWO
        assert system.cloud.stats["punishments"] == 0
        assert not system.cloud.ledger.is_punished(system.edge().node_id)


class TestBrokenPromise:
    def test_detected_and_punished(self):
        system = build_system(BrokenPromiseEdgeNode)
        client = system.client(0)
        op = write_block(system, client)
        system.run_for(15.0)
        record = client.operation(op)
        # The write never legitimately reaches Phase II.
        assert record.phase is not CommitPhase.PHASE_TWO
        assert any(
            event["kind"] in ("certified-digest-mismatch", "proof-timeout")
            for event in client.malicious_events
        )
        assert system.cloud.ledger.is_punished(system.edge().node_id)
        assert any(verdict.edge_punished for verdict in client.verdicts)


class TestNonCertifying:
    def test_dispute_timeout_exposes_silent_edge(self):
        system = build_system(NonCertifyingEdgeNode)
        client = system.client(0)
        op = write_block(system, client)
        system.run_for(15.0)
        assert client.operation(op).phase is CommitPhase.PHASE_ONE
        assert system.cloud.ledger.is_punished(system.edge().node_id)
        punishments = system.cloud.ledger.records_for(system.edge().node_id)
        assert any("never certified" in record.reason for record in punishments)


class TestEquivocatingCertifier:
    def test_cloud_detects_conflicting_digests_directly(self):
        system = build_system(EquivocatingCertifierEdgeNode)
        client = system.client(0)
        write_block(system, client)
        system.run_for(10.0)
        assert system.cloud.stats["certify_conflicts"] >= 1
        assert system.cloud.ledger.is_punished(system.edge().node_id)


class TestOmissionAttack:
    def test_gossip_lets_reader_prove_omission(self):
        system = build_system(OmittingEdgeNode)
        writer, reader = system.clients
        op = write_block(system, writer)
        system.run_for(5.0)  # certification + at least one gossip round
        assert writer.operation(op).phase is CommitPhase.PHASE_TWO
        read_op = reader.read(0)
        system.run_for(10.0)
        assert reader.operation(read_op).phase is CommitPhase.FAILED
        assert any(event["kind"] == "omission" for event in reader.malicious_events)
        assert system.cloud.ledger.is_punished(system.edge().node_id)

    def test_without_gossip_omission_goes_undetected(self):
        """The detection window genuinely depends on gossip (Section IV-E)."""

        system = build_system(OmittingEdgeNode, gossip=False)
        writer, reader = system.clients
        write_block(system, writer)
        system.run_for(5.0)
        read_op = reader.read(0)
        system.run_for(10.0)
        assert reader.operation(read_op).phase is CommitPhase.FAILED
        assert not any(event["kind"] == "omission" for event in reader.malicious_events)
        assert not system.cloud.ledger.is_punished(system.edge().node_id)


class TestTamperingRead:
    def test_reader_detects_content_substitution(self):
        system = build_system(TamperingReadEdgeNode)
        writer, reader = system.clients
        op = write_block(system, writer)
        system.run_for(5.0)
        assert writer.operation(op).phase is CommitPhase.PHASE_TWO
        read_op = reader.read(0)
        system.run_for(15.0)
        record = reader.operation(read_op)
        assert record.phase is not CommitPhase.PHASE_TWO
        assert any(
            event["kind"] in ("read-content-mismatch", "proof-timeout")
            for event in reader.malicious_events
        )
        assert system.cloud.ledger.is_punished(system.edge().node_id)


class TestStaleServing:
    def test_freshness_window_rejects_stale_snapshot(self):
        system = build_system(StaleServingEdgeNode, freshness=5.0, seed=71)
        writer, reader = system.clients
        # Build some merged, certified state.
        for block in range(4):
            op = writer.put_batch(
                [(format_key(block * BLOCK_SIZE + i), b"x") for i in range(BLOCK_SIZE)]
            )
            system.wait_for(writer, op, CommitPhase.PHASE_TWO, max_time_s=30)
        system.run_for(2.0)
        edge = system.edge()
        edge.freeze()
        # Time passes; new writes keep arriving but the frozen snapshot ages.
        system.run_for(30.0)
        op = writer.put_batch([(format_key(100 + i), b"y") for i in range(BLOCK_SIZE)])
        system.wait_for(writer, op, CommitPhase.PHASE_TWO, max_time_s=30)
        read_op = reader.get(format_key(1))
        system.run_for(5.0)
        record = reader.operation(read_op)
        assert record.phase is CommitPhase.FAILED

    def test_without_freshness_window_staleness_is_accepted(self):
        """Matches the paper: plain LSMerkle does not guarantee recency."""

        system = build_system(StaleServingEdgeNode, freshness=None, seed=72)
        writer, reader = system.clients
        for block in range(4):
            op = writer.put_batch(
                [(format_key(block * BLOCK_SIZE + i), b"old") for i in range(BLOCK_SIZE)]
            )
            system.wait_for(writer, op, CommitPhase.PHASE_TWO, max_time_s=30)
        system.run_for(2.0)
        system.edge().freeze()
        op = writer.put_batch([(format_key(0), b"new")] + [
            (format_key(200 + i), b"pad") for i in range(BLOCK_SIZE - 1)
        ])
        system.wait_for(writer, op, CommitPhase.PHASE_TWO, max_time_s=30)
        read_op = reader.get(format_key(0))
        system.run_for(5.0)
        record = reader.operation(read_op)
        # The stale (old) value is served and verifies: staleness is invisible
        # without the freshness extension.
        assert record.phase in (CommitPhase.PHASE_ONE, CommitPhase.PHASE_TWO)
        assert reader.value_of(read_op) == b"old"


class TestPunishedEdgeExclusion:
    def test_punished_edges_are_banned_from_reentry(self):
        system = build_system(NonCertifyingEdgeNode)
        client = system.client(0)
        write_block(system, client)
        system.run_for(15.0)
        ledger = system.cloud.ledger
        edge = system.edge().node_id
        assert ledger.is_punished(edge)
        # Model assumption 2: identities cannot be fabricated, so the ban holds.
        assert ledger.total_score(edge) >= system.config.security.punishment_score
