"""Integration tests: the LSMerkle key-value path end to end.

Covers put/get flows, verified proofs for present and missing keys, version
overwrites, cloud-coordinated merges (including cascades), and read
freshness.
"""

from __future__ import annotations

from repro.common import LoggingConfig, LSMerkleConfig, SecurityConfig, SystemConfig
from repro.core.system import WedgeChainSystem
from repro.log.proofs import CommitPhase
from repro.sim.environment import local_environment
from repro.workloads.generator import format_key


def build_kv_system(num_clients=2, seed=31, freshness=None, block_size=5):
    config = SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=block_size, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
        security=SecurityConfig(freshness_window_s=freshness),
    )
    return WedgeChainSystem.build(
        config=config, num_clients=num_clients, env=local_environment(seed=seed)
    )


def put_keys(system, client, items):
    op = client.put_batch(items)
    assert (
        system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=60)
        is CommitPhase.PHASE_TWO
    )
    return op


class TestPutGet:
    def test_get_returns_written_value_with_proof(self):
        system = build_kv_system()
        writer, reader = system.clients
        put_keys(system, writer, [(f"city-{i}", f"value-{i}".encode()) for i in range(5)])
        op = reader.get("city-3")
        system.wait_for(reader, op, CommitPhase.PHASE_TWO, max_time_s=30)
        assert reader.value_of(op) == b"value-3"
        assert reader.operation(op).details["found"] is True

    def test_get_missing_key_is_verified_not_found(self):
        system = build_kv_system()
        writer, reader = system.clients
        put_keys(system, writer, [(f"city-{i}", b"v") for i in range(5)])
        op = reader.get("never-written")
        system.wait_for(reader, op, CommitPhase.PHASE_TWO, max_time_s=30)
        record = reader.operation(op)
        assert record.phase is CommitPhase.PHASE_TWO
        assert record.details["found"] is False
        assert reader.value_of(op) is None

    def test_later_put_overwrites_value(self):
        system = build_kv_system()
        writer, reader = system.clients
        put_keys(system, writer, [("sensor", b"old")] + [(f"pad-{i}", b"x") for i in range(4)])
        put_keys(system, writer, [("sensor", b"new")] + [(f"pad2-{i}", b"x") for i in range(4)])
        op = reader.get("sensor")
        system.wait_for(reader, op, CommitPhase.PHASE_TWO, max_time_s=30)
        assert reader.value_of(op) == b"new"

    def test_get_before_certification_is_phase_one_then_upgrades(self):
        system = WedgeChainSystem.build(
            config=SystemConfig.paper_default().with_overrides(
                logging=LoggingConfig(block_size=3),
                lsmerkle=LSMerkleConfig(level_thresholds=(4, 4, 8, 16)),
            ),
            num_clients=2,
            seed=12,
        )
        writer, reader = system.clients
        op = writer.put_batch([("a", b"1"), ("b", b"2"), ("c", b"3")])
        system.wait_for(writer, op, CommitPhase.PHASE_ONE, max_time_s=10)
        get_op = reader.get("b")
        system.wait_for(reader, get_op, CommitPhase.PHASE_ONE, max_time_s=10)
        record = reader.operation(get_op)
        assert record.details["found"] is True
        assert reader.value_of(get_op) == b"2"
        system.wait_for(reader, get_op, CommitPhase.PHASE_TWO, max_time_s=60)
        assert record.phase is CommitPhase.PHASE_TWO


class TestMerges:
    def test_level_zero_merge_happens_and_data_survives(self):
        system = build_kv_system(seed=41)
        writer, reader = system.clients
        # 6 blocks with L0 threshold 2 -> several merges, possibly cascading.
        for block in range(6):
            items = [(format_key(block * 5 + i), f"v{block}-{i}".encode()) for i in range(5)]
            put_keys(system, writer, items)
        system.run()
        edge = system.edge()
        assert edge.stats["merges_completed"] >= 1
        assert system.cloud.stats["merges"] == edge.stats["merges_completed"]
        assert edge.signed_root is not None
        # Every key remains readable with a verifiable proof.
        for probe in (0, 7, 14, 29):
            op = reader.get(format_key(probe))
            system.wait_for(reader, op, CommitPhase.PHASE_TWO, max_time_s=30)
            assert reader.operation(op).details["found"] is True

    def test_merge_deduplicates_versions(self):
        system = build_kv_system(seed=43)
        writer, _ = system.clients
        for round_index in range(4):
            items = [(f"hot-{i}", f"round-{round_index}".encode()) for i in range(5)]
            put_keys(system, writer, items)
        system.run()
        edge = system.edge()
        merged_records = sum(
            level.total_records for level in edge.index.tree.levels[1:]
        )
        # Only 5 distinct keys exist below level 0 after dedup.
        assert merged_records <= 5 * 2  # at most one stale generation in flight

    def test_signed_root_version_increases_with_merges(self):
        system = build_kv_system(seed=44)
        writer, _ = system.clients
        versions = []
        for block in range(6):
            put_keys(
                system, writer, [(format_key(block * 5 + i), b"x") for i in range(5)]
            )
            system.run()
            if system.edge().signed_root is not None:
                versions.append(system.edge().signed_root.statement.version)
        assert versions == sorted(versions)
        assert len(set(versions)) >= 2


class TestFreshness:
    def test_reads_accepted_within_freshness_window(self):
        system = build_kv_system(freshness=60.0, seed=51)
        writer, reader = system.clients
        for block in range(3):
            put_keys(system, writer, [(format_key(block * 5 + i), b"x") for i in range(5)])
        system.run()
        op = reader.get(format_key(2))
        system.wait_for(reader, op, CommitPhase.PHASE_TWO, max_time_s=30)
        assert reader.operation(op).phase is CommitPhase.PHASE_TWO

    def test_stale_root_rejected_when_window_expires(self):
        system = build_kv_system(freshness=5.0, seed=52)
        writer, reader = system.clients
        for block in range(3):
            put_keys(system, writer, [(format_key(block * 5 + i), b"x") for i in range(5)])
        system.run()
        # Let a long time pass with no new merges: the root becomes stale.
        system.run_for(30.0)
        op = reader.get(format_key(2))
        system.run_for(5.0)
        record = reader.operation(op)
        assert record.phase is CommitPhase.FAILED
        assert "freshness" in (record.failure_reason or "") or "old" in (
            record.failure_reason or ""
        )

    def test_root_refresh_restores_freshness(self):
        system = build_kv_system(freshness=5.0, seed=53)
        writer, reader = system.clients
        for block in range(3):
            put_keys(system, writer, [(format_key(block * 5 + i), b"x") for i in range(5)])
        system.run()
        system.run_for(30.0)
        # The edge asks the cloud to re-sign the (unchanged) roots.
        system.edge().request_root_refresh()
        system.run_for(2.0)
        op = reader.get(format_key(2))
        system.wait_for(reader, op, CommitPhase.PHASE_TWO, max_time_s=30)
        assert reader.operation(op).phase is CommitPhase.PHASE_TWO
