"""Integration tests: the WedgeChain logging protocol end to end.

These tests run full deployments (cloud + edge + clients) over the simulated
network and check the paper's protocol-level guarantees: Phase I before
Phase II, validity (only client-proposed entries appear in blocks), agreement
(all readers see identical certified content), and the behaviour of reads of
missing blocks.
"""

from __future__ import annotations

import pytest

from repro.core.system import WedgeChainSystem
from repro.log.proofs import CommitPhase
from repro.sim.environment import Environment, local_environment


@pytest.fixture
def system(small_config):
    return WedgeChainSystem.build(
        config=small_config, num_clients=2, env=local_environment(seed=21)
    )


class TestAddPath:
    def test_add_reaches_both_phases(self, system):
        client = system.client(0)
        op = client.add_batch([f"entry-{i}".encode() for i in range(5)])
        phase = system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=30)
        assert phase is CommitPhase.PHASE_TWO
        record = client.operation(op)
        assert record.phase_one_at is not None
        assert record.phase_two_at is not None
        assert record.phase_one_at <= record.phase_two_at
        assert record.receipt is not None and record.proof is not None

    def test_phase_one_precedes_phase_two_in_wide_area(self, small_config):
        system = WedgeChainSystem.build(config=small_config, num_clients=1, seed=5)
        client = system.client(0)
        op = client.put_batch([(f"k{i}", b"v") for i in range(5)])
        system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=30)
        record = client.operation(op)
        # Phase I must not pay the wide-area RTT (61 ms RTT to Virginia);
        # Phase II must.
        assert record.phase_one_latency < 0.050
        assert record.phase_two_latency > 0.030

    def test_validity_only_client_entries_in_block(self, system):
        client = system.client(0)
        payloads = [f"entry-{i}".encode() for i in range(5)]
        op = client.add_batch(payloads)
        system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=30)
        block_id = client.operation(op).block_id
        block = system.edge().log.block(block_id)
        assert {entry.payload for entry in block.entries} == set(payloads)
        assert all(entry.verify(system.env.registry) for entry in block.entries)

    def test_block_timeout_flushes_partial_batches(self, small_config):
        system = WedgeChainSystem.build(
            config=small_config, num_clients=1, env=local_environment(seed=8)
        )
        client = system.client(0)
        # Fewer entries than the block size: only the timeout can flush them.
        op = client.add_batch([b"lonely-entry"])
        phase = system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=30)
        assert phase is CommitPhase.PHASE_TWO
        assert system.edge().stats["timeout_flushes"] >= 1

    def test_entries_from_two_clients_share_blocks(self, system):
        first, second = system.clients
        op_a = first.add_batch([b"from-first", b"from-first-2"])
        op_b = second.add_batch([b"from-second", b"from-second-2", b"from-second-3"])
        assert system.wait_for_all(
            [(first, op_a), (second, op_b)], CommitPhase.PHASE_TWO, max_time_s=30
        )
        # Five entries with block_size=5: they end up in the same block.
        assert first.operation(op_a).block_id == second.operation(op_b).block_id

    def test_cloud_certifies_each_block_exactly_once(self, system):
        client = system.client(0)
        ops = [client.add_batch([f"e{i}-{j}".encode() for j in range(5)]) for i in range(4)]
        assert system.wait_for_all(
            [(client, op) for op in ops], CommitPhase.PHASE_TWO, max_time_s=60
        )
        assert system.cloud.stats["certifications"] == 4
        assert system.cloud.stats["punishments"] == 0
        assert system.edge().log.certified_count() == 4


class TestReadPath:
    def _committed_block(self, system) -> int:
        client = system.client(0)
        op = client.add_batch([f"entry-{i}".encode() for i in range(5)])
        system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=30)
        return client.operation(op).block_id

    def test_certified_read_is_phase_two_immediately(self, system):
        block_id = self._committed_block(system)
        reader = system.client(1)
        op = reader.read(block_id)
        phase = system.wait_for(reader, op, CommitPhase.PHASE_TWO, max_time_s=30)
        assert phase is CommitPhase.PHASE_TWO
        assert reader.operation(op).details["num_entries"] == 5

    def test_read_of_missing_block_fails_cleanly(self, system):
        reader = system.client(1)
        op = reader.read(999)
        system.run_for(5.0)
        record = reader.operation(op)
        assert record.phase is CommitPhase.FAILED
        assert "not available" in record.failure_reason

    def test_agreement_two_readers_see_identical_content(self, system):
        block_id = self._committed_block(system)
        first, second = system.clients
        op_a, op_b = first.read(block_id), second.read(block_id)
        assert system.wait_for_all(
            [(first, op_a), (second, op_b)], CommitPhase.PHASE_TWO, max_time_s=30
        )
        assert (
            first.operation(op_a).details["block_digest"]
            == second.operation(op_b).details["block_digest"]
        )

    def test_phase_one_read_upgrades_when_certification_arrives(self, small_config):
        """A read served before certification completes later via the proof."""

        # Put the cloud far away so certification takes a while.
        system = WedgeChainSystem.build(config=small_config, num_clients=2, seed=9)
        writer, reader = system.clients
        op = writer.add_batch([f"e{i}".encode() for i in range(5)])
        # Wait only for Phase I, then read immediately.
        system.wait_for(writer, op, CommitPhase.PHASE_ONE, max_time_s=10)
        block_id = writer.operation(op).block_id
        read_op = reader.read(block_id)
        system.wait_for(reader, read_op, CommitPhase.PHASE_ONE, max_time_s=10)
        read_record = reader.operation(read_op)
        # Eventually the block proof arrives and the read becomes Phase II.
        system.wait_for(reader, read_op, CommitPhase.PHASE_TWO, max_time_s=30)
        assert read_record.phase is CommitPhase.PHASE_TWO


class TestSystemFacade:
    def test_stats_aggregation(self, system):
        client = system.client(0)
        op = client.add_batch([b"a", b"b", b"c", b"d", b"e"])
        system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=30)
        stats = system.stats()
        assert stats.phase_two_commits >= 1
        assert stats.blocks_formed >= 1
        assert stats.certifications >= 1
        assert stats.punishments == 0
        assert stats.wan_bytes > 0

    def test_build_with_multiple_edges_partitions_clients(self, small_config):
        config = small_config.with_overrides(num_edge_nodes=2)
        system = WedgeChainSystem.build(config=config, num_clients=4, seed=3)
        assert len(system.edges) == 2
        edges_used = {client.edge for client in system.clients}
        assert len(edges_used) == 2

    def test_build_rejects_zero_clients(self, small_config):
        with pytest.raises(Exception):
            WedgeChainSystem.build(config=small_config, num_clients=0)

    def test_environment_reuse_is_supported(self, small_config):
        env = Environment(seed=4)
        system = WedgeChainSystem.build(config=small_config, num_clients=1, env=env)
        assert system.env is env
