"""Open-loop load generation: arrival processes, schedules, percentiles.

The open-loop layer's whole value is determinism (one seed fixes the entire
offered load, on any substrate) and honest tails (exact nearest-rank
percentiles over every recorded response).  These tests pin both, plus the
validation surface of each arrival process.
"""

from __future__ import annotations

import pytest

from repro.common.config import WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.core.system import WedgeChainSystem
from repro.sim.environment import local_environment
from repro.sim.rng import DeterministicRng
from repro.workloads import (
    MAPArrivalProcess,
    OpenLoopSpec,
    PoissonArrivalProcess,
    ResponseRecorder,
    SimOpenLoopDriver,
    TraceArrivalProcess,
    build_request_schedule,
)


def _workload(seed: int = 11, read_fraction: float = 0.0) -> WorkloadConfig:
    return WorkloadConfig(
        num_clients=2,
        batch_size=10,
        value_size=64,
        read_fraction=read_fraction,
        key_space=500,
        operations_per_client=100,
        seed=seed,
    )


class TestArrivalProcesses:
    def test_poisson_is_seeded_and_mean_matches_rate(self):
        first = PoissonArrivalProcess(rate=100.0, seed=5)
        second = PoissonArrivalProcess(rate=100.0, seed=5)
        gaps = [first.next_interarrival() for _ in range(2000)]
        assert gaps == [second.next_interarrival() for _ in range(2000)]
        assert all(gap >= 0 for gap in gaps)
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1.0 / 100.0, rel=0.15)

    def test_poisson_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivalProcess(rate=0.0)

    def test_trace_replays_and_cycles(self):
        trace = TraceArrivalProcess([0.1, 0.2, 0.3], cycle=True)
        gaps = [trace.next_interarrival() for _ in range(5)]
        assert gaps == [0.1, 0.2, 0.3, 0.1, 0.2]

    def test_finite_trace_raises_when_drained(self):
        trace = TraceArrivalProcess([0.1])
        trace.next_interarrival()
        with pytest.raises(StopIteration):
            trace.next_interarrival()

    def test_trace_validation(self):
        with pytest.raises(ConfigurationError):
            TraceArrivalProcess([])
        with pytest.raises(ConfigurationError):
            TraceArrivalProcess([0.1, -0.2])

    def test_map_is_seeded_and_bursty_states_differ(self):
        rates = (20.0, 400.0)
        transitions = ((0.9, 0.1), (0.2, 0.8))
        first = MAPArrivalProcess(rates, transitions, seed=9)
        second = MAPArrivalProcess(rates, transitions, seed=9)
        gaps = [first.next_interarrival() for _ in range(3000)]
        assert gaps == [second.next_interarrival() for _ in range(3000)]
        # The two-state process must actually visit both regimes.
        assert min(gaps) < 1.0 / 200.0 < max(gaps)

    def test_map_validation(self):
        with pytest.raises(ConfigurationError):
            MAPArrivalProcess((), ())
        with pytest.raises(ConfigurationError):
            MAPArrivalProcess((1.0, 2.0), ((0.5, 0.5),))
        with pytest.raises(ConfigurationError):
            MAPArrivalProcess((1.0,), ((0.7,),))  # row does not sum to 1
        with pytest.raises(ConfigurationError):
            MAPArrivalProcess((1.0,), ((1.0,),), initial_state=3)

    def test_map_accepts_shared_rng(self):
        rng = DeterministicRng(4)
        process = MAPArrivalProcess((10.0,), ((1.0,),), rng=rng)
        assert process.next_interarrival() >= 0
        assert process.state == 0


class TestRequestSchedule:
    def test_schedule_is_deterministic_for_seed(self):
        spec = OpenLoopSpec(workload=_workload(), num_requests=40, rate=100.0)
        assert build_request_schedule(spec, 2) == build_request_schedule(spec, 2)

    def test_schedule_changes_with_seed(self):
        first = OpenLoopSpec(workload=_workload(seed=1), num_requests=20, rate=100.0)
        second = OpenLoopSpec(workload=_workload(seed=2), num_requests=20, rate=100.0)
        assert build_request_schedule(first, 1) != build_request_schedule(second, 1)

    def test_arrival_times_increase_and_clients_round_robin(self):
        spec = OpenLoopSpec(workload=_workload(), num_requests=30, rate=200.0)
        schedule = build_request_schedule(spec, num_clients=3)
        assert len(schedule) == 30
        assert all(
            later.at >= earlier.at
            for earlier, later in zip(schedule, schedule[1:])
        )
        assert [request.client_index for request in schedule[:6]] == [0, 1, 2, 0, 1, 2]

    def test_write_requests_carry_full_batches(self):
        spec = OpenLoopSpec(workload=_workload(), num_requests=5, rate=100.0)
        for request in build_request_schedule(spec, 1):
            assert request.kind == "put"
            assert len(request.items) == 10

    def test_read_fraction_produces_gets(self):
        spec = OpenLoopSpec(
            workload=_workload(read_fraction=0.5), num_requests=40, rate=100.0
        )
        kinds = {request.kind for request in build_request_schedule(spec, 1)}
        assert kinds == {"put", "get"}

    def test_finite_trace_bounds_the_schedule(self):
        spec = OpenLoopSpec(
            workload=_workload(),
            num_requests=100,
            arrivals=TraceArrivalProcess([0.01] * 7),
        )
        assert len(build_request_schedule(spec, 1)) == 7

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            OpenLoopSpec(workload=_workload(), num_requests=0)
        with pytest.raises(ConfigurationError):
            OpenLoopSpec(workload=_workload(), num_requests=5, rate=-1.0)


class TestResponseRecorder:
    def test_exact_nearest_rank_percentiles(self):
        recorder = ResponseRecorder()
        for value in range(1, 1001):  # 1..1000 ms as seconds
            recorder.observe(value / 1000.0)
        percentiles = recorder.percentiles()
        assert percentiles["p50"] == pytest.approx(0.501)
        assert percentiles["p90"] == pytest.approx(0.901)
        assert percentiles["p99"] == pytest.approx(0.991)
        # p999 is a real observed sample, not an interpolation.
        assert percentiles["p999"] == pytest.approx(1.000)
        assert recorder.completed == 1000


class TestSimOpenLoopDriver:
    def _run(self, seed: int = 11):
        system = WedgeChainSystem.build(
            num_clients=2, env=local_environment(seed=seed)
        )
        spec = OpenLoopSpec(workload=_workload(seed=seed), num_requests=30, rate=150.0)
        return SimOpenLoopDriver(system, spec).run()

    def test_open_loop_run_completes_and_reports(self):
        result = self._run()
        assert result.offered == 30
        assert result.completed == 30
        assert result.failed == 0
        assert result.throughput_rps > 0
        labels = [line.split("=")[0] for line in result.report_lines()[1:]]
        assert labels == ["p50", "p90", "p99", "p999"]
        assert 0 < result.percentiles_s["p50"] <= result.percentiles_s["p999"]

    def test_open_loop_run_is_deterministic(self):
        first = self._run()
        second = self._run()
        assert first.percentiles_s == second.percentiles_s
        assert first.duration_s == second.duration_s
