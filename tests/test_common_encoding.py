"""Unit tests for canonical encoding (the basis of digests and signatures)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import pytest

from repro.common import SerializationError
from repro.common.encoding import (
    canonical_decode,
    canonical_encode,
    encoded_size,
    to_jsonable,
)


@dataclass(frozen=True)
class _Point:
    x: int
    y: int


class _Colour(Enum):
    RED = "red"
    BLUE = "blue"


class TestCanonicalEncode:
    def test_deterministic_for_dicts(self):
        a = canonical_encode({"b": 1, "a": 2})
        b = canonical_encode({"a": 2, "b": 1})
        assert a == b

    def test_dataclass_encodes_fields_and_type(self):
        tree = to_jsonable(_Point(1, 2))
        assert tree["__type__"] == "_Point"
        assert tree["x"] == 1 and tree["y"] == 2

    def test_bytes_roundtrip_as_hex(self):
        tree = to_jsonable(b"\x00\xff")
        assert tree == {"__bytes__": "00ff"}

    def test_enum_encoding(self):
        tree = to_jsonable(_Colour.RED)
        assert tree == {"__enum__": "_Colour", "value": "red"}

    def test_tuples_and_lists_equal(self):
        assert canonical_encode((1, 2, 3)) == canonical_encode([1, 2, 3])

    def test_nested_structures(self):
        value = {"points": [_Point(0, 1), _Point(2, 3)], "tag": b"xy"}
        encoded = canonical_encode(value)
        decoded = canonical_decode(encoded)
        assert decoded["tag"] == {"__bytes__": "7879"}
        assert len(decoded["points"]) == 2

    def test_different_values_different_encodings(self):
        assert canonical_encode(_Point(1, 2)) != canonical_encode(_Point(2, 1))

    def test_unsupported_type_raises(self):
        with pytest.raises(SerializationError):
            canonical_encode(object())

    def test_non_string_dict_keys_coerced(self):
        encoded = canonical_encode({1: "a", 2: "b"})
        decoded = canonical_decode(encoded)
        assert decoded == {"1": "a", "2": "b"}

    def test_frozenset_is_order_independent(self):
        assert canonical_encode(frozenset({3, 1, 2})) == canonical_encode(
            frozenset({2, 3, 1})
        )


class TestCanonicalDecode:
    def test_invalid_bytes_raise(self):
        with pytest.raises(SerializationError):
            canonical_decode(b"\xff\xfe not json")

    def test_roundtrip_scalars(self):
        for value in (None, True, 1, 1.5, "text"):
            assert canonical_decode(canonical_encode(value)) == value


class TestEncodedSize:
    def test_size_matches_encoding_length(self):
        value = {"key": "value", "n": 42}
        assert encoded_size(value) == len(canonical_encode(value))

    def test_larger_payloads_are_larger(self):
        small = encoded_size({"data": "x"})
        large = encoded_size({"data": "x" * 1000})
        assert large > small + 900
