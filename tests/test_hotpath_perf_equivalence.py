"""Equivalence and regression tests for the hot-path optimizations.

The perf overhaul (cached canonical encoding, incremental Merkle trees,
bisect page lookups, memoized verification) must be *behaviourally
invisible*: identical inputs must produce byte-identical encodings, the same
digests, the same roots and proofs, and the same lookup results as the seed
implementations.  This module checks that with golden vectors captured from
the unoptimized seed plus property-based comparisons against straightforward
reference implementations.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.encoding import canonical_encode, encoded_size, reference_encode
from repro.common.errors import MergeProtocolError, ProtocolError
from repro.common.identifiers import (
    OperationId,
    OperationKind,
    client_id,
    cloud_id,
    edge_id,
)
from repro.common.config import LSMerkleConfig
from repro.crypto.hashing import (
    digest_chain,
    digest_leaf,
    digest_pair,
    digest_value,
    is_hex_digest,
    sha256_hex,
)
from repro.crypto.signatures import KeyRegistry, Signature
from repro.log.block import build_block, compute_block_digest
from repro.log.entry import EntryBody, LogEntry
from repro.log.proofs import CommitPhase, issue_block_proof
from repro.lsm.compaction import merge_levels, partition_into_pages
from repro.lsm.page import Page, build_page
from repro.lsm.records import KeyFence, KVRecord
from repro.lsmerkle.merge import CloudIndexMirror
from repro.lsmerkle.mlsm import GlobalRootStatement, compute_global_root, sign_global_root
from repro.merkle.tree import MerkleTree

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_digests.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

ALICE = client_id("alice")
EDGE = edge_id("edge-0")


# ----------------------------------------------------------------------
# Golden digests: byte-identical to the seed implementation
# ----------------------------------------------------------------------
def _golden_scalar_cases() -> dict:
    return {
        "none": None,
        "bool_true": True,
        "int_negative": -12345,
        "int_big": 2**80,
        "float_simple": 0.5,
        "float_tricky": 1e-9,
        "float_repr": 12.10,
        "str_unicode": "héllo — wörld ☃",
        "str_escapes": 'line\nbreak\ttab"quote\\back',
        "bytes": b"\x00\x01\xfe\xff",
        "tuple_mixed": ("a", 1, 2.5, None, True, b"\xab"),
        "nested_list": [[1, [2, [3]]], {"k": [4, 5]}],
        "dict_mixed_keys": {1: "one", "two": 2, 2.5: "half", True: "t"},
        "frozenset_strs": frozenset({"b", "a", "c"}),
        "enum_plain": CommitPhase.PHASE_TWO,
        "enum_str": OperationKind.PUT,
        "node_id": EDGE,
        "operation_id": OperationId(client=ALICE, sequence=7),
        "kv_record": KVRecord(
            key="sensor/17", sequence=42, value=b"\x00payload\xff", written_at=12.5
        ),
        "key_fence": KeyFence(lower="a", upper="m"),
    }


class TestGoldenDigests:
    """Encoding/digest outputs must match vectors captured from the seed."""

    @pytest.mark.parametrize("name", sorted(_golden_scalar_cases()))
    def test_value_encoding_and_digest(self, name):
        value = _golden_scalar_cases()[name]
        expected = GOLDEN[name]
        assert canonical_encode(value).decode("utf-8") == expected["encoded"]
        assert digest_value(value) == expected["digest"]
        # Second call exercises the memo hit path — must stay identical.
        assert canonical_encode(value).decode("utf-8") == expected["encoded"]
        assert reference_encode(value) == canonical_encode(value)
        assert encoded_size(value) == len(expected["encoded"].encode("utf-8"))

    def test_page_golden(self):
        records = [
            KVRecord(key=f"k{i:03d}", sequence=i, value=bytes([i]) * 3, written_at=float(i))
            for i in range(7)
        ]
        page = build_page(records, created_at=3.25)
        assert page.digest() == GOLDEN["page_digest"]["digest"]
        composite = (
            tuple(page.records),
            page.fence.lower,
            page.fence.upper,
            page.created_at,
            page.source_block_id,
        )
        assert canonical_encode(composite).decode("utf-8") == GOLDEN["page_composite"]["encoded"]

    def test_block_and_entry_golden(self):
        entries = [
            LogEntry(
                body=EntryBody(
                    producer=ALICE,
                    sequence=i,
                    payload=b"payload-%d" % i,
                    produced_at=float(i),
                ),
                signature=Signature(
                    signer=ALICE, scheme="hmac", value=bytes([i + 1]) * 32
                ),
            )
            for i in range(5)
        ]
        block = build_block(edge=EDGE, block_id=3, entries=entries, created_at=9.75)
        assert (
            compute_block_digest(block.edge, block.block_id, block.entries)
            == GOLDEN["block_digest"]["digest"]
        )
        assert canonical_encode(entries[0].body).decode() == GOLDEN["entry_body"]["encoded"]
        assert canonical_encode(entries[0]).decode() == GOLDEN["log_entry"]["encoded"]

    def test_statement_and_merkle_golden(self):
        roots = ("a" * 64, "b" * 64)
        statement = GlobalRootStatement(
            edge=EDGE,
            level_roots=roots,
            global_root=compute_global_root(roots),
            version=3,
            timestamp=44.5,
        )
        assert (
            canonical_encode(statement).decode()
            == GOLDEN["global_root_statement"]["encoded"]
        )
        leaves = [digest_leaf(bytes([i]) * 4) for i in range(9)]
        tree = MerkleTree(leaves)
        assert tree.root == GOLDEN["merkle_root_9"]["digest"]
        assert MerkleTree([]).root == GOLDEN["merkle_root_empty"]["digest"]
        assert MerkleTree(leaves[:1]).root == GOLDEN["merkle_root_1"]["digest"]
        proof = tree.prove(5)
        assert proof.compute_root() == GOLDEN["merkle_proof_5"]["digest"]
        assert [[s.side, s.sibling] for s in proof.steps] == GOLDEN["merkle_proof_5"]["steps"]
        assert digest_pair("a" * 64, "b" * 64) == GOLDEN["digest_pair"]["digest"]
        assert digest_chain(["a" * 64, "b" * 64, "c" * 64]) == GOLDEN["digest_chain"]["digest"]

    def test_certification_message_golden(self):
        """Pipelined-certification statements through the precompiled
        template fast path must stay byte-identical to the reference
        encoder (these are exactly the bytes batch/window signatures and
        batch-root signatures cover)."""

        from repro.crypto.signatures import BatchRootStatement
        from repro.messages.log_messages import (
            CertifyBatchStatement,
            CertifyStatement,
            CertifyWindowStatement,
        )

        cloud = cloud_id("cloud-0")
        items = tuple(
            CertifyStatement(
                edge=EDGE, block_id=i, block_digest=f"{i:064x}", num_entries=4
            )
            for i in range(2)
        )
        batch = CertifyBatchStatement(edge=EDGE, items=items)
        items2 = tuple(
            CertifyStatement(
                edge=EDGE, block_id=2 + i, block_digest=f"{2 + i:064x}", num_entries=4
            )
            for i in range(2)
        )
        window = CertifyWindowStatement(
            edge=EDGE, batches=(batch, CertifyBatchStatement(edge=EDGE, items=items2))
        )
        root = BatchRootStatement(
            signer=cloud,
            context="certify-batch",
            root="ab" * 32,
            count=4,
            issued_at=2.5,
            about=EDGE,
        )
        for name, value in (
            ("certify_statement", items[0]),
            ("certify_batch_statement", batch),
            ("certify_window_statement", window),
            ("batch_root_statement", root),
        ):
            expected = GOLDEN[name]
            assert canonical_encode(value).decode() == expected["encoded"]
            assert digest_value(value) == expected["digest"]
            assert reference_encode(value) == canonical_encode(value)
            assert encoded_size(value) == len(expected["encoded"])

    def test_merge_golden(self):
        source = build_page(
            [
                KVRecord(key=f"k{i:02d}", sequence=100 + i, value=b"new", written_at=50.0)
                for i in range(0, 20, 2)
            ],
            created_at=50.0,
        )
        target = partition_into_pages(
            sorted(
                [
                    KVRecord(key=f"k{i:02d}", sequence=i, value=b"old", written_at=1.0)
                    for i in range(15)
                ],
                key=lambda record: record.key,
            ),
            page_capacity=4,
            created_at=1.0,
        )
        result = merge_levels([source], target, created_at=60.0, page_capacity=4)
        assert (
            digest_value(tuple(page.digest() for page in result.pages))
            == GOLDEN["merge_result_digests"]["digest"]
        )


# ----------------------------------------------------------------------
# Property: the fragment encoder matches the reference encoder
# ----------------------------------------------------------------------
jsonable_strategy = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=8), children, max_size=4)
    | st.frozensets(st.text(max_size=8), max_size=4),
    max_leaves=12,
)


class TestEncoderEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(jsonable_strategy)
    def test_fragment_matches_reference(self, value):
        assert canonical_encode(value) == reference_encode(value)
        assert encoded_size(value) == len(reference_encode(value))

    @settings(max_examples=60, deadline=None)
    @given(
        st.text(max_size=20),
        st.integers(min_value=0, max_value=2**40),
        st.binary(max_size=50),
        st.floats(allow_nan=False, allow_infinity=False),
    )
    def test_dataclass_fragment_matches_reference(self, key, sequence, value, ts):
        record = KVRecord(key=key, sequence=sequence, value=value, written_at=ts)
        assert canonical_encode(record) == reference_encode(record)
        # Memo hit must return the same bytes.
        assert canonical_encode(record) == reference_encode(record)
        nested = (record, [record, record], {"r": record})
        assert canonical_encode(nested) == reference_encode(nested)


# ----------------------------------------------------------------------
# Property: bisect Page.lookup matches the seed's linear scan
# ----------------------------------------------------------------------
def _seed_lookup(page: Page, key: str):
    """The seed implementation: full linear scan keeping the newest match."""

    best = None
    for record in page.records:
        if record.key == key and (best is None or record.is_newer_than(best)):
            best = record
    return best


class TestPageLookupEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(
            st.tuples(st.text(alphabet="abcd", max_size=2), st.integers(0, 10**6)),
            max_size=30,
            unique_by=lambda pair: pair[1],
        ),
        st.text(alphabet="abcd", max_size=2),
    )
    def test_bisect_lookup_matches_linear_scan(self, pairs, probe):
        records = [
            KVRecord(key=key, sequence=sequence, value=b"v") for key, sequence in pairs
        ]
        page = build_page(records, created_at=0.0)
        keys = {record.key for record in records} | {probe}
        for key in keys:
            assert page.lookup(key) == _seed_lookup(page, key)

    def test_lookup_picks_newest_among_duplicates_any_order(self):
        # Direct construction with equal keys in non-sequence order: the
        # equal-key run must still yield the newest version.
        records = (
            KVRecord(key="k", sequence=5, value=b"5"),
            KVRecord(key="k", sequence=9, value=b"9"),
            KVRecord(key="k", sequence=2, value=b"2"),
        )
        page = Page(records=records, fence=KeyFence(), created_at=0.0)
        assert page.lookup("k").sequence == 9

    def test_unsorted_page_construction_rejected(self):
        with pytest.raises(ProtocolError):
            Page(
                records=(
                    KVRecord(key="b", sequence=1, value=b""),
                    KVRecord(key="a", sequence=2, value=b""),
                ),
                fence=KeyFence(),
                created_at=0.0,
            )

    def test_out_of_fence_page_construction_rejected(self):
        with pytest.raises(ProtocolError):
            Page(
                records=(KVRecord(key="z", sequence=1, value=b""),),
                fence=KeyFence(lower="a", upper="m"),
                created_at=0.0,
            )

    def test_build_page_rejects_bad_explicit_fence(self):
        with pytest.raises(ProtocolError):
            build_page(
                [KVRecord(key="z", sequence=1, value=b"")],
                created_at=0.0,
                fence=KeyFence(lower="a", upper="m"),
            )

    def test_partition_rejects_unsorted_or_duplicate_records(self):
        with pytest.raises(ProtocolError):
            partition_into_pages(
                [
                    KVRecord(key="b", sequence=1, value=b""),
                    KVRecord(key="a", sequence=2, value=b""),
                ],
                page_capacity=2,
                created_at=0.0,
            )
        with pytest.raises(ProtocolError):
            partition_into_pages(
                [
                    KVRecord(key="a", sequence=1, value=b""),
                    KVRecord(key="a", sequence=2, value=b""),
                ],
                page_capacity=2,
                created_at=0.0,
            )


# ----------------------------------------------------------------------
# Property: incremental Merkle updates match from-scratch construction
# ----------------------------------------------------------------------
digest_strategy = st.integers(min_value=0, max_value=2**64 - 1).map(
    lambda n: sha256_hex(n.to_bytes(8, "big"))
)


def _assert_tree_equals_fresh(tree: MerkleTree, leaves: list[str]) -> None:
    fresh = MerkleTree(leaves)
    assert tree.root == fresh.root
    assert tree.leaves == fresh.leaves
    assert tree.height == fresh.height
    for index in range(len(leaves)):
        incremental_proof = tree.prove(index)
        fresh_proof = fresh.prove(index)
        assert incremental_proof == fresh_proof
        assert incremental_proof.verifies_against(fresh.root)


class TestMerkleIncrementalEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(digest_strategy, min_size=0, max_size=24))
    def test_append_sequence_matches_fresh_build(self, leaves):
        tree = MerkleTree([])
        for digest in leaves:
            tree.append_leaf(digest)
        _assert_tree_equals_fresh(tree, leaves)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(digest_strategy, min_size=1, max_size=24),
        st.lists(st.tuples(st.integers(0, 10**6), digest_strategy), max_size=12),
    )
    def test_replace_sequence_matches_fresh_build(self, leaves, updates):
        tree = MerkleTree(leaves)
        current = list(leaves)
        for slot, digest in updates:
            index = slot % len(current)
            current[index] = digest
            tree.replace_leaf(index, digest)
        _assert_tree_equals_fresh(tree, current)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(digest_strategy, min_size=0, max_size=20),
        st.lists(digest_strategy, min_size=0, max_size=20),
    )
    def test_update_leaves_matches_fresh_build(self, initial, final):
        tree = MerkleTree(initial)
        tree.update_leaves(final)
        _assert_tree_equals_fresh(tree, final)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(digest_strategy, min_size=0, max_size=16))
    def test_mirror_cached_roots_match_rebuild(self, digests):
        mirror = CloudIndexMirror(edge=EDGE, config=LSMerkleConfig.paper_default())
        mirror.level_page_digests[1] = list(digests)
        first = mirror.level_roots()
        # Cache hit must return the same value, and mutating the digest list
        # behind the mirror's back must invalidate the memo.
        assert mirror.level_roots() == first
        assert first[0] == MerkleTree(digests).root
        mirror.level_page_digests[1] = list(digests) + ["f" * 64]
        assert mirror.level_roots()[0] == MerkleTree(list(digests) + ["f" * 64]).root


# ----------------------------------------------------------------------
# Regression: caches survive dataclass replace / reconstruction
# ----------------------------------------------------------------------
class TestCacheLifecycle:
    def test_cached_digest_not_inherited_by_replace(self):
        record = KVRecord(key="k", sequence=1, value=b"v", written_at=1.0)
        original_digest = digest_value(record)
        replaced = dataclasses.replace(record, sequence=2)
        assert digest_value(replaced) != original_digest
        assert digest_value(replaced) == digest_value(
            KVRecord(key="k", sequence=2, value=b"v", written_at=1.0)
        )
        # The original's memo must be unaffected.
        assert digest_value(record) == original_digest

    def test_equal_reconstructed_values_share_encoding(self):
        one = KVRecord(key="k", sequence=1, value=b"v", written_at=1.0)
        canonical_encode(one)  # populate the memo on `one` only
        two = KVRecord(key="k", sequence=1, value=b"v", written_at=1.0)
        assert canonical_encode(one) == canonical_encode(two) == reference_encode(two)
        assert one == two

    def test_page_caches_survive_replace(self):
        records = tuple(
            KVRecord(key=f"k{i}", sequence=i, value=b"v") for i in range(5)
        )
        page = build_page(records, created_at=1.0)
        assert page.digest() and page.wire_size and page.keys()
        moved = dataclasses.replace(page, created_at=2.0)
        assert moved.digest() != page.digest()
        assert moved.keys() == page.keys()
        assert moved.wire_size == page.wire_size
        assert moved.lookup("k3") == page.lookup("k3")

    def test_block_records_memo_consistent(self):
        from repro.lsmerkle.codec import encode_put, records_from_block
        from repro.log.entry import make_entry

        registry = KeyRegistry()
        registry.register(ALICE)
        entries = [
            make_entry(registry, ALICE, i, encode_put(f"k{i}", b"v"), 1.0)
            for i in range(3)
        ]
        block = build_block(EDGE, 0, entries, 1.0)
        first = records_from_block(block)
        assert records_from_block(block) is first
        assert [record.key for record in first] == ["k0", "k1", "k2"]


# ----------------------------------------------------------------------
# Satellites: hex validation, Counter digest comparison, verify memo
# ----------------------------------------------------------------------
class TestSatellites:
    def test_is_hex_digest_accepts_real_digests(self):
        assert is_hex_digest(sha256_hex(b"x"))
        assert is_hex_digest("A" * 64)

    @pytest.mark.parametrize(
        "bad",
        [
            "0x" + "a" * 62,
            "+" + "a" * 63,
            "-" + "a" * 63,
            " " + "a" * 63,
            "a" * 63 + "\n",
            "a" * 63 + "g",
            "_" + "a" * 63,
            "a" * 63,
            "a" * 65,
            12345,
        ],
    )
    def test_is_hex_digest_rejects_lookalikes(self, bad):
        assert not is_hex_digest(bad)

    def test_verify_page_digests_checks_multiplicity(self):
        mirror = CloudIndexMirror(edge=EDGE, config=LSMerkleConfig.paper_default())
        page = build_page(
            [KVRecord(key="a", sequence=1, value=b"v")], created_at=1.0
        )
        mirror.level_page_digests[1] = [page.digest(), page.digest()]
        with pytest.raises(MergeProtocolError):
            mirror._verify_page_digests([page], 1, "source")
        mirror._verify_page_digests([page, page], 1, "source")

    def test_block_proof_verify_cached_matches_verify(self):
        registry = KeyRegistry()
        cloud = cloud_id("c")
        registry.register(cloud)
        proof = issue_block_proof(registry, cloud, EDGE, 1, "a" * 64, 1.0)
        assert proof.verify(registry) == proof.verify_cached(registry) is True
        assert proof.verify_cached(registry) is True
        other_registry = KeyRegistry()
        with pytest.raises(Exception):
            proof.verify_cached(other_registry)

    def test_signed_root_verify_cached_matches_verify(self):
        registry = KeyRegistry()
        cloud = cloud_id("c")
        registry.register(cloud)
        signed = sign_global_root(
            registry=registry,
            cloud=cloud,
            edge=EDGE,
            level_roots=("a" * 64,),
            version=1,
            timestamp=1.0,
        )
        assert signed.verify(registry, cloud) is True
        assert signed.verify_cached(registry, cloud) is True
        assert signed.verify_cached(registry, cloud) is True
        assert signed.verify_cached(registry, edge_id("other")) is False
