"""Unit tests for the deterministic fault-injection subsystem.

Covers the three layers of :mod:`repro.faults` in isolation from the full
protocol: :class:`RetryPolicy` arithmetic, :class:`FaultPlan` validation,
and :class:`FaultInjector` behavior on a two-node toy network (drop, delay,
duplicate, reorder, probability, crash/restart, trace determinism).
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.identifiers import NodeId, NodeRole
from repro.common.regions import Region
from repro.faults import (
    CrashEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RegionPartitionRule,
    RetryPolicy,
)
from repro.sim.environment import Environment


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_capped_exponential_delays(self):
        policy = RetryPolicy(base_s=0.5, factor=2.0, cap_s=4.0)
        delays = [policy.delay(attempt) for attempt in range(1, 7)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0, 4.0]

    def test_constant_policy_never_grows(self):
        policy = RetryPolicy.constant(0.25, max_attempts=3)
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.25, 0.25, 0.25]
        assert policy.allows(3) and not policy.allows(4)

    def test_fixed_timeout_matches_flat_scan(self):
        policy = RetryPolicy.fixed_timeout(1.5)
        # timeout_for(retries) is what an overdue scan consumes: flat here.
        assert [policy.timeout_for(r) for r in (0, 1, 5)] == [1.5, 1.5, 1.5]

    def test_timeout_for_is_next_attempt_delay(self):
        policy = RetryPolicy(base_s=1.0, factor=2.0, cap_s=8.0)
        assert policy.timeout_for(0) == policy.delay(1)
        assert policy.timeout_for(3) == policy.delay(4)

    def test_exhaustion_budget(self):
        policy = RetryPolicy(base_s=1.0, max_attempts=2)
        assert not policy.exhausted(1)
        assert policy.exhausted(2)
        assert RetryPolicy(base_s=1.0).exhausted(10 ** 6) is False

    def test_jitter_requires_rng_and_stays_bounded(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=1.0, jitter_fraction=0.2)

        from repro.sim.rng import DeterministicRng

        policy = RetryPolicy(
            base_s=1.0, factor=1.0, jitter_fraction=0.5, rng=DeterministicRng(3)
        )
        for _ in range(50):
            assert 0.5 <= policy.delay(1) <= 1.5

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=1.0, factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=2.0, cap_s=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=1.0, max_attempts=-1)


# ----------------------------------------------------------------------
# FaultPlan validation
# ----------------------------------------------------------------------
class TestFaultPlanValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("corrupt")

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultRule("drop", probability=0.0)
        with pytest.raises(ConfigurationError):
            FaultRule("drop", probability=1.5)

    def test_window_must_not_invert(self):
        with pytest.raises(ConfigurationError):
            FaultRule("drop", start_s=2.0, until_s=1.0)

    def test_partition_sides_disjoint_and_nonempty(self):
        with pytest.raises(ConfigurationError):
            RegionPartitionRule(frozenset(), frozenset({Region.VIRGINIA}), 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            RegionPartitionRule(
                frozenset({Region.VIRGINIA}),
                frozenset({Region.VIRGINIA}),
                0.0,
                1.0,
            )

    def test_restart_must_follow_crash(self):
        node = NodeId(NodeRole.EDGE, "edge-0")
        with pytest.raises(ConfigurationError):
            CrashEvent(node, at_s=2.0, restart_at_s=2.0)

    def test_chainable_builders_do_not_mutate(self):
        base = FaultPlan(seed=5)
        grown = base.with_rule(FaultRule("drop"))
        assert base.is_empty() and not grown.is_empty()

    def test_rule_selectors(self):
        edge = NodeId(NodeRole.EDGE, "edge-0")
        cloud = NodeId(NodeRole.CLOUD, "cloud-0")
        by_role = FaultRule("drop", dst=NodeRole.CLOUD)
        assert by_role.matches(edge, cloud, object())
        assert not by_role.matches(cloud, edge, object())
        by_id = FaultRule("drop", src=edge)
        assert by_id.matches(edge, cloud, object())
        assert not by_id.matches(cloud, edge, object())
        by_pred = FaultRule("drop", src=lambda n: n.name.endswith("-0"))
        assert by_pred.matches(edge, cloud, object())
        by_type = FaultRule("drop", message_type="Ping")
        assert by_type.matches(edge, cloud, Ping(1)) is True
        assert by_type.matches(edge, cloud, object()) is False

    def test_activity_window_half_open(self):
        rule = FaultRule("drop", start_s=1.0, until_s=2.0)
        assert not rule.active_at(0.5)
        assert rule.active_at(1.0)
        assert not rule.active_at(2.0)


# ----------------------------------------------------------------------
# Injector behavior on a toy two-node network
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Ping:
    seq: int

    @property
    def wire_size(self) -> int:
        return 32


class Recorder:
    """Minimal environment node that records deliveries."""

    def __init__(self, env: Environment, name: str, region: Region) -> None:
        self.node_id = NodeId(NodeRole.EDGE, name)
        self.region = region
        self.env = env
        self.received: list[tuple[float, int]] = []
        env.attach(self)

    def on_message(self, sender: NodeId, message: Ping) -> None:
        self.received.append((self.env.now(), message.seq))


def toy_pair(seed: int = 7):
    env = Environment(seed=seed)
    a = Recorder(env, "sender-a", Region.CALIFORNIA)
    b = Recorder(env, "receiver-b", Region.VIRGINIA)
    return env, a, b


def run_plan(env, a, b, plan, count=10):
    injector = FaultInjector(env, plan).install()
    for seq in range(count):
        env.send(a.node_id, b.node_id, Ping(seq))
    env.run_until(60.0)
    return injector


class TestFaultInjector:
    def test_drop_rule_removes_matching_messages(self):
        env, a, b = toy_pair()
        plan = FaultPlan(seed=1).with_rule(
            FaultRule("drop", message_type="Ping", max_count=3)
        )
        injector = run_plan(env, a, b, plan)
        # Per-message latency jitter may reorder arrivals; the first three
        # sends are the ones dropped (rule evaluated at send time, in order).
        assert sorted(seq for _, seq in b.received) == list(range(3, 10))
        assert injector.rule_fire_counts() == (3,)
        assert [entry[1] for entry in injector.trace] == ["drop"] * 3

    def test_delay_rule_defers_but_delivers(self):
        env, a, b = toy_pair()
        plan = FaultPlan(seed=1).with_rule(
            FaultRule("delay", delay_s=5.0, max_count=1)
        )
        run_plan(env, a, b, plan, count=2)
        assert sorted(seq for _, seq in b.received) == [0, 1]
        times = {seq: at for at, seq in b.received}
        # The delayed message lands roughly delay_s after the undelayed one.
        assert times[0] > times[1] + 4.0

    def test_duplicate_rule_delivers_twice(self):
        env, a, b = toy_pair()
        plan = FaultPlan(seed=1).with_rule(
            FaultRule("duplicate", max_count=1, spread_s=0.5)
        )
        run_plan(env, a, b, plan, count=3)
        seqs = sorted(seq for _, seq in b.received)
        assert seqs == [0, 0, 1, 2]

    def test_reorder_scatters_within_spread(self):
        env, a, b = toy_pair()
        plan = FaultPlan(seed=9).with_rule(FaultRule("reorder", spread_s=2.0))
        run_plan(env, a, b, plan, count=8)
        assert sorted(seq for _, seq in b.received) == list(range(8))
        # With a 2 s scatter over back-to-back sends, order must change.
        assert [seq for _, seq in b.received] != list(range(8))

    def test_probabilistic_rule_is_seed_deterministic(self):
        def trace_for(seed):
            env, a, b = toy_pair()
            plan = FaultPlan(seed=seed).with_rule(
                FaultRule("drop", probability=0.5)
            )
            return tuple(run_plan(env, a, b, plan, count=20).trace)

        assert trace_for(4) == trace_for(4)
        assert trace_for(4) != trace_for(5)

    def test_partition_rule_severs_both_directions(self):
        env, a, b = toy_pair()
        plan = FaultPlan(seed=1).with_partition(
            RegionPartitionRule(
                frozenset({Region.CALIFORNIA}),
                frozenset({Region.VIRGINIA}),
                start_s=0.0,
                until_s=10.0,
            )
        )
        injector = FaultInjector(env, plan).install()
        env.send(a.node_id, b.node_id, Ping(0))
        env.send(b.node_id, a.node_id, Ping(1))
        env.run_until(5.0)
        assert b.received == [] and a.received == []
        assert {entry[1] for entry in injector.trace} == {"partition-drop"}
        # After the window closes traffic flows again.
        env.run_until(12.0)
        env.send(a.node_id, b.node_id, Ping(2))
        env.run_until(20.0)
        assert [seq for _, seq in b.received] == [2]

    def test_crash_drops_sends_and_inflight_deliveries(self):
        env, a, b = toy_pair()
        plan = FaultPlan(seed=1).with_crash(
            CrashEvent(b.node_id, at_s=0.01, restart_at_s=1.0)
        )
        FaultInjector(env, plan).install()
        env.send(a.node_id, b.node_id, Ping(0))  # in flight at crash time
        env.run_until(0.5)
        assert b.received == []
        assert env.network.stats.dropped_deliveries == 1
        env.run_until(2.0)
        env.send(a.node_id, b.node_id, Ping(1))
        env.run_until(3.0)
        assert [seq for _, seq in b.received] == [1]

    def test_crash_calls_lifecycle_hooks(self):
        env, a, b = toy_pair()
        calls = []
        b.on_crash = lambda: calls.append("crash")
        b.on_restart = lambda: calls.append("restart")
        plan = FaultPlan(seed=1).with_crash(
            CrashEvent(b.node_id, at_s=0.1, restart_at_s=0.2)
        )
        FaultInjector(env, plan).install()
        env.run_until(1.0)
        assert calls == ["crash", "restart"]

    def test_double_install_rejected_and_uninstall_stops_faults(self):
        env, a, b = toy_pair()
        plan = FaultPlan(seed=1).with_rule(FaultRule("drop"))
        injector = FaultInjector(env, plan).install()
        with pytest.raises(SimulationError):
            injector.install()
        injector.uninstall()
        env.send(a.node_id, b.node_id, Ping(0))
        env.run_until(5.0)
        assert [seq for _, seq in b.received] == [0]

    def test_faults_quiet_after_covers_every_clause(self):
        node = NodeId(NodeRole.EDGE, "edge-0")
        plan = (
            FaultPlan(seed=1)
            .with_rule(FaultRule("delay", until_s=3.0, delay_s=2.0))
            .with_partition(
                RegionPartitionRule(
                    frozenset({Region.CALIFORNIA}),
                    frozenset({Region.VIRGINIA}),
                    start_s=0.0,
                    until_s=4.0,
                )
            )
            .with_crash(CrashEvent(node, at_s=1.0, restart_at_s=6.0))
        )
        env = Environment(seed=1)
        injector = FaultInjector(env, plan)
        assert injector.faults_quiet_after() == 6.0
