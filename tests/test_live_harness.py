"""The wall-clock service harness: framing, transport, runtime, fleet.

Covers the layers of :mod:`repro.service` from the bottom up — frame
encode/decode hygiene (truncation and oversize are loud, EOF is clean),
the asyncio transport's parity semantics (send hooks, offline gates, stats
accounting), the live environment's timer surface, and a full
1-cloud/2-edge fleet smoke over unix sockets and TCP.  Every async test
wraps its body in ``asyncio.wait_for`` so a wedged fleet fails fast instead
of hanging the suite.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.common.errors import SimulationError, TransportError
from repro.common.identifiers import client_id, edge_id
from repro.log.proofs import CommitPhase
from repro.messages import GetRequest
from repro.common.identifiers import OperationId
from repro.service import (
    FrameError,
    LiveFleet,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
)
from repro.service.framing import decode_payload

#: Hard wall-clock cap for any single async test body.
_TEST_TIMEOUT_S = 30.0


def run_async(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, timeout=_TEST_TIMEOUT_S)

    return asyncio.run(capped())


def _sample_message():
    client = client_id("frame-client")
    return GetRequest(
        requester=client,
        operation_id=OperationId(client=client, sequence=9),
        key="sensor-1",
    )


class TestFraming:
    def test_frame_roundtrip(self):
        sender = edge_id("frame-edge")
        message = _sample_message()
        frame = encode_frame(sender, message)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        decoded_sender, decoded_message = decode_payload(frame[4:])
        assert decoded_sender == sender
        assert decoded_message == message

    def test_read_frame_clean_eof(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            assert await read_frame(reader) is None

        run_async(scenario())

    def test_read_frame_truncated_payload_is_loud(self):
        async def scenario():
            reader = asyncio.StreamReader()
            frame = encode_frame(edge_id("t"), _sample_message())
            reader.feed_data(frame[:-3])  # drop the tail mid-payload
            reader.feed_eof()
            with pytest.raises(FrameError, match="mid-frame"):
                await read_frame(reader)

        run_async(scenario())

    def test_read_frame_truncated_prefix_is_loud(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")
            reader.feed_eof()
            with pytest.raises(FrameError, match="mid-length-prefix"):
                await read_frame(reader)

        run_async(scenario())

    def test_read_frame_rejects_oversize_length(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameError, match="exceeds cap"):
                await read_frame(reader)

        run_async(scenario())

    def test_malformed_envelope_is_loud(self):
        from repro.storage.codec import encode_record

        with pytest.raises(FrameError, match="envelope"):
            decode_payload(encode_record({"only": "half"}))


class TestLiveFleetSmoke:
    def _put_get_story(self, **fleet_kwargs):
        async def scenario():
            async with LiveFleet(num_edges=2, num_clients=2, **fleet_kwargs) as fleet:
                client = fleet.client(0)
                operation = client.put_batch([("k1", b"v1"), ("k2", b"v2")])
                phase = await fleet.wait_for(
                    client, operation, CommitPhase.PHASE_TWO, timeout_s=15
                )
                assert phase is CommitPhase.PHASE_TWO
                read = client.get("k1")
                phase = await fleet.wait_for(
                    client, read, CommitPhase.PHASE_TWO, timeout_s=15
                )
                assert phase is CommitPhase.PHASE_TWO
                assert fleet.env.failures == []
                stats = fleet.stats()
                assert stats.blocks_formed >= 1
                assert stats.certifications >= 1
                assert stats.frames_sent > 0
                assert stats.frame_bytes_sent > 0
                # Modeled byte accounting is kept alongside the real frames.
                assert stats.wan_bytes > 0 and stats.lan_bytes > 0

        run_async(scenario())

    def test_unix_socket_fleet_commits_and_reads(self):
        self._put_get_story(transport_mode="unix")

    def test_tcp_fleet_commits_and_reads(self):
        self._put_get_story(transport_mode="tcp")

    def test_gossip_carries_phase_two_to_clients(self):
        async def scenario():
            async with LiveFleet(
                num_edges=1, num_clients=1, enable_gossip=True
            ) as fleet:
                client = fleet.client(0)
                operation = client.put_batch([("g", b"v")])
                phase = await fleet.wait_for(
                    client, operation, CommitPhase.PHASE_TWO, timeout_s=15
                )
                assert phase is CommitPhase.PHASE_TWO

        run_async(scenario())


class TestShardedFleetLive:
    def test_sharded_system_runs_on_live_environment(self):
        """The sharded stack is transport-agnostic: the same
        ``ShardedWedgeSystem.build`` that runs under the simulator builds on a
        :class:`LiveEnvironment`, and ShardedEdgeNodes serve shard-routed
        puts and verified gets as asyncio tasks over real sockets."""

        from repro.common.config import ShardingConfig, SystemConfig
        from repro.service.runtime import LiveEnvironment
        from repro.sharding.system import ShardedWedgeSystem

        async def scenario():
            config = SystemConfig.paper_default().with_overrides(
                num_edge_nodes=2,
                sharding=ShardingConfig(num_shards=4),
            )
            env = LiveEnvironment()
            system = ShardedWedgeSystem.build(config=config, num_clients=1, env=env)
            await env.start()
            try:
                client = system.clients[0]
                operations = [
                    (client, operation)
                    for index in range(4)
                    for operation in client.put_batch(
                        [("shardkey-%d" % index, b"sv%d" % index)]
                    )
                ]
                loop = asyncio.get_running_loop()
                deadline = loop.time() + 15.0

                def settled() -> bool:
                    return all(
                        client.tracker.get(operation).phase is CommitPhase.PHASE_TWO
                        for _client, operation in operations
                    )

                while not settled() and loop.time() < deadline:
                    await asyncio.sleep(0.002)
                assert settled(), [
                    client.tracker.get(operation).phase
                    for _client, operation in operations
                ]
                assert env.failures == []
            finally:
                await env.stop()

        run_async(scenario())


class TestTransportSemantics:
    def test_send_hook_vetoes_and_counts(self):
        async def scenario():
            async with LiveFleet(num_edges=1, num_clients=1) as fleet:
                transport = fleet.env.transport
                transport.add_send_hook("drop-everything", lambda s, d, m: False)
                client = fleet.client(0)
                operation = client.put_batch([("k", b"v")])
                settled = await fleet.wait_for(
                    client, operation, CommitPhase.PHASE_ONE, timeout_s=0.3
                )
                assert settled is not CommitPhase.PHASE_ONE
                assert transport.stats.dropped_sends > 0
                transport.remove_send_hook("drop-everything")
                with pytest.raises(TransportError):
                    transport.add_send_hook("", lambda s, d, m: True)

        run_async(scenario())

    def test_offline_source_emits_nothing(self):
        async def scenario():
            async with LiveFleet(num_edges=1, num_clients=1) as fleet:
                transport = fleet.env.transport
                client = fleet.client(0)
                transport.set_offline(client.node_id)
                assert transport.is_offline(client.node_id)
                before = transport.stats.messages_sent
                assert client.put_batch([("k", b"v")]) is not None
                assert transport.stats.messages_sent == before
                assert transport.stats.dropped_sends > 0
                transport.set_offline(client.node_id, offline=False)
                assert not transport.is_offline(client.node_id)

        run_async(scenario())

    def test_unknown_node_raises(self):
        async def scenario():
            async with LiveFleet(num_edges=1, num_clients=1) as fleet:
                with pytest.raises(TransportError, match="unknown node"):
                    fleet.env.transport.node(edge_id("never-registered"))

        run_async(scenario())


class TestLiveEnvironmentTimers:
    def test_schedule_and_cancel(self):
        async def scenario():
            from repro.service.runtime import LiveEnvironment

            env = LiveEnvironment()
            fired = []
            # Buffered before start, armed at start.
            handle = env.schedule(0.01, lambda: fired.append("a"), label="pre-start")
            cancelled = env.schedule(0.01, lambda: fired.append("b"))
            cancelled.cancel()
            assert cancelled.cancelled
            await env.start()
            env.schedule(0.02, lambda: fired.append("c"), label="post-start")
            with pytest.raises(SimulationError):
                env.schedule(-1.0, lambda: None)
            with pytest.raises(SimulationError):
                env.charge(-1.0)
            env.charge(0.5)  # validated, discarded
            await asyncio.sleep(0.08)
            assert handle.label == "pre-start"
            assert fired == ["a", "c"]
            await env.stop()

        run_async(scenario())

    def test_schedule_periodic_stops(self):
        async def scenario():
            from repro.service.runtime import LiveEnvironment

            env = LiveEnvironment()
            await env.start()
            ticks = []
            stop = env.schedule_periodic(0.01, lambda: ticks.append(1))
            with pytest.raises(SimulationError):
                env.schedule_periodic(0.0, lambda: None)
            await asyncio.sleep(0.05)
            stop()
            count = len(ticks)
            assert count >= 2
            await asyncio.sleep(0.03)
            assert len(ticks) == count
            await env.stop()

        run_async(scenario())
