"""Unit tests for LSMerkle read proofs, the cloud merge mirror, and freshness."""

from __future__ import annotations

import pytest

from repro.common import (
    FreshnessViolationError,
    MergeProtocolError,
    ProofVerificationError,
)
from repro.common.config import LSMerkleConfig
from repro.common.identifiers import client_id, cloud_id, edge_id
from repro.log.block import build_block
from repro.log.entry import make_entry
from repro.log.proofs import CommitPhase, issue_block_proof
from repro.lsmerkle.codec import encode_put, page_from_block
from repro.lsmerkle.freshness import FreshnessPolicy
from repro.lsmerkle.merge import CloudIndexMirror, MergeProposal
from repro.lsmerkle.mlsm import MerkleizedLSM, sign_global_root
from repro.lsmerkle.read_proof import build_get_proof, verify_get_proof

ALICE = client_id("alice")
EDGE = edge_id("edge-0")
CLOUD = cloud_id()
CONFIG = LSMerkleConfig(level_thresholds=(2, 2, 4))


def put_block(registry, block_id: int, items):
    entries = [
        make_entry(registry, ALICE, index, encode_put(key, value), 1.0)
        for index, (key, value) in enumerate(items)
    ]
    return build_block(EDGE, block_id, entries, created_at=float(block_id))


class _Fixture:
    """A small certified LSMerkle state shared by the proof tests."""

    def __init__(self, registry):
        self.registry = registry
        self.index = MerkleizedLSM(config=CONFIG, page_capacity=2)
        self.mirror = CloudIndexMirror(edge=EDGE, config=CONFIG, page_capacity=2)
        self.certified: dict[int, str] = {}
        self.blocks = {}
        self.proofs = {}
        self.signed_root = None

    def ingest_block(self, block_id, items, certify=True):
        block = put_block(self.registry, block_id, items)
        self.blocks[block_id] = block
        page = page_from_block(block)
        self.index.add_level_zero_page(page)
        if certify:
            digest = block.digest()
            self.certified[block_id] = digest
            self.proofs[block_id] = issue_block_proof(
                self.registry, CLOUD, EDGE, block_id, digest, certified_at=float(block_id)
            )
        return block

    def merge_level_zero(self, now=10.0):
        proposal = MergeProposal(
            edge=EDGE,
            level_index=0,
            source_blocks=tuple(
                self.blocks[block_id] for block_id in sorted(self.certified)
            ),
            target_pages=tuple(self.index.tree.levels[1].pages),
        )
        outcome = self.mirror.execute_merge(
            proposal, self.certified, self.registry, CLOUD, now=now
        )
        self.index.install_merge(0, outcome.merged_pages, remaining_source_pages=[])
        self.signed_root = outcome.signed_root
        return outcome

    def level_zero_evidence(self):
        return [
            (self.blocks[block_id], self.proofs.get(block_id))
            for block_id in sorted(self.blocks)
            if any(
                page.source_block_id == block_id
                for page in self.index.tree.levels[0].pages
            )
        ]

    def get_proof(self, key):
        result = self.index.get(key)
        return build_get_proof(
            key=key,
            index=self.index,
            level_zero_blocks=self.level_zero_evidence(),
            signed_root=self.signed_root,
            found_level=result.level_index,
        ), result


class TestGetProofVerification:
    def test_key_found_in_level_zero(self, registry):
        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1"), ("beta", b"2")])
        proof, result = fx.get_proof("alpha")
        verified = verify_get_proof(registry, CLOUD, EDGE, "alpha", proof)
        assert verified.found and verified.record.value == b"1"
        assert verified.phase is CommitPhase.PHASE_TWO

    def test_uncertified_level_zero_is_phase_one(self, registry):
        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1")], certify=False)
        proof, _ = fx.get_proof("alpha")
        verified = verify_get_proof(registry, CLOUD, EDGE, "alpha", proof)
        assert verified.phase is CommitPhase.PHASE_ONE
        assert verified.uncertified_block_ids == (0,)

    def test_key_found_in_merged_level(self, registry):
        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1"), ("beta", b"2")])
        fx.ingest_block(1, [("gamma", b"3"), ("delta", b"4")])
        fx.merge_level_zero()
        proof, result = fx.get_proof("gamma")
        assert result.level_index == 1
        verified = verify_get_proof(registry, CLOUD, EDGE, "gamma", proof)
        assert verified.found and verified.record.value == b"3"
        assert verified.phase is CommitPhase.PHASE_TWO

    def test_missing_key_requires_full_coverage(self, registry):
        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1"), ("beta", b"2")])
        fx.merge_level_zero()
        proof, result = fx.get_proof("nothing-here")
        verified = verify_get_proof(registry, CLOUD, EDGE, "nothing-here", proof)
        assert not verified.found

    def test_wrong_key_in_proof_rejected(self, registry):
        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1")])
        proof, _ = fx.get_proof("alpha")
        with pytest.raises(ProofVerificationError):
            verify_get_proof(registry, CLOUD, EDGE, "beta", proof)

    def test_omitted_level_evidence_detected(self, registry):
        """An edge hiding the level that holds the key is caught by coverage."""

        from dataclasses import replace

        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1"), ("beta", b"2")])
        fx.merge_level_zero()
        proof, _ = fx.get_proof("alpha")
        stripped = replace(proof, level_pages=())
        with pytest.raises(ProofVerificationError):
            verify_get_proof(registry, CLOUD, EDGE, "alpha", stripped)

    def test_tampered_level_page_detected(self, registry):
        from dataclasses import replace

        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1"), ("beta", b"2")])
        fx.merge_level_zero()
        proof, _ = fx.get_proof("alpha")
        evidence = proof.level_pages[0]
        tampered_page = page_from_block(put_block(registry, 9, [("alpha", b"evil")]))
        tampered_evidence = replace(evidence, page=tampered_page)
        tampered = replace(proof, level_pages=(tampered_evidence,))
        with pytest.raises(ProofVerificationError):
            verify_get_proof(registry, CLOUD, EDGE, "alpha", tampered)

    def test_foreign_block_in_level_zero_rejected(self, registry):
        from dataclasses import replace
        from repro.lsmerkle.read_proof import LevelZeroEvidence

        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1")])
        proof, _ = fx.get_proof("alpha")
        foreign_entries = [
            make_entry(registry, ALICE, 0, encode_put("alpha", b"fake"), 1.0)
        ]
        foreign_block = build_block(edge_id("edge-1"), 0, foreign_entries, 0.0)
        tampered = replace(
            proof, level_zero=(LevelZeroEvidence(block=foreign_block, proof=None),)
        )
        with pytest.raises(ProofVerificationError):
            verify_get_proof(registry, CLOUD, EDGE, "alpha", tampered)

    def test_freshness_window_enforced(self, registry):
        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1"), ("beta", b"2")])
        fx.merge_level_zero(now=10.0)
        proof, _ = fx.get_proof("alpha")
        # Fresh enough:
        verify_get_proof(
            registry, CLOUD, EDGE, "alpha", proof, now=12.0, freshness_window_s=5.0
        )
        # Too old:
        with pytest.raises(ProofVerificationError):
            verify_get_proof(
                registry, CLOUD, EDGE, "alpha", proof, now=100.0, freshness_window_s=5.0
            )


class TestCloudIndexMirror:
    def test_rejects_uncertified_source_block(self, registry):
        fx = _Fixture(registry)
        block = fx.ingest_block(0, [("alpha", b"1")], certify=False)
        proposal = MergeProposal(edge=EDGE, level_index=0, source_blocks=(block,))
        with pytest.raises(MergeProtocolError):
            fx.mirror.execute_merge(proposal, fx.certified, registry, CLOUD, now=1.0)

    def test_rejects_tampered_source_block(self, registry):
        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1")])
        tampered = put_block(registry, 0, [("alpha", b"evil")])
        proposal = MergeProposal(edge=EDGE, level_index=0, source_blocks=(tampered,))
        with pytest.raises(MergeProtocolError):
            fx.mirror.execute_merge(proposal, fx.certified, registry, CLOUD, now=1.0)

    def test_rejects_replayed_merge(self, registry):
        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1"), ("beta", b"2")])
        fx.merge_level_zero()
        proposal = MergeProposal(
            edge=EDGE,
            level_index=0,
            source_blocks=(fx.blocks[0],),
            target_pages=tuple(fx.index.tree.levels[1].pages),
        )
        with pytest.raises(MergeProtocolError):
            fx.mirror.execute_merge(proposal, fx.certified, registry, CLOUD, now=2.0)

    def test_rejects_target_pages_not_matching_mirror(self, registry):
        fx = _Fixture(registry)
        block = fx.ingest_block(0, [("alpha", b"1")])
        bogus_target = page_from_block(put_block(registry, 7, [("zzz", b"9")]))
        proposal = MergeProposal(
            edge=EDGE, level_index=0, source_blocks=(block,), target_pages=(bogus_target,)
        )
        with pytest.raises(MergeProtocolError):
            fx.mirror.execute_merge(proposal, fx.certified, registry, CLOUD, now=1.0)

    def test_rejects_out_of_range_level(self, registry):
        fx = _Fixture(registry)
        proposal = MergeProposal(edge=EDGE, level_index=5)
        with pytest.raises(MergeProtocolError):
            fx.mirror.execute_merge(proposal, fx.certified, registry, CLOUD, now=1.0)

    def test_successful_merge_updates_version_and_roots(self, registry):
        fx = _Fixture(registry)
        fx.ingest_block(0, [("alpha", b"1"), ("beta", b"2")])
        outcome = fx.merge_level_zero()
        assert outcome.signed_root.statement.version == 1
        assert fx.mirror.version == 1
        assert outcome.records_out == 2
        second = fx.mirror.sign_current_root(registry, CLOUD, now=20.0)
        assert second.statement.version == 2
        assert second.statement.timestamp == 20.0


class TestFreshnessPolicy:
    def test_disabled_policy_accepts_anything(self):
        policy = FreshnessPolicy(window_s=None)
        assert policy.is_fresh(None, now=100.0)

    def test_fresh_and_stale_roots(self, registry):
        from repro.lsmerkle.mlsm import empty_level_root

        policy = FreshnessPolicy(window_s=5.0, clock_skew_s=0.0)
        signed = sign_global_root(
            registry, CLOUD, EDGE, (empty_level_root(),), version=1, timestamp=10.0
        )
        assert policy.is_fresh(signed, now=14.0)
        assert not policy.is_fresh(signed, now=16.0)
        with pytest.raises(FreshnessViolationError):
            policy.require_fresh(signed, now=100.0)

    def test_missing_root_violates_when_enabled(self):
        policy = FreshnessPolicy(window_s=5.0)
        with pytest.raises(FreshnessViolationError):
            policy.require_fresh(None, now=1.0)

    def test_invalid_configuration(self):
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError):
            FreshnessPolicy(window_s=-1.0)
        with pytest.raises(ConfigurationError):
            FreshnessPolicy(window_s=1.0, clock_skew_s=-0.5)
