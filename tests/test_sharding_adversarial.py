"""Adversarial paths of the sharded fleet.

Covers the multi-edge attacks the certified handoff and membership gossip
exist to contain:

* a source edge that tampers with the transferred shard state — the
  destination refuses to install and the source's own signed transfer
  statement convicts it;
* a malicious edge that keeps serving a shard it handed off — a client
  holding the newer shard map detects the non-owner response and the
  cloud's ownership history convicts it;
* a stale shard map injected mid-interval — the version-monotone view
  rejects it, so membership can be delayed but never rolled back;
* honest races (an in-flight response crossing an ownership change) are
  disputed but acquitted.
"""

from __future__ import annotations

from repro.common.config import (
    LoggingConfig,
    LSMerkleConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.core.dispute import judge_shard_dispute
from repro.log.proofs import CommitPhase
from repro.messages.shard_messages import ShardDispute
from repro.sharding import (
    ShardedEdgeNode,
    ShardedWedgeSystem,
    StaleShardOwnerEdgeNode,
    TamperingHandoffEdgeNode,
    build_shard_map_message,
)
from repro.sim.environment import local_environment
from repro.workloads.generator import format_key


def build_fleet(bad_edge_cls=None, num_edges=2, num_shards=4, seed=13):
    config = SystemConfig.paper_default().with_overrides(
        num_edge_nodes=num_edges,
        sharding=ShardingConfig(num_shards=num_shards),
        logging=LoggingConfig(block_size=5, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )

    def factory(**kwargs):
        cls = ShardedEdgeNode
        if bad_edge_cls is not None and kwargs["name"] == "edge-0":
            cls = bad_edge_cls
        return cls(**kwargs)

    return ShardedWedgeSystem.build(
        config=config,
        num_clients=1,
        env=local_environment(seed=seed),
        edge_factory=factory,
    )


def populate_and_pick_shard(system, count=40):
    client = system.clients[0]
    operations = [
        (client, client.put(format_key(index), b"v%d" % index))
        for index in range(count)
    ]
    assert system.wait_for_all(operations, CommitPhase.PHASE_TWO, max_time_s=300)
    system.run()
    source = system.edges[0]
    shard = max(source.shard_entry_counts, key=source.shard_entry_counts.get)
    key = next(
        format_key(i)
        for i in range(count)
        if system.partitioner.shard_of(format_key(i)) == shard
    )
    return client, source, shard, key


class TestTamperedHandoff:
    def test_tampered_transfer_rejected_disputed_and_punished(self):
        system = build_fleet(TamperingHandoffEdgeNode)
        client, source, shard, _ = populate_and_pick_shard(system)
        dest = system.edges[1]

        system.rebalance_shard(shard, dest.node_id)
        system.run_for(10.0)
        system.run()

        # The destination never installed the tampered state …
        assert dest.shard_state(shard) is None
        assert dest.stats["shard_handoffs_in"] == 0
        assert dest.stats["shard_disputes_sent"] == 1
        assert system.cloud.stats["shard_installs"] == 0
        # … the cloud judged the dispute from the source's own signature …
        assert system.cloud.stats["shard_disputes"] == 1
        assert system.cloud.ledger.is_punished(source.node_id)
        verdict = dest.shard_verdicts[-1]
        assert verdict.punished and verdict.accused == source.node_id

    def test_version_lying_transfer_cannot_dodge_the_certificate(self):
        """A source that lies about ``map_version`` in its signed transfer
        statement (pointing the dispute path at a certificate the cloud
        never issued) is refused outright by the destination."""

        from dataclasses import replace

        from repro.messages.shard_messages import ShardTransferMessage

        class VersionLyingEdgeNode(TamperingHandoffEdgeNode):
            def _handle_handoff_grant(self, sender, grant):
                original_send = self.env.send

                def rewriting_send(src, dst, message):
                    if isinstance(message, ShardTransferMessage):
                        statement = replace(message.statement, map_version=999)
                        message = ShardTransferMessage(
                            statement=statement,
                            signature=self.env.registry.sign(
                                self.node_id, statement
                            ),
                            certificate=message.certificate,
                            blocks=message.blocks,
                            proofs=message.proofs,
                            level_pages=message.level_pages,
                            signed_root=message.signed_root,
                        )
                    return original_send(src, dst, message)

                self.env.send = rewriting_send
                try:
                    super()._handle_handoff_grant(sender, grant)
                finally:
                    self.env.send = original_send

        system = build_fleet(VersionLyingEdgeNode)
        client, source, shard, _ = populate_and_pick_shard(system)
        dest = system.edges[1]
        system.rebalance_shard(shard, dest.node_id)
        system.run_for(10.0)
        system.run()

        # The destination binds the statement to the countersigned version
        # and drops the transfer without filing a doomed dispute.
        assert dest.shard_state(shard) is None
        assert dest.stats["shard_transfer_invalid"] == 1
        assert dest.stats["shard_disputes_sent"] == 0
        assert system.cloud.stats["shard_installs"] == 0

    def test_honest_handoff_convicts_nobody(self):
        system = build_fleet()
        client, source, shard, _ = populate_and_pick_shard(system)
        system.rebalance_shard(shard, system.edges[1].node_id)
        system.run_for(10.0)
        system.run()
        assert system.cloud.stats["shard_installs"] == 1
        assert system.cloud.stats["shard_disputes"] == 0
        assert not system.cloud.ledger.is_punished(source.node_id)


class TestStaleOwnerServing:
    def test_serving_after_handoff_detected_and_punished(self):
        system = build_fleet(StaleShardOwnerEdgeNode)
        client, source, shard, key = populate_and_pick_shard(system)
        system.rebalance_shard(shard, system.edges[1].node_id)
        system.run_for(10.0)
        system.run()
        assert system.shard_owner(shard) == system.edges[1].node_id

        # Force routing to the stale old owner (e.g. a client with a cached
        # connection); the malicious edge happily serves from its snapshot.
        get_op = client.get(key, edge=source.node_id)
        system.run_for(5.0)
        system.run()

        record = client.tracker.get(get_op)
        assert record.phase is CommitPhase.FAILED
        assert client.stats["stale_owner_detections"] == 1
        assert client.stats["shard_disputes_sent"] == 1
        assert any(
            event["kind"] == "stale-owner-serve" for event in client.malicious_events
        )
        assert system.cloud.ledger.is_punished(source.node_id)
        verdict = client.shard_verdicts[-1]
        assert verdict.punished and verdict.accused == source.node_id

    def test_pre_handoff_response_is_acquitted(self):
        """A signed response issued *before* the ownership change must not
        convict the edge (the in-flight race is legal)."""

        system = build_fleet()
        client, source, shard, key = populate_and_pick_shard(system)
        # Capture a legitimate signed response statement before the move.
        get_op = client.get(key)
        assert (
            system.wait_for(client, get_op, CommitPhase.PHASE_TWO, 60)
            is CommitPhase.PHASE_TWO
        )
        record = client.tracker.get(get_op)
        statement = record.details["get_statement"]
        signature = record.details["get_signature"]

        system.rebalance_shard(shard, system.edges[1].node_id)
        system.run_for(10.0)
        system.run()

        dispute = ShardDispute(
            reporter=client.node_id,
            accused=source.node_id,
            shard_id=shard,
            kind="stale-owner-serve",
            serve_statement=statement,
            serve_signature=signature,
        )
        judgement = judge_shard_dispute(
            dispute,
            registry=system.env.registry,
            owner_at=system.cloud.shard_registry.owner_at,
            granted_state_digest=None,
            shard_of=system.partitioner.shard_of,
        )
        assert not judgement.punished
        assert "owned the shard" in judgement.reason


class TestHandoffAuthorization:
    def test_unordered_handoff_offer_rejected(self):
        """An owning edge cannot unilaterally dump its shard on an arbitrary
        destination: offers without a matching cloud order are refused."""

        from repro.messages.shard_messages import (
            ShardHandoffRequest,
            ShardHandoffStatement,
        )
        from repro.sharding import shard_state_digest

        system = build_fleet()
        cloud = system.cloud
        source = system.edges[0]
        shard = source.owned_shards()[0]
        mirror = cloud.mirror_for(source.node_id, shard)
        statement = ShardHandoffStatement(
            edge=source.node_id,
            dest=system.edges[1].node_id,
            shard_id=shard,
            blocks=(),
            state_digest=shard_state_digest(shard, mirror.level_roots(), ()),
            issued_at=system.env.now(),
        )
        request = ShardHandoffRequest(
            statement=statement,
            signature=system.env.registry.sign(source.node_id, statement),
        )
        system.env.send(source.node_id, cloud.node_id, request)
        system.run_for(2.0)
        system.run()
        assert cloud.stats["shard_handoffs_rejected"] == 1
        assert cloud.stats["shard_handoffs_granted"] == 0
        assert system.shard_owner(shard) == source.node_id
        assert source.stats["shard_handoff_rejections"] == 1

    def test_duplicate_transfer_does_not_clobber_live_partition(self):
        """A replayed (valid) transfer never overwrites a live partition at
        the destination."""

        from repro.messages.shard_messages import ShardTransferMessage
        from repro.sharding import ShardedEdgeNode

        class DoubleSendingEdgeNode(ShardedEdgeNode):
            def _handle_handoff_grant(self, sender, grant):
                original_send = self.env.send

                def duplicating_send(src, dst, message):
                    delay = original_send(src, dst, message)
                    if isinstance(message, ShardTransferMessage):
                        original_send(src, dst, message)  # replay
                    return delay

                self.env.send = duplicating_send
                try:
                    super()._handle_handoff_grant(sender, grant)
                finally:
                    self.env.send = original_send

        system = build_fleet(DoubleSendingEdgeNode)
        client, source, shard, key = populate_and_pick_shard(system)
        dest = system.edges[1]
        system.rebalance_shard(shard, dest.node_id)
        system.run_for(10.0)
        system.run()
        assert dest.stats["shard_handoffs_in"] == 1
        assert dest.stats.get("shard_transfer_duplicates", 0) == 1
        # Writes that landed after the first install survive the replay.
        put_op = client.put(key, b"post-install")
        assert (
            system.wait_for(client, put_op, CommitPhase.PHASE_TWO, 60)
            is CommitPhase.PHASE_TWO
        )
        get_op = client.get(key)
        system.wait_for(client, get_op, CommitPhase.PHASE_TWO, 60)
        assert client.value_of(get_op) == b"post-install"

    def test_former_owner_cannot_refresh_shard_root(self):
        """After a handoff the old owner gets no fresh-timestamped signed
        root for the shard (which could back verifiable absence proofs)."""

        system = build_fleet()
        client, source, shard, _ = populate_and_pick_shard(system)
        system.rebalance_shard(shard, system.edges[1].node_id)
        system.run_for(10.0)
        system.run()
        before = system.cloud.stats["root_refreshes"]
        from repro.messages.kv_messages import RootRefreshRequest

        system.env.send(
            source.node_id,
            system.cloud.node_id,
            RootRefreshRequest(edge=source.node_id, shard_id=shard),
        )
        system.run_for(2.0)
        system.run()
        assert system.cloud.stats["root_refreshes"] == before


class TestMembershipChangeMidInterval:
    def test_stale_shard_map_never_passes_verification(self):
        """A delayed (pre-handoff) map delivered after the change must not
        roll any view back — client, edge, or fleet view."""

        system = build_fleet()
        client, source, shard, _ = populate_and_pick_shard(system)
        registry = system.env.registry
        stale_message = system.cloud.current_shard_map()  # version 1

        system.rebalance_shard(shard, system.edges[1].node_id)
        system.run_for(10.0)
        system.run()
        assert client.fleet_view.shard_map.version == 2

        # Replay the stale version-1 map to every party, mid-interval.
        for node in (client, *system.edges):
            system.env.send(system.cloud.node_id, node.node_id, stale_message)
        system.run_for(2.0)
        system.run()

        assert client.fleet_view.shard_map.version == 2
        assert client.fleet_view.shard_map.rejected >= 1
        for edge in system.edges:
            assert edge.map_view.version == 2
        # Ownership still points at the new owner everywhere.
        assert client.fleet_view.shard_map.owner_of(shard) == system.edges[1].node_id

    def test_forged_map_from_non_cloud_signer_rejected(self):
        system = build_fleet()
        client = system.clients[0]
        registry = system.env.registry
        edge = system.edges[0]
        # An edge forges a "version 99" map naming itself owner of everything.
        forged = build_shard_map_message(
            registry,
            edge.node_id,  # signed by the edge, not the cloud
            99,
            4,
            "hash-ring",
            {shard: edge.node_id for shard in range(4)},
            1.0,
        )
        before = client.fleet_view.shard_map.version
        assert not client.fleet_view.shard_map.update(registry, forged)
        assert client.fleet_view.shard_map.version == before

    def test_requests_during_migration_are_redirected_not_lost(self):
        """While a shard is mid-handoff the source redirects and the client
        lands on the destination once it is installed."""

        system = build_fleet()
        client, source, shard, key = populate_and_pick_shard(system)
        dest = system.edges[1]
        system.rebalance_shard(shard, dest.node_id)
        # Wait until the source has actually entered the migrating state
        # (order received, shard drain in progress), then issue the get.
        assert system.env.run_until_condition(
            lambda: shard in source._migrating or source.shard_state(shard) is None,
            system.env.now() + 10.0,
        )
        redirects_before = source.stats["shard_redirects"]
        get_op = client.get(key)
        system.run_for(15.0)
        system.run()
        record = client.tracker.get(get_op)
        # The operation completed (possibly after redirects) at the new owner.
        assert record.phase in (CommitPhase.PHASE_ONE, CommitPhase.PHASE_TWO)
        assert record.details["edge"] == dest.node_id
        assert client.value_of(get_op) is not None
        # The client's route was stale at issue time, so at least one
        # signed redirect (from the migrating source) was followed.
        assert source.stats["shard_redirects"] > redirects_before
        assert client.stats["redirects_followed"] >= 1
