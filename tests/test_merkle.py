"""Unit and property-based tests for the Merkle tree substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ProofVerificationError
from repro.crypto.hashing import digest_leaf
from repro.merkle.tree import InclusionProof, MerkleTree, ProofStep, verify_inclusion


def _leaves(count: int) -> list[str]:
    return [digest_leaf(f"page-{index}".encode()) for index in range(count)]


class TestMerkleTreeStructure:
    def test_empty_tree_has_stable_root(self):
        assert MerkleTree([]).root == MerkleTree([]).root
        assert MerkleTree([]).num_leaves == 0

    def test_single_leaf_root_is_leaf(self):
        leaves = _leaves(1)
        tree = MerkleTree(leaves)
        assert tree.root == leaves[0]
        assert tree.height == 0

    def test_root_changes_with_content(self):
        assert MerkleTree(_leaves(4)).root != MerkleTree(_leaves(5)).root
        reordered = list(reversed(_leaves(4)))
        assert MerkleTree(_leaves(4)).root != MerkleTree(reordered).root

    def test_from_leaf_data(self):
        tree = MerkleTree.from_leaf_data([b"a", b"b", b"c"])
        assert tree.num_leaves == 3
        assert tree.leaves[0] == digest_leaf(b"a")

    @pytest.mark.parametrize("count", [2, 3, 4, 5, 7, 8, 16, 33])
    def test_height_is_logarithmic(self, count):
        tree = MerkleTree(_leaves(count))
        assert tree.height <= count.bit_length()


class TestInclusionProofs:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 9, 16, 31])
    def test_every_leaf_proves_against_root(self, count):
        tree = MerkleTree(_leaves(count))
        for index in range(count):
            proof = tree.prove(index)
            assert tree.verify(proof)
            assert verify_inclusion(tree.root, proof)

    def test_proof_fails_against_other_root(self):
        tree_a = MerkleTree(_leaves(8))
        tree_b = MerkleTree(_leaves(9))
        proof = tree_a.prove(3)
        assert not verify_inclusion(tree_b.root, proof)

    def test_tampered_leaf_digest_fails(self):
        tree = MerkleTree(_leaves(8))
        proof = tree.prove(2)
        tampered = InclusionProof(
            leaf_index=proof.leaf_index,
            leaf_digest=digest_leaf(b"evil"),
            steps=proof.steps,
        )
        assert not verify_inclusion(tree.root, tampered)

    def test_tampered_sibling_fails(self):
        tree = MerkleTree(_leaves(8))
        proof = tree.prove(2)
        bad_steps = (ProofStep(sibling=digest_leaf(b"evil"), side="left"),) + proof.steps[1:]
        tampered = InclusionProof(
            leaf_index=proof.leaf_index, leaf_digest=proof.leaf_digest, steps=bad_steps
        )
        assert not verify_inclusion(tree.root, tampered)

    def test_out_of_range_index_raises(self):
        tree = MerkleTree(_leaves(4))
        with pytest.raises(ProofVerificationError):
            tree.prove(4)
        with pytest.raises(ProofVerificationError):
            tree.prove(-1)

    def test_invalid_proof_side_rejected(self):
        with pytest.raises(ProofVerificationError):
            ProofStep(sibling=digest_leaf(b"x"), side="up")

    def test_proof_wire_size_grows_with_depth(self):
        shallow = MerkleTree(_leaves(2)).prove(0)
        deep = MerkleTree(_leaves(64)).prove(0)
        assert deep.wire_size > shallow.wire_size


class TestMerklePropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=40),
           st.data())
    def test_any_leaf_of_any_tree_verifies(self, blobs, data):
        tree = MerkleTree.from_leaf_data(blobs)
        index = data.draw(st.integers(min_value=0, max_value=len(blobs) - 1))
        proof = tree.prove(index)
        assert verify_inclusion(tree.root, proof)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=2, max_size=20))
    def test_swapping_two_leaves_changes_root(self, blobs):
        tree = MerkleTree.from_leaf_data(blobs)
        swapped = list(blobs)
        swapped[0], swapped[-1] = swapped[-1], swapped[0]
        other = MerkleTree.from_leaf_data(swapped)
        if blobs[0] != blobs[-1]:
            assert tree.root != other.root
        else:
            assert tree.root == other.root

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=30))
    def test_rebuilding_same_leaves_gives_same_root(self, blobs):
        assert MerkleTree.from_leaf_data(blobs).root == MerkleTree.from_leaf_data(blobs).root
