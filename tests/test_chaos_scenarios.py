"""Seeded chaos scenarios: the protocol under injected faults.

Every scenario follows the same shape: build a deployment, install a
:class:`~repro.faults.FaultPlan` (seeded, so the fault trace is
reproducible), drive a workload through the fault window, heal, pump
certification retries, and assert the convictable invariants from
:mod:`repro.faults.invariants`:

* **no lost atomicity** — no 2PC transaction both committed and aborted
  anywhere in the fleet's certified logs;
* **monotone recovery** — sampled certified-block counts never regress
  through crashes, partitions, and heals;
* **eventual full certification** — once faults quiet down and retries
  drain, every block in every live log carries a cloud proof;
* **conviction exactness** — planted misbehavior is punished, faults alone
  never convict an honest edge.

Outage scenarios widen ``dispute_timeout_s``: a client disputing a
not-yet-certified block *would* convict an honest edge (the cloud cannot
distinguish "slow because partitioned" from "never certified"), which is
exactly the operational guidance the :class:`DegradedModeNotice` encodes —
throttle and widen timers during a known outage window.

Scenario seeds are fixed so the suite is deterministic in CI; the
determinism scenario itself runs one plan twice and compares traces.
"""

from __future__ import annotations

from repro.common.config import (
    LoggingConfig,
    LSMerkleConfig,
    SecurityConfig,
    ShardingConfig,
    StorageConfig,
    SystemConfig,
)
from repro.common.regions import Region
from repro.core.system import WedgeChainSystem
from repro.faults import (
    CrashEvent,
    DiskFaultRule,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RegionPartitionRule,
    RetryPolicy,
    assert_convicted,
    assert_full_certification,
    assert_monotone,
    assert_no_false_convictions,
    assert_no_lost_atomicity,
    assert_replicated_reads_served,
)
from repro.log.proofs import CommitPhase
from repro.nodes.edge import EdgeNode
from repro.nodes.malicious import EquivocatingCertifierEdgeNode
from repro.sharding import (
    DeposedWriterEdgeNode,
    ExpiredLeaseReplicaEdgeNode,
    ShardedEdgeNode,
    ShardedWedgeSystem,
)
from repro.sim.environment import local_environment
from repro.workloads.generator import format_key

BLOCK_SIZE = 4

#: The pump policy chaos scenarios drive certification retries with: capped
#: exponential growth, no attempt budget (recovery must always complete).
PUMP_POLICY = RetryPolicy(base_s=0.5, factor=2.0, cap_s=4.0)


def chaos_config(**overrides) -> SystemConfig:
    security = overrides.pop("security", None) or SecurityConfig(
        dispute_timeout_s=60.0
    )
    logging_overrides = overrides.pop("logging", {})
    logging = dict(block_size=BLOCK_SIZE, block_timeout_s=0.02)
    logging.update(logging_overrides)
    return SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(**logging),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
        security=security,
        **overrides,
    )


def build_single(seed=11, edge_factory=None, **config_overrides):
    return WedgeChainSystem.build(
        config=chaos_config(**config_overrides),
        num_clients=1,
        env=local_environment(seed=seed),
        edge_factory=edge_factory,
    )


def build_sharded(seed=17, num_edges=2, num_shards=4, **config_overrides):
    return ShardedWedgeSystem.build(
        config=chaos_config(
            num_edge_nodes=num_edges,
            sharding=ShardingConfig(num_shards=num_shards),
            **config_overrides,
        ),
        num_clients=1,
        env=local_environment(seed=seed),
    )


def build_replicated(
    seed,
    num_edges=3,
    num_shards=4,
    failover_timeout_s=1.0,
    edge_factory=None,
    **config_overrides,
):
    """A fully replicated fleet: every edge holds every shard (writer or
    replica), with tight lease/failover timers so scenarios converge fast."""

    return ShardedWedgeSystem.build(
        config=chaos_config(
            num_edge_nodes=num_edges,
            sharding=ShardingConfig(
                num_shards=num_shards,
                replication_factor=3,
                replica_lease_s=1.0,
                failover_timeout_s=failover_timeout_s,
            ),
            **config_overrides,
        ),
        num_clients=1,
        env=local_environment(seed=seed),
        edge_factory=edge_factory,
    )


def flatten_ops(ops):
    """Sharded ``put_batch`` fans out into one operation per owning edge;
    flatten the per-batch tuples into plain operation ids."""

    flat = []
    for op in ops:
        flat.extend(op) if isinstance(op, tuple) else flat.append(op)
    return flat


def written_key_in_shard(client, shard_id, blocks, prefix):
    """A key :func:`put_blocks` wrote that routes to *shard_id*."""

    return next(
        (f"{prefix}-{block}-{i}", b"v%d" % i)
        for block in range(blocks)
        for i in range(BLOCK_SIZE)
        if client.partitioner.shard_of(f"{prefix}-{block}-{i}") == shard_id
    )


def start_certify_pump(system, interval_s=0.5):
    """Periodically re-drive overdue certifications on every edge.

    Returns the stopper.  Scenarios must use ``run_for`` (never a bare
    ``run()``): the periodic timer keeps the event queue non-empty.
    """

    def pump() -> None:
        for edge in system.edges:
            if not system.env.network.is_offline(edge.node_id):
                edge.retry_overdue_certifications(PUMP_POLICY)

    return system.env.schedule_periodic(
        interval_s, pump, label="chaos:certify-pump"
    )


def edge_cloud_partition(start_s: float, until_s: float) -> RegionPartitionRule:
    """The default placement puts edges+clients in California and the cloud
    in Virginia, so this is "the edge fleet loses the cloud"."""

    return RegionPartitionRule(
        side_a=frozenset({Region.CALIFORNIA}),
        side_b=frozenset({Region.VIRGINIA}),
        start_s=start_s,
        until_s=until_s,
    )


def certified_total(system) -> int:
    return sum(
        len(state.log) - len(state.log.uncertified_block_ids())
        for edge in system.edges
        for state in edge._partition_states()
    )


def put_blocks(client, count, prefix="k"):
    """Issue ``count`` full blocks of puts; returns the operation ids."""

    ops = []
    for block in range(count):
        items = [
            (f"{prefix}-{block}-{i}", b"v%d" % i) for i in range(BLOCK_SIZE)
        ]
        ops.append(client.put_batch(items))
    return ops


# ----------------------------------------------------------------------
# 1. Cloud outage: Phase I keeps serving, certification catches up
# ----------------------------------------------------------------------
class TestCloudOutage:
    def test_phase_one_survives_and_certification_catches_up(self):
        system = build_single(seed=101)
        client = system.client(0)
        plan = FaultPlan(seed=101, name="cloud-outage").with_partition(
            edge_cloud_partition(start_s=0.5, until_s=6.0)
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        progress = [certified_total(system)]
        all_ops = []
        for round_index in range(4):
            all_ops.extend(put_blocks(client, 2, prefix=f"r{round_index}"))
            system.run_for(2.0)
            progress.append(certified_total(system))

        # Mid-outage: Phase I commitment never stopped (receipts flowed).
        assert all(
            client.phase_of(op)
            in (CommitPhase.PHASE_ONE, CommitPhase.PHASE_TWO)
            for op in all_ops
        )

        system.run_for(max(0.0, injector.faults_quiet_after() - system.env.now()))
        system.run_for(12.0)
        progress.append(certified_total(system))
        stop_pump()

        assert_monotone(progress, "certified blocks through outage")
        assert assert_full_certification(system.edges) >= 8
        assert_no_false_convictions(
            system.cloud, [edge.node_id for edge in system.edges]
        )
        # Every write reached Phase II once the cloud came back.
        assert all(
            client.phase_of(op) is CommitPhase.PHASE_TWO for op in all_ops
        )
        # The injector really did sever traffic.
        assert any(action == "partition-drop" for _, action, *_ in injector.trace)

    def test_degraded_mode_enters_and_recovers(self):
        system = build_single(
            seed=102, logging={"max_uncertified_backlog": 3}
        )
        client = system.client(0)
        edge = system.edge(0)
        # The partition opens at t=0 so the write burst's certify uplinks
        # are all lost — the backlog builds from the first block.
        plan = FaultPlan(seed=102, name="degraded").with_partition(
            edge_cloud_partition(start_s=0.0, until_s=5.0)
        )
        FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        put_blocks(client, 8)
        system.run_for(4.0)
        # Backlog crossed the limit mid-outage: the edge signalled clients.
        assert edge.stats.get("degraded_entries", 0) >= 1
        assert client.stats.get("degraded_notices", 0) >= 1
        assert edge.node_id in client.degraded_edges

        system.run_for(15.0)
        stop_pump()

        # Recovery: backlog drained, the all-clear reached the client.
        assert edge.stats.get("degraded_recoveries", 0) >= 1
        assert edge.node_id not in client.degraded_edges
        assert assert_full_certification(system.edges) >= 8
        assert_no_false_convictions(system.cloud, [edge.node_id])


# ----------------------------------------------------------------------
# 2. Edge crash: volatile state lost, the certified log survives
# ----------------------------------------------------------------------
class TestEdgeCrash:
    def test_crash_loses_window_but_log_recertifies(self):
        system = build_single(seed=103)
        client = system.client(0)
        edge = system.edge(0)
        plan = FaultPlan(seed=103, name="edge-crash").with_crash(
            CrashEvent(edge.node_id, at_s=1.0, restart_at_s=2.5)
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        put_blocks(client, 3, prefix="before")
        system.run_for(0.9)
        certified_before = certified_total(system)
        log_before = sum(
            len(state.log) for state in edge._partition_states()
        )

        system.run_for(2.0)  # crash at 1.0, restart at 2.5
        assert edge.stats.get("crashes", 0) == 1
        assert edge.stats.get("restarts", 0) == 1

        put_blocks(client, 3, prefix="after")
        system.run_for(12.0)
        stop_pump()

        # Durable survives: nothing that was in the log pre-crash vanished.
        log_after = sum(len(state.log) for state in edge._partition_states())
        assert log_after >= log_before
        assert certified_total(system) >= certified_before
        assert assert_full_certification(system.edges) >= log_before
        assert_no_false_convictions(system.cloud, [edge.node_id])
        assert [a for _, a, *_ in injector.trace if a in ("crash", "restart")] == [
            "crash",
            "restart",
        ]


# ----------------------------------------------------------------------
# 3. Flaky certification uplink: unified retries drain the backlog
# ----------------------------------------------------------------------
class TestFlakyUplink:
    def test_probabilistic_uplink_loss_is_retried_dry(self):
        system = build_single(seed=104)
        client = system.client(0)
        edge = system.edge(0)
        plan = (
            FaultPlan(seed=104, name="flaky-uplink")
            .with_rule(
                FaultRule(
                    "drop",
                    message_type="CertifyBatchRequest",
                    probability=0.6,
                    until_s=3.0,
                )
            )
            .with_rule(
                FaultRule(
                    "drop",
                    message_type="BlockCertifyRequest",
                    probability=0.6,
                    until_s=3.0,
                )
            )
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        put_blocks(client, 6)
        system.run_for(18.0)
        stop_pump()

        assert assert_full_certification(system.edges) >= 6
        # The drops really happened and the retry machinery really fired.
        assert sum(injector.rule_fire_counts()) >= 1
        assert edge.stats["certify_retries"] >= 1
        assert_no_false_convictions(system.cloud, [edge.node_id])


# ----------------------------------------------------------------------
# 4. Dropped 2PC decisions: retransmission preserves atomicity
# ----------------------------------------------------------------------
class TestTxnDecisionLoss:
    def test_dropped_decisions_retransmit_and_stay_atomic(self):
        system = build_sharded(seed=105)
        client = system.clients[0]
        plan = FaultPlan(seed=105, name="decision-loss").with_rule(
            FaultRule("drop", message_type="TxnDecisionMessage", max_count=2)
        )
        injector = FaultInjector(system.env, plan).install()

        items = []
        index = 0
        shards_seen: set[int] = set()
        while len(shards_seen) < 3:
            key = format_key(index)
            shard = client.partitioner.shard_of(key)
            if shard not in shards_seen:
                shards_seen.add(shard)
                items.append((key, b"txn-%d" % shard))
            index += 1

        txn_id = client.txn_put(items)
        system.run_for(30.0)

        assert injector.rule_fire_counts() == (2,)
        assert client.txns.state_of(txn_id) == "committed"
        assert client.stats["txn_decision_retries"] >= 1
        decisions = assert_no_lost_atomicity(system.edges)
        # Every participant shard applied exactly the commit decision.
        applied = [
            outcome
            for appliers in decisions.values()
            for _edge, outcome in appliers
        ]
        assert applied and set(applied) == {"commit"}


# ----------------------------------------------------------------------
# 5. Destination crash mid-handoff: retransmission re-delivers the shard
# ----------------------------------------------------------------------
class TestHandoffCrash:
    def test_dest_crash_between_grant_and_transfer_recovers(self):
        system = build_sharded(seed=106)
        client = system.clients[0]
        operations = [
            (client, client.put(format_key(i), b"v%d" % i)) for i in range(24)
        ]
        assert system.wait_for_all(operations, CommitPhase.PHASE_TWO)
        system.run_for(1.0)

        source = system.edges[0]
        shard = max(
            source.shard_entry_counts, key=source.shard_entry_counts.get
        )
        dest = system.edges[1]

        now = system.env.now()
        plan = FaultPlan(seed=106, name="handoff-crash").with_crash(
            CrashEvent(dest.node_id, at_s=now + 0.01, restart_at_s=now + 2.0)
        )
        FaultInjector(system.env, plan).install()
        system.rebalance_shard(shard, dest.node_id)
        system.run_for(25.0)

        # The transfer was lost against the crashed destination, retried on
        # the capped-exponential schedule, and installed after the restart.
        assert dest.shard_state(shard) is not None
        assert source.shard_state(shard) is None
        assert source.stats["shard_transfer_retries"] >= 1
        assert source.stats["shard_transfer_acks"] == 1
        assert not source._outgoing_transfers
        assert system.cloud.stats["shard_installs"] == 1
        assert_no_false_convictions(
            system.cloud, [edge.node_id for edge in system.edges]
        )


# ----------------------------------------------------------------------
# 6. Duplicate storm: at-least-once delivery never double-applies
# ----------------------------------------------------------------------
class TestDuplicateStorm:
    def test_duplicated_messages_apply_once(self):
        system = build_single(seed=107)
        client = system.client(0)
        edge = system.edge(0)
        plan = FaultPlan(seed=107, name="dup-storm").with_rule(
            FaultRule("duplicate", probability=0.8, until_s=3.0, spread_s=0.05)
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        ops = put_blocks(client, 5)
        system.run_for(20.0)
        stop_pump()

        assert sum(injector.rule_fire_counts()) >= 5
        assert all(
            client.phase_of(op) is CommitPhase.PHASE_TWO for op in ops
        )
        # Exactly the written entries appear in the log — duplicated appends
        # were absorbed by replay protection, not applied twice.
        total_entries = sum(
            len(record.block.entries)
            for state in edge._partition_states()
            for record in state.log
        )
        assert total_entries == 5 * BLOCK_SIZE
        assert assert_full_certification(system.edges) >= 5
        assert_no_false_convictions(system.cloud, [edge.node_id])


# ----------------------------------------------------------------------
# 7. WAN weather: reorder + delay, everything still settles
# ----------------------------------------------------------------------
class TestReorderDelay:
    def test_reordered_and_delayed_wan_settles_clean(self):
        system = build_single(seed=108)
        client = system.client(0)
        plan = (
            FaultPlan(seed=108, name="wan-weather")
            .with_rule(
                FaultRule(
                    "reorder", probability=0.5, until_s=2.5, spread_s=0.3
                )
            )
            .with_rule(
                FaultRule(
                    "delay",
                    message_type="BatchCertificateMessage",
                    probability=0.5,
                    until_s=2.5,
                    delay_s=0.4,
                )
            )
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        ops = put_blocks(client, 6)
        system.run_for(20.0)
        stop_pump()

        assert sum(injector.rule_fire_counts()) >= 1
        assert all(
            client.phase_of(op) is CommitPhase.PHASE_TWO for op in ops
        )
        assert assert_full_certification(system.edges) >= 6
        assert_no_false_convictions(
            system.cloud, [edge.node_id for edge in system.edges]
        )


# ----------------------------------------------------------------------
# 8. Malice under cover of faults is still convicted — and only malice
# ----------------------------------------------------------------------
class TestMaliceUnderFaults:
    def test_equivocator_convicted_despite_message_loss(self):
        def factory(env, cloud, cfg, name, region):
            cls = EquivocatingCertifierEdgeNode if name == "edge-0" else EdgeNode
            return cls(env=env, cloud=cloud, config=cfg, name=name, region=region)

        system = build_single(
            seed=109, edge_factory=factory, num_edge_nodes=2
        )
        guilty = system.edges[0]
        honest = system.edges[1]
        plan = FaultPlan(seed=109, name="malice-under-faults").with_rule(
            FaultRule("drop", probability=0.3, until_s=2.0)
        )
        FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        # Both clients write through their own edge (round-robin placement
        # gave the system one client on the guilty edge).
        client = system.client(0)
        put_blocks(client, 4)
        system.run_for(25.0)
        stop_pump()

        assert_convicted(system.cloud, [guilty.node_id])
        assert_no_false_convictions(system.cloud, [honest.node_id])


# ----------------------------------------------------------------------
# 9. Determinism: same plan + same seed ⇒ same fault trace, same outcome
# ----------------------------------------------------------------------
class TestDeterminism:
    @staticmethod
    def _run_once():
        system = build_single(seed=110)
        client = system.client(0)
        plan = (
            FaultPlan(seed=110, name="determinism")
            .with_rule(FaultRule("drop", probability=0.4, until_s=2.0))
            .with_rule(
                FaultRule(
                    "duplicate", probability=0.3, until_s=2.0, spread_s=0.1
                )
            )
            .with_partition(edge_cloud_partition(start_s=2.5, until_s=4.0))
            .with_crash(
                CrashEvent(
                    system.edge(0).node_id, at_s=4.5, restart_at_s=5.5
                )
            )
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)
        put_blocks(client, 5)
        system.run_for(25.0)
        stop_pump()
        return (
            tuple(injector.trace),
            injector.rule_fire_counts(),
            certified_total(system),
            system.env.network.stats.dropped_sends,
        )

    def test_same_seed_twice_identical(self):
        first = self._run_once()
        second = self._run_once()
        assert first == second
        trace, fired, certified, dropped = first
        assert trace and sum(fired) >= 1 and certified >= 1 and dropped >= 1


# ----------------------------------------------------------------------
# 10. Observability overhead: a pure observer, cheap when on, free when off
# ----------------------------------------------------------------------
class TestObservabilityOverhead:
    """The PR 8 observability layer under the chaos workload.

    Two claims ride the perf gate's ``obs_overhead`` row: with
    observability *off* (the paper default) the hot path pays exactly one
    attribute check — no obs objects exist anywhere in the deployment —
    and with it *on* the same seeded chaos scenario lands the same
    protocol outcome with under 5% wall-clock overhead.
    """

    WORKLOAD_BLOCKS = 5

    @staticmethod
    def _chaos_outcome(observability):
        from repro.common.config import ObservabilityConfig  # noqa: F401

        system = build_single(seed=110, observability=observability)
        client = system.client(0)
        plan = (
            FaultPlan(seed=110, name="obs-overhead")
            .with_rule(FaultRule("drop", probability=0.4, until_s=2.0))
            .with_rule(
                FaultRule(
                    "duplicate", probability=0.3, until_s=2.0, spread_s=0.1
                )
            )
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)
        put_blocks(client, TestObservabilityOverhead.WORKLOAD_BLOCKS)
        system.run_for(25.0)
        stop_pump()
        return system, (
            tuple(injector.trace),
            injector.rule_fire_counts(),
            certified_total(system),
            system.env.network.stats.dropped_sends,
            system.env.network.stats.wan_bytes,
        )

    def test_disabled_observability_is_structurally_absent(self):
        from repro.common.config import ObservabilityConfig

        system, _ = self._chaos_outcome(ObservabilityConfig())
        assert system.env.obs is None
        assert system.env.network._obs is None
        assert system.env.network._obs_registry is None
        edge = system.edge(0)
        assert type(edge.stats) is dict
        assert type(system.cloud.stats) is dict
        assert edge._metrics is None and edge._obs_tracer is None

    def test_enabled_observability_is_a_pure_observer(self):
        from repro.common.config import ObservabilityConfig

        on_system, on_outcome = self._chaos_outcome(
            ObservabilityConfig(enabled=True)
        )
        off_system, off_outcome = self._chaos_outcome(ObservabilityConfig())
        # Same fault trace, same certified totals, same WAN byte accounting:
        # the instrumentation observed the run without perturbing it.
        assert on_outcome == off_outcome
        assert dict(on_system.edge(0).stats) == dict(off_system.edge(0).stats)
        # And the observer actually saw the run.
        tracer = on_system.env.obs.tracer
        assert tracer.spans_named("phase1.commit")
        assert tracer.spans_named("certify.absorb")

    def test_enabled_overhead_under_five_percent(self):
        """Instrumented put-pipeline wall-clock: within 5% of the plain row.

        Runs the exact ``put_pipeline`` / ``obs_overhead`` benchmark pair
        (same seeded record batches, same LSM compaction; the latter adds
        the registry-mirrored counters, a gauge, and a histogram per
        batch) interleaved, and compares best-of-N wall times.  The LSM
        work dominates, so the instrumentation must disappear into it.
        min-of-N with retries absorbs scheduler noise on loaded CI
        machines, and the collector is paused during the timed runs so
        garbage left by earlier tests in the session can't bill a GC
        cycle to whichever variant happens to trigger it.
        """

        import gc as _gc
        import random as _random

        from repro.bench.perf import bench_obs_overhead, bench_put_pipeline

        plain_times = []
        instrumented_times = []
        for attempt in range(5):
            _gc.collect()
            _gc.disable()
            try:
                for _ in range(2):
                    plain = bench_put_pipeline(_random.Random(7), quick=True)
                    instrumented = bench_obs_overhead(_random.Random(7), quick=True)
                    plain_times.append(plain.p50_ms)
                    instrumented_times.append(instrumented.p50_ms)
            finally:
                _gc.enable()
            ratio = min(instrumented_times) / min(plain_times)
            if ratio < 1.05:
                break
        assert ratio < 1.05, f"observability overhead {ratio:.3f}x exceeds 1.05x"


# ----------------------------------------------------------------------
# 11. Writer loss in a replica group: certified failover, reads never stop
# ----------------------------------------------------------------------
class TestWriterCrashFailover:
    """Crash a replicated shard's certifying writer and never bring it back.

    The replica group's promise: reads on the writer's shards keep being
    served (first under the surviving replicas' freshness leases, then by
    the promoted writer), the cloud promotes the freshest replica through
    the countersigned handoff path, no committed-and-replicated write is
    lost, and no honest node is convicted — all without signing a single
    new data byte during the failover.
    """

    WORKLOAD_BLOCKS = 6

    @classmethod
    def _run(cls, seed, **build_kwargs):
        system = build_replicated(seed, **build_kwargs)
        client = system.clients[0]
        stop_pump = start_certify_pump(system)

        ops = flatten_ops(put_blocks(client, cls.WORKLOAD_BLOCKS, prefix="pre"))
        # Phase II completes and at least one shipping interval passes, so
        # every certified block is installed on both replicas pre-crash.
        system.run_for(3.0)
        assert all(
            client.phase_of(op) is CommitPhase.PHASE_TWO for op in ops
        )

        writer = system.edge_by_id(system.shard_owner(0))
        crashed_shards = tuple(writer.owned_shards())
        survivors = [edge for edge in system.edges if edge is not writer]
        for survivor in survivors:
            assert survivor.stats["replica_shipments_installed"] >= 1

        now = system.env.now()
        plan = FaultPlan(seed=seed, name="writer-crash").with_crash(
            CrashEvent(writer.node_id, at_s=now + 0.05)  # never restarts
        )
        injector = FaultInjector(system.env, plan).install()

        # Probe reads on a crashed shard against the surviving replica-set
        # members through the whole outage: the lease window, the failover
        # countdown, and the post-promotion regime.  (A read routed at the
        # dead writer just vanishes — replication's promise is about the
        # survivors.)
        probe_shard = crashed_shards[0]
        probe_key, probe_value = written_key_in_shard(
            client, probe_shard, cls.WORKLOAD_BLOCKS, "pre"
        )
        samples = []
        for _ in range(10):
            for survivor in survivors:
                op = client.get(probe_key, edge=survivor.node_id)
                system.run_for(0.4)
                record = client.tracker.get(op)
                served = (
                    client.phase_of(op)
                    in (CommitPhase.PHASE_ONE, CommitPhase.PHASE_TWO)
                    and record.details.get("value") == probe_value
                )
                samples.append((system.env.now(), probe_shard, served))
        assert_replicated_reads_served(samples)

        # The cloud noticed the silence and promoted a replica for every
        # shard the dead writer certified, via the countersigned map path.
        assert system.cloud.stats["shard_failovers_started"] >= 1
        assert system.cloud.stats["replica_promotions"] == len(crashed_shards)
        assert system.cloud.shard_registry.version > 1
        for shard_id in crashed_shards:
            new_owner = system.shard_owner(shard_id)
            assert new_owner != writer.node_id
            promoted = system.edge_by_id(new_owner)
            assert promoted.stats["shard_promotions"] >= 1
            assert shard_id in promoted.owned_shards()
            assert writer.node_id in system.cloud.shard_registry.provenance_of(
                shard_id
            )

        # No committed write lost: every pre-crash write reads back, with a
        # proof the client verifies against the promoted writers' roots.
        readback = []
        for block in range(cls.WORKLOAD_BLOCKS):
            for i in range(BLOCK_SIZE):
                key = f"pre-{block}-{i}"
                owner = system.shard_owner(client.partitioner.shard_of(key))
                readback.append((client.get(key, edge=owner), b"v%d" % i))
        system.run_for(3.0)
        stop_pump()
        for op, expected in readback:
            assert client.phase_of(op) is CommitPhase.PHASE_TWO
            assert client.tracker.get(op).details.get("value") == expected

        assert_full_certification(survivors)
        assert_no_false_convictions(
            system.cloud, [edge.node_id for edge in system.edges]
        )
        summary = (
            tuple(injector.trace),
            tuple(
                (shard_id, str(system.shard_owner(shard_id)))
                for shard_id in range(4)
            ),
            system.cloud.stats["replica_promotions"],
            system.cloud.shard_registry.version,
        )
        return summary

    def test_volatile_writer_crash_fails_over(self):
        self._run(111)

    def test_durable_writer_crash_fails_over(self, tmp_path):
        self._run(
            112,
            storage=StorageConfig(
                backend="disk", root_dir=str(tmp_path), fsync="always"
            ),
        )

    def test_same_seed_same_promotion(self):
        assert self._run(116) == self._run(116)


# ----------------------------------------------------------------------
# 12. Disk-quarantined writer: PR 7's dead-end becomes a failover trigger
# ----------------------------------------------------------------------
class TestQuarantineFailover:
    def test_quarantined_writer_shard_fails_over(self, tmp_path):
        # A huge silence timeout isolates the trigger under test: only the
        # restarted writer's own quarantine notice may start the failover.
        system = build_replicated(
            113,
            failover_timeout_s=30.0,
            storage=StorageConfig(
                backend="disk",
                root_dir=str(tmp_path),
                fsync="always",
                segment_max_bytes=512,
                truncate_on_snapshot=False,
            ),
        )
        client = system.clients[0]
        writer = system.edge_by_id(system.shard_owner(0))
        victim_shard = 0
        plan = (
            FaultPlan(seed=113, name="writer-quarantine")
            .with_disk_fault(
                DiskFaultRule(
                    node=writer.node_id,
                    kind="bit_flip",
                    at_s=0.1,
                    count=1,
                    shard_id=victim_shard,
                )
            )
            .with_crash(CrashEvent(writer.node_id, at_s=2.0, restart_at_s=3.0))
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        # Arm first, then write into the victim shard: the first durable
        # append there lands checksummed-and-wrong in a sealed segment.
        system.run_for(0.3)
        keys = []
        index = 0
        while len(keys) < BLOCK_SIZE * 4:
            key = f"flip-{index}"
            if client.partitioner.shard_of(key) == victim_shard:
                keys.append(key)
            index += 1
        for batch in range(4):
            client.put_batch(
                [
                    (key, b"q%d" % batch)
                    for key in keys[batch * BLOCK_SIZE : (batch + 1) * BLOCK_SIZE]
                ]
            )
        system.run_for(1.5)  # certified and shipped before the crash at 2.0

        # Crash, restart, recovery quarantines the corrupt partition, the
        # notice reaches the cloud, and the very next tick promotes — no
        # lease-expiry wait, since a quarantined partition refuses service.
        system.run_for(4.0)
        stop_pump()

        assert any(
            action == "disk:bit_flip" for _, action, *_ in injector.trace
        )
        assert writer.stats.get("partitions_quarantined", 0) >= 1
        assert system.cloud.stats["shard_quarantine_notices"] >= 1
        assert system.cloud.stats["replica_promotions"] >= 1
        new_owner = system.shard_owner(victim_shard)
        assert new_owner != writer.node_id

        # The shard the quarantine orphaned serves verified reads again.
        op = client.get(keys[0], edge=new_owner)
        system.run_for(1.0)
        assert client.phase_of(op) in (
            CommitPhase.PHASE_ONE,
            CommitPhase.PHASE_TWO,
        )
        assert client.tracker.get(op).details.get("value") == b"q0"
        # An honest edge with a corrupt disk loses the shard, not its bond.
        assert_no_false_convictions(
            system.cloud, [edge.node_id for edge in system.edges]
        )


# ----------------------------------------------------------------------
# 13. Misbehavior around failover is convicted — and only misbehavior
# ----------------------------------------------------------------------
class TestFailoverMisbehaviorConvicted:
    def test_deposed_writer_that_keeps_serving_is_convicted(self):
        def factory(env, cloud, config, name, region, partitioner):
            cls = DeposedWriterEdgeNode if name == "edge-0" else ShardedEdgeNode
            return cls(
                env=env,
                cloud=cloud,
                config=config,
                name=name,
                region=region,
                partitioner=partitioner,
            )

        system = build_replicated(114, edge_factory=factory)
        client = system.clients[0]
        rogue = system.edges[0]
        stop_pump = start_certify_pump(system)

        ops = flatten_ops(put_blocks(client, 4, prefix="pre"))
        system.run_for(1.4)
        assert all(
            client.phase_of(op) is CommitPhase.PHASE_TWO for op in ops
        )
        rogue_shard = rogue.owned_shards()[0]

        # Partition the rogue writer from the cloud (both directions,
        # forever): silence triggers failover, and the deposing map would
        # not reach it anyway — which suits a node built to ignore it.
        plan = (
            FaultPlan(seed=114, name="deposed-writer")
            .with_rule(
                FaultRule("drop", src=rogue.node_id, dst=system.cloud.node_id)
            )
            .with_rule(
                FaultRule("drop", src=system.cloud.node_id, dst=rogue.node_id)
            )
        )
        FaultInjector(system.env, plan).install()
        system.run_for(6.0)  # silence timeout + writer lease expiry + grant
        assert system.shard_owner(rogue_shard) != rogue.node_id

        # The rogue still answers gets for the shard it lost, with a lease
        # it pretends never expired.  One signed response convicts it.
        probe_key, _ = written_key_in_shard(client, rogue_shard, 4, "pre")
        op = client.get(probe_key, edge=rogue.node_id)
        system.run_for(2.0)
        stop_pump()

        assert client.phase_of(op) is not CommitPhase.PHASE_TWO
        assert_convicted(system.cloud, [rogue.node_id])
        assert_no_false_convictions(
            system.cloud, [edge.node_id for edge in system.edges[1:]]
        )

    def test_replica_serving_past_lease_is_convicted(self):
        def factory(env, cloud, config, name, region, partitioner):
            cls = (
                ExpiredLeaseReplicaEdgeNode
                if name == "edge-1"
                else ShardedEdgeNode
            )
            return cls(
                env=env,
                cloud=cloud,
                config=config,
                name=name,
                region=region,
                partitioner=partitioner,
            )

        system = build_replicated(115, edge_factory=factory)
        client = system.clients[0]
        rogue = system.edges[1]  # replica of shard 0 (owner edge-0)
        stop_pump = start_certify_pump(system)

        ops = flatten_ops(put_blocks(client, 4, prefix="pre"))
        system.run_for(2.0)  # certified, shipped, leases flowing
        assert all(
            client.phase_of(op) is CommitPhase.PHASE_TWO for op in ops
        )
        assert rogue.stats["replica_shipments_installed"] >= 1

        # Cut only the lease stream to the rogue: an honest replica would
        # stop serving when its last lease lapses; this one keeps going.
        plan = FaultPlan(seed=115, name="stale-replica").with_rule(
            FaultRule(
                "drop",
                message_type="ReplicaLease",
                dst=rogue.node_id,
                start_s=system.env.now(),
            )
        )
        FaultInjector(system.env, plan).install()
        system.run_for(2.5)  # well past the 1s lease it still holds

        probe_key, _ = written_key_in_shard(client, 0, 4, "pre")
        op = client.get(probe_key, edge=rogue.node_id)
        system.run_for(2.0)
        stop_pump()

        assert client.phase_of(op) is not CommitPhase.PHASE_TWO
        assert client.stats.get("stale_replica_detections", 0) >= 1
        assert_convicted(system.cloud, [rogue.node_id])
        assert_no_false_convictions(
            system.cloud,
            [system.edges[0].node_id, system.edges[2].node_id],
        )
