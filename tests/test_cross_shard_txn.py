"""Cross-shard atomic transactions: the client-coordinated 2PC.

Covers the tentpole scenarios of the transaction protocol
(:mod:`repro.sharding.transactions`): an atomic multi-key put spanning
several shards commits on all participants or aborts on all, exercised
against a participant crash before the decision, coordinator abandonment
(edge-side timeout abort), a tampered prepare receipt (provable dispute), a
transaction racing a shard handoff, duplicate decisions (idempotent
absorption), an abort-ignoring participant serving staged state (provable
dispute from the serve), the redirect-cap semantics of the shard-aware
client, and the self-contained transaction dispute judge.
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    ConfigurationError,
    LoggingConfig,
    LSMerkleConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.common.identifiers import OperationId, client_id, edge_id
from repro.core.dispute import judge_txn_dispute
from repro.crypto.hashing import digest_value
from repro.crypto.signatures import KeyRegistry
from repro.log.proofs import CommitPhase
from repro.messages.log_messages import AppendBatchRequest
from repro.messages.shard_messages import NotOwnerRedirect, NotOwnerStatement
from repro.messages.txn_messages import (
    TXN_ABORT,
    TXN_COMMIT,
    TxnDecisionMessage,
    TxnDecisionStatement,
    TxnDispute,
    TxnId,
    TxnPrepareReceipt,
    TxnPrepareReceiptStatement,
    TxnPrepareRequest,
    TxnPrepareStatement,
    TxnWrite,
)
from repro.sharding import (
    AbortIgnoringEdgeNode,
    ShardedEdgeNode,
    ShardedWedgeSystem,
    TamperingPrepareEdgeNode,
    UnresponsivePrepareEdgeNode,
    decode_txn_decision,
    is_txn_decision_payload,
)
from repro.sim.environment import local_environment


def fleet_config(**logging_overrides) -> SystemConfig:
    logging = dict(block_size=4, block_timeout_s=0.02)
    logging.update(logging_overrides)
    return SystemConfig.paper_default().with_overrides(
        num_edge_nodes=2,
        sharding=ShardingConfig(num_shards=4),
        logging=LoggingConfig(**logging),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )


def build_fleet(seed=23, edge_factory=None, config=None):
    return ShardedWedgeSystem.build(
        config=config if config is not None else fleet_config(),
        num_clients=1,
        env=local_environment(seed=seed),
        edge_factory=edge_factory,
    )


def cross_shard_items(client, num_shards=2):
    """Deterministic keys hitting *num_shards* distinct shards (and, with
    round-robin assignment, distinct owning edges for the first two)."""

    found: dict[int, str] = {}
    index = 0
    while len(found) < num_shards:
        key = f"key{index:012d}"
        shard = client.partitioner.shard_of(key)
        if shard not in found:
            found[shard] = key
        index += 1
    return [(key, f"value-{shard}".encode()) for shard, key in sorted(found.items())]


def decision_records(edge):
    records = []
    for shard in edge.owned_shards():
        state = edge.shard_state(shard)
        for record in state.log:
            for entry in record.block.entries:
                if is_txn_decision_payload(entry.payload):
                    records.append(
                        (shard, record.block.block_id, decode_txn_decision(entry.payload))
                    )
    return records


# ----------------------------------------------------------------------
# The happy path: atomic commit across shards and edges
# ----------------------------------------------------------------------
class TestAtomicCommit:
    def test_multi_shard_put_commits_everywhere(self):
        system = build_fleet()
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=3)
        owners = {client.router.route(key).owner for key, _ in items}
        assert len(owners) == 2  # spans both edges

        txn_id = client.txn_put(items)
        system.run_for(2.0)
        record = client.txns.record(txn_id)
        assert record.state == "committed"
        assert record.all_prepared and record.all_acked
        assert client.stats["txns_committed"] == 1

        # Every key reads back with a verified proof (Phase II).
        gets = [(key, value, client.get(key)) for key, value in items]
        system.run_for(1.0)
        for key, value, operation in gets:
            assert client.value_of(operation) == value
            assert client.phase_of(operation) is CommitPhase.PHASE_TWO

        # Each participant logged a certified commit decision record.
        logged = [rec for edge in system.edges for rec in decision_records(edge)]
        assert len(logged) == 3
        assert all(decoded[0] == TXN_COMMIT for _, _, decoded in logged)
        # The per-participant prepare operations Phase II committed through
        # the ordinary receipt/proof machinery.
        for participant in record.participants.values():
            assert (
                client.phase_of(participant.operation_id) is CommitPhase.PHASE_TWO
            )
            # The commit block landed at or after the receipt's promised
            # Phase I log position.
            assert (
                participant.ack.block_id
                >= participant.receipt.statement.log_position
            )

    def test_single_shard_txn_still_atomic(self):
        system = build_fleet()
        client = system.clients[0]
        key = "key000000000000"
        shard = client.partitioner.shard_of(key)
        txn_id = client.txn_put([(key, b"solo")])
        system.run_for(2.0)
        assert client.txns.state_of(txn_id) == "committed"
        operation = client.get(key)
        system.run_for(1.0)
        assert client.value_of(operation) == b"solo"
        owner = system.edge_by_id(system.shard_owner(shard))
        assert owner.stats["txn_commits_applied"] == 1


# ----------------------------------------------------------------------
# Participant crash before the decision → abort on every participant
# ----------------------------------------------------------------------
class TestParticipantCrash:
    def test_unresponsive_participant_aborts_the_whole_txn(self):
        def factory(env, cloud, config, name, region, partitioner):
            cls = UnresponsivePrepareEdgeNode if name == "edge-1" else ShardedEdgeNode
            return cls(
                env=env, cloud=cloud, config=config, name=name,
                region=region, partitioner=partitioner,
            )

        system = build_fleet(edge_factory=factory)
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)
        assert {client.router.route(key).owner for key, _ in items} == {
            edge.node_id for edge in system.edges
        }

        txn_id = client.txn_put(items)
        system.run_for(3.0)  # past the receipt timeout (1s default)
        record = client.txns.record(txn_id)
        assert record.state == "aborted"
        assert "missing at timeout" in record.reason
        assert client.stats["txns_aborted"] == 1

        # Atomicity: neither shard serves either key — including the one
        # whose (responsive) participant had already staged the writes.
        gets = [(key, client.get(key)) for key, _ in items]
        system.run_for(1.0)
        for _key, operation in gets:
            assert client.value_of(operation) is None
        # The responsive participant discarded its stage and logged the abort.
        responsive = system.edges[0]
        assert responsive.stats.get("txn_aborts_applied", 0) == 1
        aborts = [rec for rec in decision_records(responsive) if rec[2][0] == TXN_ABORT]
        assert len(aborts) == 1
        for edge in system.edges:
            for shard in edge.owned_shards():
                assert not edge.shard_state(shard).staged_txns


# ----------------------------------------------------------------------
# Coordinator abandonment → participant timeout abort
# ----------------------------------------------------------------------
class TestCoordinatorAbandonment:
    def test_orphaned_prepares_expire_and_refuse_a_late_commit(self):
        system = build_fleet()
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)

        # The coordinator's receipts and decisions all vanish: the edges
        # are on their own with staged prepares.
        def drop_txn_control(src, dst, message):
            return not isinstance(message, (TxnPrepareReceipt, TxnDecisionMessage))

        system.env.network.add_send_hook("test:drop-txn-control", drop_txn_control)
        txn_id = client.txn_put(items)
        system.run_for(0.5)
        staged_counts = [
            sum(len(edge.shard_state(s).staged_txns) for s in edge.owned_shards())
            for edge in system.edges
        ]
        assert sum(staged_counts) == 2  # both participants staged

        # Past the signed expires_at horizon every stage presumes abort.
        system.run_for(6.0)
        system.env.network.remove_send_hook("test:drop-txn-control")
        expired = sum(
            edge.stats.get("txn_prepares_expired", 0) for edge in system.edges
        )
        assert expired == 2
        for edge in system.edges:
            for shard in edge.owned_shards():
                assert not edge.shard_state(shard).staged_txns
            aborts = [
                rec for rec in decision_records(edge) if rec[2][0] == TXN_ABORT
            ]
            assert len(aborts) == 1
            assert aborts[0][2][3] == "prepare-expired"

        # Nothing committed anywhere.
        gets = [(key, client.get(key)) for key, _ in items]
        system.run_for(1.0)
        for _key, operation in gets:
            assert client.value_of(operation) is None

        # A late commit (the abandoning coordinator coming back) is refused:
        # the abort tombstone wins, idempotently.
        record = client.txns.record(txn_id)
        statement = TxnDecisionStatement(
            coordinator=client.node_id,
            txn_id=txn_id,
            decision=TXN_COMMIT,
            participant_shards=record.participant_shards,
            decided_at=system.env.now(),
        )
        late_commit = TxnDecisionMessage(
            statement=statement,
            signature=system.env.registry.sign(client.node_id, statement),
        )
        for edge in system.edges:
            edge.on_message(client.node_id, late_commit)
        system.run_for(1.0)
        assert (
            sum(edge.stats.get("txn_duplicate_decisions", 0) for edge in system.edges)
            == 2
        )
        assert (
            sum(edge.stats.get("txn_commits_applied", 0) for edge in system.edges) == 0
        )
        gets = [(key, client.get(key)) for key, _ in items]
        system.run_for(1.0)
        for _key, operation in gets:
            assert client.value_of(operation) is None


# ----------------------------------------------------------------------
# Tampered prepare receipt → provable dispute
# ----------------------------------------------------------------------
class TestTamperedReceipt:
    def test_mismatched_receipt_is_disputed_and_punished(self):
        system = build_fleet(edge_factory=TamperingPrepareEdgeNode)
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)
        txn_id = client.txn_put(items)
        system.run_for(3.0)

        record = client.txns.record(txn_id)
        assert record.state == "aborted"
        assert record.reason == "tampered prepare receipt"
        assert client.stats["txn_receipt_mismatches"] >= 1
        assert client.stats["txn_disputes_sent"] >= 1
        # The cloud convicted the tamperer from the two signed artifacts.
        punished_verdicts = [v for v in client.txn_verdicts if v.punished]
        assert punished_verdicts
        accused = punished_verdicts[0].accused
        assert system.cloud.ledger.is_punished(accused)
        assert "write set differs" in punished_verdicts[0].reason
        # Atomicity held: nothing committed.
        gets = [(key, client.get(key)) for key, _ in items]
        system.run_for(1.0)
        for _key, operation in gets:
            assert client.value_of(operation) is None


# ----------------------------------------------------------------------
# Abort-ignoring participant serving staged state → provable dispute
# ----------------------------------------------------------------------
class TestStagedAbortServe:
    def test_serving_an_aborted_staged_write_convicts_the_edge(self):
        def factory(env, cloud, config, name, region, partitioner):
            cls = AbortIgnoringEdgeNode if name == "edge-0" else ShardedEdgeNode
            return cls(
                env=env, cloud=cloud, config=config, name=name,
                region=region, partitioner=partitioner,
            )

        system = build_fleet(edge_factory=factory)
        client = system.clients[0]
        rogue = system.edges[0]
        honest = system.edges[1]
        items = cross_shard_items(client, num_shards=2)
        by_owner = {client.router.route(key).owner: (key, value) for key, value in items}
        assert rogue.node_id in by_owner and honest.node_id in by_owner

        # Drop the honest edge's receipt so the coordinator aborts; the
        # rogue edge receives the signed abort but commits anyway.
        def drop_honest_receipts(src, dst, message):
            return not (
                isinstance(message, TxnPrepareReceipt) and src == honest.node_id
            )

        system.env.network.add_send_hook("test:drop-honest-receipts", drop_honest_receipts)
        txn_id = client.txn_put(items)
        system.run_for(3.0)
        system.env.network.remove_send_hook("test:drop-honest-receipts")
        assert client.txns.state_of(txn_id) == "aborted"
        assert rogue.stats.get("txn_commits_applied", 0) == 0  # it *claims* abort

        # Reading the rogue's key returns its signed response serving the
        # staged write — the client holds the full conviction triple.
        rogue_key, rogue_value = by_owner[rogue.node_id]
        operation = client.get(rogue_key)
        system.run_for(2.0)
        assert client.stats["staged_serve_detections"] == 1
        # Lazy-trust remedy: the response verified against certified state,
        # so the read completes — and the edge's own signed artifacts
        # convict it at the cloud.
        assert client.value_of(operation) == rogue_value
        punished = [v for v in client.txn_verdicts if v.punished]
        assert punished and punished[0].accused == rogue.node_id
        assert system.cloud.ledger.is_punished(rogue.node_id)
        assert "signed abort" in punished[0].reason
        # The conviction rode the proof-bound path (the judge placed the
        # record itself), which a backdated issued_at cannot evade.
        assert "proof-bound" in punished[0].reason

    def test_in_flight_plain_write_racing_an_abort_is_not_disputed(self):
        """A plain put of the same (key, value) issued just before the
        transaction — still unacknowledged when the prepare is staged, and
        committing after the abort's staging floor — must keep reading back
        cleanly: the coordinator's own-write memory stops the abort from
        registering (or disputing) a pair the client committed itself."""

        def factory(env, cloud, config, name, region, partitioner):
            cls = UnresponsivePrepareEdgeNode if name == "edge-1" else ShardedEdgeNode
            return cls(
                env=env, cloud=cloud, config=config, name=name,
                region=region, partitioner=partitioner,
            )

        system = build_fleet(edge_factory=factory)
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)
        honest_owner = system.edges[0].node_id
        key, value = next(
            (key, value)
            for key, value in items
            if client.router.route(key).owner == honest_owner
        )
        # Plain put and transaction back to back — no sim time in between,
        # so the put is unacknowledged when the prepare is staged.
        client.put(key, value)
        txn_id = client.txn_put(items)
        system.run_for(3.0)  # put commits; transaction aborts at the timer
        assert client.txns.state_of(txn_id) == "aborted"
        assert (
            key,
        ) not in {(k,) for k, _d in client.txns.aborted_writes}  # pair skipped
        operation = client.get(key)
        system.run_for(2.0)
        assert client.value_of(operation) == value
        assert client.phase_of(operation) is CommitPhase.PHASE_TWO
        assert client.stats["staged_serve_detections"] == 0
        assert client.stats["txn_disputes_sent"] == 0
        assert not system.cloud.ledger.is_punished(honest_owner)

    def test_pre_transaction_write_of_same_bytes_is_not_disputed(self):
        """A value committed *before* the transaction that later aborts with
        the same (key, value) must keep reading back cleanly: its proven
        sequence predates the receipt's staged log position."""

        def factory(env, cloud, config, name, region, partitioner):
            cls = UnresponsivePrepareEdgeNode if name == "edge-1" else ShardedEdgeNode
            return cls(
                env=env, cloud=cloud, config=config, name=name,
                region=region, partitioner=partitioner,
            )

        system = build_fleet(edge_factory=factory)
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)
        honest_owner = system.edges[0].node_id
        key, value = next(
            (key, value)
            for key, value in items
            if client.router.route(key).owner == honest_owner
        )
        # Commit the pair normally first.
        client.put(key, value)
        system.run_for(1.0)
        # Then abort a transaction staging the very same pair.
        txn_id = client.txn_put(items)
        system.run_for(3.0)
        assert client.txns.state_of(txn_id) == "aborted"
        # The coordinator's own-write memory excluded the pair outright: it
        # can never be disputed, however the later gets are timed.
        assert not any(k == key for k, _digest in client.txns.aborted_writes)
        operation = client.get(key)
        system.run_for(2.0)
        assert client.value_of(operation) == value
        assert client.phase_of(operation) is CommitPhase.PHASE_TWO
        assert client.stats["staged_serve_detections"] == 0
        assert client.stats["txn_disputes_sent"] == 0
        assert not system.cloud.ledger.is_punished(honest_owner)


# ----------------------------------------------------------------------
# Transaction racing a shard handoff
# ----------------------------------------------------------------------
class TestTxnVsHandoff:
    def test_staged_prepare_holds_the_drain_until_decided(self):
        system = build_fleet()
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)

        # Hold every decision back: the transaction stays staged.
        def drop_decisions(src, dst, message):
            return not isinstance(message, TxnDecisionMessage)

        system.env.network.add_send_hook("test:drop-decisions", drop_decisions)
        txn_id = client.txn_put(items)
        system.run_for(0.5)
        record = client.txns.record(txn_id)
        assert record.state == "committed"  # decision signed, not delivered

        # Order the staged shard away mid-transaction.
        key, value = items[0]
        shard = client.partitioner.shard_of(key)
        source = system.edge_by_id(system.shard_owner(shard))
        dest = next(edge for edge in system.edges if edge is not source)
        assert source.shard_state(shard).staged_txns
        system.rebalance_shard(shard, dest.node_id)
        system.run_for(1.0)
        # The drain waits: staged prepares must resolve before transfer.
        assert source.stats.get("handoff_txn_waits", 0) == 1
        assert system.cloud.stats["shard_handoffs_granted"] == 0
        assert shard in source._migrating

        # Deliver the held commit decision; the stage resolves, the commit
        # block certifies, and the handoff completes.
        system.env.network.remove_send_hook("test:drop-decisions")
        source.on_message(client.node_id, record.decision)
        system.run_for(3.0)
        assert source.stats.get("txn_commits_applied", 0) == 1
        assert system.cloud.stats["shard_handoffs_granted"] == 1
        assert system.shard_owner(shard) == dest.node_id
        assert dest.shard_state(shard) is not None

        # The committed value survives the move, served by the new owner.
        operation = client.get(key)
        system.run_for(1.0)
        assert client.value_of(operation) == value
        assert client.phase_of(operation) is CommitPhase.PHASE_TWO


# ----------------------------------------------------------------------
# Duplicate decisions absorb idempotently
# ----------------------------------------------------------------------
class TestDuplicateDecision:
    def test_replayed_commit_decision_applies_nothing_twice(self):
        system = build_fleet()
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)
        txn_id = client.txn_put(items)
        system.run_for(2.0)
        record = client.txns.record(txn_id)
        assert record.state == "committed"

        blocks_before = {
            edge.node_id: edge.stats["blocks_formed"] for edge in system.edges
        }
        applied_before = {
            edge.node_id: edge.stats.get("txn_commits_applied", 0)
            for edge in system.edges
        }
        for edge in system.edges:
            edge.on_message(client.node_id, record.decision)
        system.run_for(1.0)
        duplicates = sum(
            edge.stats.get("txn_duplicate_decisions", 0) for edge in system.edges
        )
        assert duplicates >= 1
        for edge in system.edges:
            assert edge.stats["blocks_formed"] == blocks_before[edge.node_id]
            assert (
                edge.stats.get("txn_commits_applied", 0)
                == applied_before[edge.node_id]
            )
        # Values unchanged and still verifiable.
        gets = [(key, value, client.get(key)) for key, value in items]
        system.run_for(1.0)
        for _key, value, operation in gets:
            assert client.value_of(operation) == value


# ----------------------------------------------------------------------
# Redirect-aware participant resolution across a shard handoff
# ----------------------------------------------------------------------
class TestPrepareReroute:
    def test_redirected_prepare_commits_at_the_new_owner(self):
        """A prepare sent with a stale map redirects to the shard's new
        owner and the transaction still commits: the re-sent prepare is
        re-derived for the new owner (a fresh edge has a lower log
        position, so replaying the old floor would be refused)."""

        from repro.messages.shard_messages import ShardMapMessage

        system = build_fleet()
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)
        key, _value = items[0]
        shard = client.partitioner.shard_of(key)
        source = system.edge_by_id(system.shard_owner(shard))
        dest = next(edge for edge in system.edges if edge is not source)

        # Seed the watermark: prior traffic raises the observed block ids.
        for index in range(8):
            client.put(key, b"warm-%d" % index)
        system.run_for(1.0)
        assert client._observed_block_ids.get(source.node_id, -1) >= 0

        # Move the shard while keeping the client's map stale.
        def drop_maps_to_client(src, dst, message):
            return not (
                isinstance(message, ShardMapMessage) and dst == client.node_id
            )

        system.env.network.add_send_hook("test:drop-maps-to-client", drop_maps_to_client)
        system.rebalance_shard(shard, dest.node_id)
        system.run_for(2.0)
        assert system.shard_owner(shard) == dest.node_id
        assert client.fleet_view.shard_map.owner_of(shard) == source.node_id

        txn_id = client.txn_put(items)  # prepare goes to the old owner
        system.run_for(2.0)
        system.env.network.remove_send_hook("test:drop-maps-to-client")
        record = client.txns.record(txn_id)
        assert client.stats["txn_prepare_reroutes"] >= 1
        assert record.state == "committed"
        assert record.participants[shard].owner == dest.node_id
        gets = [(key, value, client.get(key)) for key, value in items]
        system.run_for(1.0)
        for _key, value, operation in gets:
            assert client.value_of(operation) == value


# ----------------------------------------------------------------------
# Retrying an aborted write as a plain put must not frame the edge
# ----------------------------------------------------------------------
class TestRetryAfterAbort:
    def test_reissued_write_is_served_without_a_false_dispute(self):
        """The natural retry-after-abort pattern — re-putting the same
        (key, value) as an ordinary put — must read back cleanly: the
        aborted-write index forgets pairs the client legitimately rewrites,
        so no staged-abort-serve dispute fires against the honest edge."""

        def factory(env, cloud, config, name, region, partitioner):
            cls = UnresponsivePrepareEdgeNode if name == "edge-1" else ShardedEdgeNode
            return cls(
                env=env, cloud=cloud, config=config, name=name,
                region=region, partitioner=partitioner,
            )

        system = build_fleet(edge_factory=factory)
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)
        txn_id = client.txn_put(items)
        system.run_for(3.0)
        assert client.txns.state_of(txn_id) == "aborted"
        assert client.txns.aborted_writes  # the index holds the pairs

        # Retry every write as an ordinary put with the *same* values.
        puts = [client.put(key, value) for key, value in items]
        system.run_for(2.0)
        honest_owner = system.edges[0].node_id
        for (key, value), operation in zip(items, puts):
            if client.router.route(key).owner == honest_owner:
                assert client.phase_of(operation) is CommitPhase.PHASE_TWO
        gets = [(key, value, client.get(key)) for key, value in items
                if client.router.route(key).owner == honest_owner]
        system.run_for(2.0)
        for _key, value, operation in gets:
            assert client.value_of(operation) == value
            assert client.phase_of(operation) is CommitPhase.PHASE_TWO
        assert client.stats["staged_serve_detections"] == 0
        assert client.stats["txn_disputes_sent"] == 0
        assert not system.cloud.ledger.is_punished(honest_owner)


# ----------------------------------------------------------------------
# A lost decision is retransmitted until every participant acknowledged
# ----------------------------------------------------------------------
class TestDecisionRetry:
    def test_lost_commit_decision_is_resent_until_acked(self):
        """One participant's commit decision falls on the floor: without
        retransmission it would presume abort at its expiry while the rest
        committed — the retry closes the atomicity hole."""

        system = build_fleet()
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)
        victim = system.edges[1]

        def drop_decisions_to_victim(src, dst, message):
            return not (
                isinstance(message, TxnDecisionMessage) and dst == victim.node_id
            )

        system.env.network.add_send_hook("test:drop-decisions-to-victim", drop_decisions_to_victim)
        txn_id = client.txn_put(items)
        system.run_for(0.5)
        record = client.txns.record(txn_id)
        assert record.state == "committed"
        assert not record.all_acked  # the victim never saw the decision
        assert victim.stats.get("txn_commits_applied", 0) == 0

        # Let the wire heal; the coordinator's bounded retry re-delivers.
        system.env.network.remove_send_hook("test:drop-decisions-to-victim")
        system.run_for(3.0)
        assert client.stats["txn_decision_retries"] >= 1
        assert record.all_acked
        assert victim.stats.get("txn_commits_applied", 0) == 1
        assert victim.stats.get("txn_prepares_expired", 0) == 0
        gets = [(key, value, client.get(key)) for key, value in items]
        system.run_for(1.0)
        for _key, value, operation in gets:
            assert client.value_of(operation) == value


# ----------------------------------------------------------------------
# Redirect cap semantics (satellite regression test)
# ----------------------------------------------------------------------
class TestRedirectCap:
    def build(self, max_redirects):
        config = SystemConfig.paper_default().with_overrides(
            num_edge_nodes=3,
            sharding=ShardingConfig(num_shards=3, max_redirects=max_redirects),
            logging=LoggingConfig(block_size=4, block_timeout_s=0.02),
        )
        return ShardedWedgeSystem.build(
            config=config, num_clients=1, env=local_environment(seed=5)
        )

    def redirect_from(self, system, edge, operation_id, shard_id, owner):
        statement = NotOwnerStatement(
            edge=edge.node_id,
            operation_id=operation_id,
            shard_id=shard_id,
            owner=owner,
            map_version=edge.map_view.version,
            issued_at=system.env.now(),
        )
        return NotOwnerRedirect(
            statement=statement,
            signature=system.env.registry.sign(edge.node_id, statement),
        )

    def drive(self, max_redirects, hops):
        """Feed *hops* signed redirects to one pending put; return the client."""

        system = self.build(max_redirects)
        client = system.clients[0]
        # Keep the operation pending forever: the appends never arrive.
        system.env.network.add_send_hook(
            "test:drop-appends-and-prepares",
            lambda src, dst, message: not isinstance(
                message, (AppendBatchRequest, TxnPrepareRequest)
            ),
        )
        key = "key000000000000"
        shard_id = client.partitioner.shard_of(key)
        operation_id = client.put(key, b"v")
        system.run_for(0.1)
        # Bounce the operation between the two non-serving edges: each hop
        # is a signed redirect from the edge the client last contacted.
        record = client.tracker.get(operation_id)
        for _hop in range(hops):
            current = system.edge_by_id(record.details["edge"])
            target = next(
                edge for edge in system.edges if edge.node_id != current.node_id
            )
            redirect = self.redirect_from(
                system, current, operation_id, shard_id, target.node_id
            )
            client.on_message(current.node_id, redirect)
        return client, operation_id

    def test_exactly_max_redirect_hops_are_followed(self):
        client, operation_id = self.drive(max_redirects=2, hops=2)
        assert client.stats["redirects_followed"] == 2
        assert client.stats["redirect_failures"] == 0
        assert client.tracker.get(operation_id).phase is CommitPhase.PENDING

    def test_one_hop_past_the_cap_fails_the_operation(self):
        client, operation_id = self.drive(max_redirects=2, hops=3)
        assert client.stats["redirects_followed"] == 2
        assert client.stats["redirect_failures"] == 1
        record = client.tracker.get(operation_id)
        assert record.phase is CommitPhase.FAILED
        assert record.failure_reason == "redirect limit exceeded"

    def test_unsharded_fallback_uses_the_field_default(self):
        """No duplicated literal: with ``config.sharding is None`` the cap
        comes from ShardingConfig's field default."""

        from repro.nodes.cloud import CloudNode
        from repro.sharding import ShardedClient
        from repro.sharding.partitioner import HashRingPartitioner

        env = local_environment(seed=3)
        config = SystemConfig.paper_default()  # sharding is None
        assert config.sharding is None
        cloud = CloudNode(env=env, config=config)
        client = ShardedClient(
            env=env,
            edges=[edge_id("edge-solo")],
            cloud=cloud.node_id,
            partitioner=HashRingPartitioner(4),
            config=config,
        )
        field_default = ShardingConfig.__dataclass_fields__["max_redirects"].default
        assert client._max_redirects == field_default
        assert client._max_redirects == ShardingConfig().max_redirects


# ----------------------------------------------------------------------
# The transaction dispute judge (signed artifacts only)
# ----------------------------------------------------------------------
class TestTxnDisputeJudge:
    def setup_method(self):
        self.registry = KeyRegistry("hmac")
        self.coordinator = client_id("coord")
        self.edge = edge_id("participant")
        self.registry.register(self.coordinator)
        self.registry.register(self.edge)
        self.txn_id = TxnId(coordinator=self.coordinator, sequence=1)
        self.writes = (TxnWrite(key="k", value_digest=digest_value(b"v")),)

    def decision(self, decision, at=5.0):
        statement = TxnDecisionStatement(
            coordinator=self.coordinator,
            txn_id=self.txn_id,
            decision=decision,
            participant_shards=(0,),
            decided_at=at,
        )
        return TxnDecisionMessage(
            statement=statement,
            signature=self.registry.sign(self.coordinator, statement),
        )

    def prepare(self, writes=None):
        return TxnPrepareStatement(
            coordinator=self.coordinator,
            txn_id=self.txn_id,
            shard_id=0,
            writes=writes if writes is not None else self.writes,
            participant_shards=(0,),
            staged_floor=0,
            issued_at=1.0,
        )

    def receipt(self, writes=None, answers=None):
        statement = TxnPrepareReceiptStatement(
            edge=self.edge,
            txn_id=self.txn_id,
            shard_id=0,
            log_position=0,
            writes=writes if writes is not None else self.writes,
            prepare_digest=digest_value(
                answers if answers is not None else self.prepare()
            ),
            prepared_at=1.0,
            expires_at=10.0,
        )
        return TxnPrepareReceipt(
            statement=statement, signature=self.registry.sign(self.edge, statement)
        )

    def test_coordinator_equivocation_convicts_the_coordinator(self):
        dispute = TxnDispute(
            reporter=self.edge,
            accused=self.coordinator,
            txn_id=self.txn_id,
            kind="coordinator-equivocation",
            decision=self.decision(TXN_COMMIT),
            second_decision=self.decision(TXN_ABORT),
        )
        judgement = judge_txn_dispute(dispute, self.registry)
        assert judgement.punished
        assert "contradictory" in judgement.reason

    def test_agreeing_decisions_acquit(self):
        dispute = TxnDispute(
            reporter=self.edge,
            accused=self.coordinator,
            txn_id=self.txn_id,
            kind="coordinator-equivocation",
            decision=self.decision(TXN_ABORT),
            second_decision=self.decision(TXN_ABORT, at=6.0),
        )
        assert not judge_txn_dispute(dispute, self.registry).punished

    def test_matching_receipt_acquits_the_edge(self):
        statement = self.prepare()
        dispute = TxnDispute(
            reporter=self.coordinator,
            accused=self.edge,
            txn_id=self.txn_id,
            kind="prepare-receipt-mismatch",
            prepare_statement=statement,
            prepare_signature=self.registry.sign(self.coordinator, statement),
            receipt=self.receipt(),
        )
        assert not judge_txn_dispute(dispute, self.registry).punished

    def test_misquoting_receipt_convicts_the_edge(self):
        statement = self.prepare()
        lied = (TxnWrite(key="k", value_digest="0" * 64),)
        dispute = TxnDispute(
            reporter=self.coordinator,
            accused=self.edge,
            txn_id=self.txn_id,
            kind="prepare-receipt-mismatch",
            prepare_statement=statement,
            prepare_signature=self.registry.sign(self.coordinator, statement),
            receipt=self.receipt(writes=lied),  # digest-bound to `statement`
        )
        judgement = judge_txn_dispute(dispute, self.registry)
        assert judgement.punished
        assert "write set differs" in judgement.reason

    def test_minted_second_prepare_cannot_frame_an_honest_edge(self):
        """A coordinator presenting a *different* self-signed prepare than
        the one the receipt answered convicts nobody: the receipt's
        prepare_digest does not match."""

        honest_receipt = self.receipt()  # answers self.prepare()
        minted = self.prepare(
            writes=(TxnWrite(key="k", value_digest=digest_value(b"other")),)
        )
        dispute = TxnDispute(
            reporter=self.coordinator,
            accused=self.edge,
            txn_id=self.txn_id,
            kind="prepare-receipt-mismatch",
            prepare_statement=minted,
            prepare_signature=self.registry.sign(self.coordinator, minted),
            receipt=honest_receipt,
        )
        judgement = judge_txn_dispute(dispute, self.registry)
        assert not judgement.punished
        assert "does not answer" in judgement.reason

    def test_staged_serve_without_proof_is_unverifiable(self):
        """No serve proof → no conviction: the edge-claimed ``issued_at``
        is never evidence, so neither a backdating edge nor a proof-less
        framing dispute can move the verdict."""

        from repro.messages.kv_messages import GetResponseStatement

        serve = GetResponseStatement(
            edge=self.edge,
            operation_id=OperationId(client=self.coordinator, sequence=9),
            key="k",
            found=True,
            value_digest=digest_value(b"v"),
            issued_at=9.0,  # after decided_at=5.0 — still not enough
        )
        dispute = TxnDispute(
            reporter=self.coordinator,
            accused=self.edge,
            txn_id=self.txn_id,
            kind="staged-abort-serve",
            prepare_statement=self.prepare(),
            prepare_signature=self.registry.sign(self.coordinator, self.prepare()),
            receipt=self.receipt(),
            decision=self.decision(TXN_ABORT),
            serve_statement=serve,
            serve_signature=self.registry.sign(self.edge, serve),
        )
        judgement = judge_txn_dispute(dispute, self.registry)
        assert not judgement.punished
        assert "unverifiable" in judgement.reason

    def test_unknown_kind_acquits(self):
        dispute = TxnDispute(
            reporter=self.edge,
            accused=self.edge,
            txn_id=self.txn_id,
            kind="nonsense",
        )
        assert not judge_txn_dispute(dispute, self.registry).punished


# ----------------------------------------------------------------------
# An equivocating coordinator is counter-convicted by its own victim
# ----------------------------------------------------------------------
class TestCoordinatorEquivocation:
    def test_framed_edge_counter_disputes_the_forked_coordinator(self):
        """A coordinator that commits a transaction and then presents a
        freshly signed *abort* as dispute evidence gets an honest edge
        convicted — but the cloud forwards the convicting abort to the
        accused, which holds the contradictory signed commit and convicts
        the coordinator right back."""

        from repro.messages.kv_messages import GetResponse

        system = build_fleet()
        client = system.clients[0]
        items = cross_shard_items(client, num_shards=2)
        txn_id = client.txn_put(items)
        system.run_for(2.0)
        record = client.txns.record(txn_id)
        assert record.state == "committed"

        # Capture a signed, proven serve of one committed key.
        key, _value = next(
            (key, value)
            for key, value in items
            if client.router.route(key).owner == system.edges[0].node_id
        )
        captured = []

        def capture(src, dst, message):
            if isinstance(message, GetResponse):
                captured.append(message)
            return True

        system.env.network.add_send_hook("test:capture", capture)
        client.get(key)
        system.run_for(1.0)
        system.env.network.remove_send_hook("test:capture")
        response = captured[0]

        # The coordinator now signs a contradictory ABORT and frames the
        # serving edge with otherwise-genuine artifacts.
        shard = client.partitioner.shard_of(key)
        participant = record.participants[shard]
        abort_statement = TxnDecisionStatement(
            coordinator=client.node_id,
            txn_id=txn_id,
            decision=TXN_ABORT,
            participant_shards=record.participant_shards,
            decided_at=system.env.now(),
        )
        forged_abort = TxnDecisionMessage(
            statement=abort_statement,
            signature=system.env.registry.sign(client.node_id, abort_statement),
        )
        accused = participant.owner
        dispute = TxnDispute(
            reporter=client.node_id,
            accused=accused,
            txn_id=txn_id,
            kind="staged-abort-serve",
            prepare_statement=participant.statement,
            prepare_signature=participant.signature,
            receipt=participant.receipt,
            decision=forged_abort,
            serve_statement=response.statement,
            serve_signature=response.signature,
            serve_proof=response.proof,
        )
        system.env.send(client.node_id, system.cloud.node_id, dispute)
        system.run_for(2.0)

        # The frame lands (the artifacts are individually genuine) — but
        # the victim's counter-dispute convicts the forked coordinator.
        edge = system.edge_by_id(accused)
        assert system.cloud.ledger.is_punished(accused)
        assert edge.stats.get("txn_equivocation_disputes", 0) == 1
        assert system.cloud.ledger.is_punished(client.node_id)
        reasons = [
            rec.reason for rec in system.cloud.ledger.records_for(client.node_id)
        ]
        assert any("contradictory decisions" in reason for reason in reasons)


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
class TestTxnConfig:
    def test_prepare_timeout_must_exceed_receipt_timeout(self):
        with pytest.raises(ConfigurationError):
            ShardingConfig(txn_receipt_timeout_s=2.0, txn_prepare_timeout_s=1.0)
        with pytest.raises(ConfigurationError):
            ShardingConfig(txn_receipt_timeout_s=0.0)
