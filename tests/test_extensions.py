"""Tests for the optional protocol extensions the paper sketches.

* Replay protection (Section IV-E): re-sending an already-appended signed
  entry does not duplicate it in the log; the edge answers idempotently with
  the original block and receipt.
* Client-side session consistency (Section V-D alternative): a client that
  has observed a signed global root of version *v* rejects later responses
  verified against an older root.
"""

from __future__ import annotations

import pytest

from repro.common import LoggingConfig, LSMerkleConfig, SystemConfig
from repro.common.identifiers import OperationId
from repro.core.system import WedgeChainSystem
from repro.log.proofs import CommitPhase
from repro.messages.log_messages import AppendBatchRequest
from repro.sim.environment import local_environment
from repro.workloads.generator import format_key


def small_config(block_size=4):
    return SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=block_size, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )


@pytest.fixture
def system():
    return WedgeChainSystem.build(
        config=small_config(), num_clients=2, env=local_environment(seed=131)
    )


class TestReplayProtection:
    def test_replayed_request_does_not_duplicate_entries(self, system):
        client = system.client(0)
        edge = system.edge()
        op = client.put_batch([(f"k{i}", b"v") for i in range(4)])
        system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=10)
        entries_before = edge.log.total_entries()
        original_record = client.operation(op)

        # A network-level adversary (or a retrying client) replays the exact
        # same signed request under a new operation id.
        replay_op = OperationId(client=client.node_id, sequence=9999)
        client.tracker.register(
            replay_op,
            original_record.kind,
            system.env.now(),
            entry_sequences=original_record.details["entry_sequences"],
        )
        replayed = AppendBatchRequest(
            requester=client.node_id,
            operation_id=replay_op,
            kind=original_record.kind,
            entries=tuple(
                entry
                for entry in edge.log.block(original_record.block_id).entries
                if entry.producer == client.node_id
            ),
        )
        system.env.send(client.node_id, edge.node_id, replayed)
        system.run_for(2.0)

        # No duplicate data was appended ...
        assert edge.log.total_entries() == entries_before
        assert edge.stats.get("replayed_entries", 0) == 4
        # ... and the replayed request is answered idempotently: it reaches
        # the same block and commits.
        replay_record = client.operation(replay_op)
        assert replay_record.block_id == original_record.block_id
        assert replay_record.phase is CommitPhase.PHASE_TWO

    def test_partial_replay_appends_only_fresh_entries(self, system):
        client = system.client(0)
        edge = system.edge()
        op = client.put_batch([(f"k{i}", b"v") for i in range(4)])
        system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=10)
        entries_before = edge.log.total_entries()

        # A new batch: the entries are fresh (new client sequences), so they
        # must be appended even though the keys repeat.
        op2 = client.put_batch([(f"k{i}", b"v2") for i in range(4)])
        system.wait_for(client, op2, CommitPhase.PHASE_TWO, max_time_s=10)
        assert edge.log.total_entries() == entries_before + 4
        assert client.operation(op2).block_id != client.operation(op).block_id


class TestSessionConsistency:
    def test_root_version_is_tracked_across_gets(self, system):
        writer, reader = system.clients
        # Two rounds of writes with a merge in between bump the root version.
        for round_index in range(4):
            op = writer.put_batch(
                [(format_key(round_index * 4 + i), b"x") for i in range(4)]
            )
            system.wait_for(writer, op, CommitPhase.PHASE_TWO, max_time_s=10)
        system.run_for(2.0)
        get_op = reader.get(format_key(1))
        system.wait_for(reader, get_op, CommitPhase.PHASE_TWO, max_time_s=10)
        assert reader._last_root_version >= 1
        assert reader.operation(get_op).details.get("root_version") is not None

    def test_older_root_than_previously_observed_is_rejected(self, system):
        writer, reader = system.clients
        for round_index in range(4):
            op = writer.put_batch(
                [(format_key(round_index * 4 + i), b"x") for i in range(4)]
            )
            system.wait_for(writer, op, CommitPhase.PHASE_TWO, max_time_s=10)
        system.run_for(2.0)
        # Simulate the client having already read from a much newer root
        # (e.g. through another edge replica or an earlier session).
        reader._last_root_version = 10_000
        get_op = reader.get(format_key(1))
        system.run_for(2.0)
        record = reader.operation(get_op)
        assert record.phase is CommitPhase.FAILED
        assert "session consistency" in (record.failure_reason or "")
        assert any(
            event["kind"] == "session-consistency-violation"
            for event in reader.malicious_events
        )

    def test_monotonically_newer_roots_are_accepted(self, system):
        writer, reader = system.clients
        observed_versions = []
        for round_index in range(6):
            op = writer.put_batch(
                [(format_key(round_index * 4 + i), b"x") for i in range(4)]
            )
            system.wait_for(writer, op, CommitPhase.PHASE_TWO, max_time_s=10)
            system.run_for(1.0)
            get_op = reader.get(format_key(round_index * 4))
            system.wait_for(reader, get_op, CommitPhase.PHASE_ONE, max_time_s=10)
            record = reader.operation(get_op)
            assert record.phase is not CommitPhase.FAILED
            version = record.details.get("root_version")
            if version is not None:
                observed_versions.append(version)
        assert observed_versions == sorted(observed_versions)
