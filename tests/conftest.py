"""Shared fixtures for the WedgeChain reproduction test suite."""

from __future__ import annotations

import pytest

from repro.common import LoggingConfig, LSMerkleConfig, SecurityConfig, SystemConfig
from repro.common.identifiers import client_id, cloud_id, edge_id
from repro.core.system import WedgeChainSystem
from repro.crypto.signatures import KeyRegistry
from repro.log.block import build_block
from repro.log.entry import make_entry
from repro.sim.environment import local_environment


@pytest.fixture
def registry() -> KeyRegistry:
    """An HMAC key registry with one cloud, one edge, and two clients."""

    registry = KeyRegistry("hmac")
    for node in (cloud_id(), edge_id("edge-0"), client_id("alice"), client_id("bob")):
        registry.register(node)
    return registry


@pytest.fixture
def local_env():
    """A co-located simulated environment (negligible network latency)."""

    return local_environment(seed=11)


@pytest.fixture
def small_config() -> SystemConfig:
    """A system config with tiny blocks and shallow LSMerkle levels."""

    return SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=5, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
        security=SecurityConfig(dispute_timeout_s=2.0, gossip_interval_s=0.25),
    )


@pytest.fixture
def local_system(small_config):
    """A complete WedgeChain deployment on a co-located environment."""

    return WedgeChainSystem.build(
        config=small_config, num_clients=2, env=local_environment(seed=13)
    )


def make_signed_entries(registry: KeyRegistry, producer, count: int, start: int = 0):
    """Helper used across tests: *count* signed entries from one producer."""

    return [
        make_entry(
            registry=registry,
            producer=producer,
            sequence=start + index,
            payload=f"payload-{start + index}".encode(),
            produced_at=float(index),
        )
        for index in range(count)
    ]


@pytest.fixture
def sample_block(registry):
    """A block of five signed entries owned by edge-0."""

    entries = make_signed_entries(registry, client_id("alice"), 5)
    return build_block(edge_id("edge-0"), 0, entries, created_at=1.0)
