"""Unit-level tests of the edge and cloud node implementations.

These drive single nodes (attached to a co-located environment) through
specific message sequences to pin down behaviours that the end-to-end
integration tests only exercise implicitly: certification idempotency,
conflict handling, merge rejections, root refreshes, and the data-free
ablation variant.
"""

from __future__ import annotations

import pytest

from repro.common import LoggingConfig, LSMerkleConfig, SecurityConfig, SystemConfig
from repro.common.identifiers import client_id
from repro.core.system import WedgeChainSystem
from repro.log.entry import make_entry
from repro.log.proofs import CommitPhase
from repro.lsmerkle.codec import encode_put
from repro.messages.log_messages import (
    BlockCertifyRequest,
    CertifyStatement,
)
from repro.nodes.cloud import CloudNode
from repro.nodes.variants import FullDataCertifyRequest, FullDataLazyEdgeNode
from repro.sim.environment import local_environment


def small_config(block_size=4):
    return SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=block_size, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
        security=SecurityConfig(dispute_timeout_s=2.0),
    )


@pytest.fixture
def cloud_env():
    env = local_environment(seed=101)
    cloud = CloudNode(env=env, config=small_config())
    return env, cloud


class _Probe:
    """A fake edge endpoint used to talk to the cloud node directly."""

    def __init__(self, env, name="edge-0"):
        from repro.common.identifiers import edge_id
        from repro.common.regions import Region

        self.node_id = edge_id(name)
        self.region = Region.CALIFORNIA
        self.received = []
        self.env = env
        env.attach(self)

    def on_message(self, sender, message):
        self.received.append(message)

    def certify(self, block_id, digest, num_entries=4):
        statement = CertifyStatement(
            edge=self.node_id,
            block_id=block_id,
            block_digest=digest,
            num_entries=num_entries,
        )
        signature = self.env.registry.sign(self.node_id, statement)
        return BlockCertifyRequest(statement=statement, signature=signature)


class TestCloudCertification:
    def test_first_certification_issues_proof(self, cloud_env):
        env, cloud = cloud_env
        probe = _Probe(env)
        env.send(probe.node_id, cloud.node_id, probe.certify(0, "a" * 64))
        env.run()
        assert cloud.certified_digest(probe.node_id, 0) == "a" * 64
        assert cloud.stats["certifications"] == 1
        assert len(probe.received) == 1
        proof_message = probe.received[0]
        assert proof_message.proof.block_digest == "a" * 64
        assert proof_message.proof.verify(env.registry)

    def test_repeated_identical_certification_is_idempotent(self, cloud_env):
        env, cloud = cloud_env
        probe = _Probe(env)
        for _ in range(3):
            env.send(probe.node_id, cloud.node_id, probe.certify(0, "a" * 64))
        env.run()
        assert cloud.stats["certifications"] == 1
        assert cloud.stats["punishments"] == 0
        assert len(probe.received) == 3  # a proof is (re)sent every time

    def test_conflicting_digest_flags_edge_as_malicious(self, cloud_env):
        env, cloud = cloud_env
        probe = _Probe(env)
        env.send(probe.node_id, cloud.node_id, probe.certify(0, "a" * 64))
        env.send(probe.node_id, cloud.node_id, probe.certify(0, "b" * 64))
        env.run()
        assert cloud.stats["certify_conflicts"] == 1
        assert cloud.ledger.is_punished(probe.node_id)
        from repro.messages.log_messages import CertifyRejection

        assert any(isinstance(msg, CertifyRejection) for msg in probe.received)
        # The originally certified digest is retained.
        assert cloud.certified_digest(probe.node_id, 0) == "a" * 64

    def test_misattributed_certification_is_ignored(self, cloud_env):
        env, cloud = cloud_env
        honest = _Probe(env, name="edge-0")
        impostor = _Probe(env, name="edge-1")
        # The impostor relays a statement naming the honest edge.
        request = honest.certify(0, "c" * 64)
        env.send(impostor.node_id, cloud.node_id, request)
        env.run()
        assert cloud.certified_digest(honest.node_id, 0) is None
        assert cloud.stats["certifications"] == 0

    def test_certified_log_size_counts_blocks(self, cloud_env):
        env, cloud = cloud_env
        probe = _Probe(env)
        for block_id in range(3):
            env.send(
                probe.node_id, cloud.node_id, probe.certify(block_id, f"{block_id}" * 64)
            )
        env.run()
        assert cloud.certified_log_size(probe.node_id) == 3
        assert cloud.proof_for(probe.node_id, 2) is not None
        assert cloud.proof_for(probe.node_id, 9) is None


class TestEdgeNodeBehaviour:
    def _system(self, **kwargs):
        return WedgeChainSystem.build(
            config=small_config(**kwargs), num_clients=1, env=local_environment(seed=103)
        )

    def test_append_forms_block_and_certifies(self):
        system = self._system()
        client = system.client()
        op = client.put_batch([(f"k{i}", b"v") for i in range(4)])
        system.run_for(2.0)
        edge = system.edge()
        assert edge.stats["blocks_formed"] == 1
        assert edge.stats["certify_requests"] == 1
        assert edge.log.certified_count() == 1
        assert client.operation(op).phase is CommitPhase.PHASE_TWO

    def test_multiple_operations_batched_into_one_block(self):
        system = self._system()
        client = system.client()
        op_a = client.put_batch([("a", b"1"), ("b", b"2")])
        op_b = client.put_batch([("c", b"3"), ("d", b"4")])
        system.run_for(2.0)
        assert system.edge().stats["blocks_formed"] == 1
        assert client.operation(op_a).block_id == client.operation(op_b).block_id

    def test_index_only_tracks_put_blocks(self):
        system = self._system()
        client = system.client()
        client.add_batch([b"log-only"] * 4)
        system.run_for(2.0)
        edge = system.edge()
        assert edge.stats["blocks_formed"] == 1
        assert edge.index.tree.level_zero.num_pages == 0
        client.put_batch([(f"k{i}", b"v") for i in range(4)])
        system.run_for(2.0)
        assert edge.index.tree.level_zero.num_pages == 1

    def test_foreign_block_proof_is_ignored(self):
        system = self._system()
        client = system.client()
        client.put_batch([(f"k{i}", b"v") for i in range(4)])
        system.run_for(2.0)
        edge = system.edge()
        from repro.log.proofs import issue_block_proof

        foreign = issue_block_proof(
            system.env.registry,
            system.cloud.node_id,
            client.node_id.__class__(client.node_id.role, "someone-else"),
            99,
            "d" * 64,
            1.0,
        )
        before = edge.stats["proofs_received"]
        from repro.messages.log_messages import BlockProofMessage

        system.env.send(system.cloud.node_id, edge.node_id, BlockProofMessage(proof=foreign))
        system.run_for(1.0)
        assert edge.stats["proofs_received"] == before

    def test_unknown_message_types_are_ignored(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class UnknownMessage:
            text: str = "???"

        system = self._system()
        edge = system.edge()
        system.env.send(system.cloud.node_id, edge.node_id, UnknownMessage())
        system.run_for(0.5)  # must not raise


class TestFullDataLazyVariant:
    def test_full_data_certification_still_certifies_but_costs_bandwidth(self):
        def factory(env, cloud, cfg, name, region):
            return FullDataLazyEdgeNode(env=env, cloud=cloud, config=cfg, name=name, region=region)

        lazy_system = WedgeChainSystem.build(
            config=small_config(), num_clients=1, env=local_environment(seed=104)
        )
        full_system = WedgeChainSystem.build(
            config=small_config(),
            num_clients=1,
            env=local_environment(seed=104),
            edge_factory=factory,
        )
        payload = [(f"key-{i}", b"x" * 200) for i in range(4)]
        for system in (lazy_system, full_system):
            client = system.client()
            op = client.put_batch(payload)
            system.run_for(2.0)
            assert client.operation(op).phase is CommitPhase.PHASE_TWO
        lazy_bytes = lazy_system.env.network.stats.per_link_bytes
        full_bytes = full_system.env.network.stats.per_link_bytes
        edge_to_cloud = lambda stats, system: stats.get(
            (str(system.edge().node_id), str(system.cloud.node_id)), 0
        )
        assert edge_to_cloud(full_bytes, full_system) > 2 * edge_to_cloud(
            lazy_bytes, lazy_system
        )

    def test_full_data_request_exposes_certify_interface(self, registry):
        from repro.log.block import build_block

        entries = [
            make_entry(registry, client_id("alice"), i, encode_put(f"k{i}", b"v"), 0.0)
            for i in range(2)
        ]
        from repro.common.identifiers import edge_id

        block = build_block(edge_id("edge-0"), 0, entries, 0.0)
        statement = CertifyStatement(
            edge=block.edge, block_id=0, block_digest=block.digest(), num_entries=2
        )
        request = FullDataCertifyRequest(
            statement=statement,
            signature=registry.sign(client_id("alice"), statement),
            block=block,
        )
        assert isinstance(request, BlockCertifyRequest)
        assert request.wire_size > block.wire_size
        assert request.block_digest == block.digest()
