"""Regression pin for the permanent default stance (settled in PR 7).

**Paper-exact by default, fast by config.** Every throughput or
robustness feature added since the seed defaults OFF so the committed
figure-4/5 metrics stay byte-identical to the paper-calibrated protocol.
This test is the tripwire: flipping any of these defaults is a figure
recalibration (re-measure, re-commit, re-document in ROADMAP), not a
tweak — whoever changes them must consciously edit this file too.
"""

from repro.common.config import ShardingConfig, StorageConfig, SystemConfig


class TestPaperDefaultStance:
    def test_batch_certification_defaults_off(self):
        config = SystemConfig.paper_default()
        assert config.logging.certify_batch_size == 1

    def test_gossip_batching_defaults_off(self):
        config = SystemConfig.paper_default()
        assert config.security.gossip_batch is False

    def test_certify_pipeline_defaults_off(self):
        config = SystemConfig.paper_default()
        assert config.logging.certify_pipeline_depth == 1

    def test_storage_defaults_in_memory(self):
        config = SystemConfig.paper_default()
        assert config.storage.backend == "memory"
        assert not config.storage.is_durable
        # The zero-arg constructor (what tests and examples reach for)
        # matches paper_default() — there is exactly one default.
        assert SystemConfig() == config

    def test_storage_config_defaults(self):
        # The knobs a disk deployment inherits unless it says otherwise.
        storage = StorageConfig()
        assert storage.fsync == "on_seal"
        assert storage.truncate_on_snapshot is True

    def test_observability_defaults_off(self):
        # Observability (PR 8) is opt-in: a default deployment carries no
        # tracer, no metrics registries, and never imports repro.obs —
        # the hot-path cost of the instrumentation is one attribute check.
        config = SystemConfig.paper_default()
        assert config.observability.enabled is False
        assert SystemConfig() == config

    def test_replication_defaults_off(self):
        # Replica groups (PR 9) are opt-in: the default fleet has one
        # certifying writer per shard and no read replicas, the signed
        # shard map carries no replica sets (byte-identical to the
        # unreplicated map), and no lease/shipping/failover machinery
        # ever starts.
        sharding = ShardingConfig()
        assert sharding.replication_factor == 1
        assert sharding.replica_lease_s == 2.0
        assert sharding.failover_timeout_s == 3.0
