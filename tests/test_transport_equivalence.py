"""Transport equivalence: the protocol does not care which substrate runs it.

The tentpole claim of the Transport refactor is that the simulated network
and the wall-clock asyncio transport are two implementations of the same
boundary.  These tests pin that claim with one seeded open-loop schedule
(built once by :func:`build_request_schedule`, so both substrates are
offered byte-for-byte identical requests) driven through

* the discrete-event simulator (``WedgeChainSystem`` + ``SimOpenLoopDriver``),
* a live 1-cloud/2-edge asyncio fleet over unix sockets
  (``LiveFleet`` + ``run_open_loop``),

and assert that the protocol-level outcome is identical: every operation
certifies through Phase II, zero failures on either side, and verified
reads of the same keys return the same values with proofs that check out
(the client only advances a read to PHASE_TWO after verifying its LSMerkle
proof, so phase equality is proof equality).  Wall-clock latencies differ
between substrates by design — only protocol artifacts must match.
"""

from __future__ import annotations

import asyncio

from repro.common.config import SystemConfig, WorkloadConfig
from repro.core.system import WedgeChainSystem
from repro.log.proofs import CommitPhase
from repro.service import LiveFleet
from repro.sim.environment import local_environment
from repro.workloads import (
    OpenLoopSpec,
    SimOpenLoopDriver,
    build_request_schedule,
    run_open_loop,
)

_TEST_TIMEOUT_S = 60.0
_SEED = 33
_NUM_CLIENTS = 2


def run_async(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, timeout=_TEST_TIMEOUT_S)

    return asyncio.run(capped())


def _spec() -> OpenLoopSpec:
    workload = WorkloadConfig(
        num_clients=_NUM_CLIENTS,
        batch_size=10,
        value_size=64,
        read_fraction=0.0,
        key_space=200,
        operations_per_client=100,
        seed=_SEED,
    )
    # Write-only open-loop burst; reads are issued afterwards against the
    # certified state so both substrates verify the same keys.
    return OpenLoopSpec(workload=workload, num_requests=16, rate=120.0)


def _keys_by_writer(spec: OpenLoopSpec) -> dict[int, list[str]]:
    """Map client index -> keys that client wrote (last writer wins).

    Clients home to edges round-robin on both substrates, so reads must be
    issued by the writing client to target the edge that holds the key.
    """

    owner = {}
    for request in build_request_schedule(spec, _NUM_CLIENTS):
        for key, _value in request.items:
            owner[key] = request.client_index
    by_writer: dict[int, list[str]] = {}
    for key in sorted(owner):
        by_writer.setdefault(owner[key], []).append(key)
    return by_writer


def _read_outcome(client, operation_id):
    record = client.tracker.get(operation_id)
    return record.details.get("found"), record.details.get("value")


def _sim_run(spec: OpenLoopSpec):
    """Drive the schedule through the simulator; return (result, read map)."""

    config = SystemConfig.paper_default().with_overrides(num_edge_nodes=2)
    system = WedgeChainSystem.build(
        config=config, num_clients=_NUM_CLIENTS, env=local_environment(seed=_SEED)
    )
    result = SimOpenLoopDriver(system, spec).run()
    reads = {}
    for client_index, keys in _keys_by_writer(spec).items():
        client = system.client(client_index)
        for key in keys:
            operation = client.get(key)
            assert system.wait_for(client, operation, CommitPhase.PHASE_TWO)
            reads[key] = _read_outcome(client, operation)
    return result, reads


async def _live_run(spec: OpenLoopSpec):
    """Drive the same schedule through the asyncio fleet over unix sockets."""

    async with LiveFleet(
        num_edges=2, num_clients=_NUM_CLIENTS, seed=_SEED
    ) as fleet:
        result = await run_open_loop(fleet, spec)
        reads = {}
        for client_index, keys in _keys_by_writer(spec).items():
            client = fleet.client(client_index)
            for key in keys:
                operation = client.get(key)
                phase = await fleet.wait_for(
                    client, operation, CommitPhase.PHASE_TWO, timeout_s=15
                )
                assert phase is CommitPhase.PHASE_TWO
                reads[key] = _read_outcome(client, operation)
        assert fleet.env.failures == []
    return result, reads


class TestSubstrateEquivalence:
    def test_same_schedule_yields_same_protocol_outcome(self):
        spec = _spec()
        by_writer = _keys_by_writer(spec)
        keys = sorted(key for keys in by_writer.values() for key in keys)
        assert keys, "schedule wrote nothing"

        sim_result, sim_reads = _sim_run(spec)
        live_result, live_reads = run_async(_live_run(spec))

        # Both substrates were offered the identical request schedule and
        # settled every operation through Phase II certification.
        assert sim_result.offered == live_result.offered == spec.num_requests
        assert sim_result.completed == spec.num_requests
        assert live_result.completed == spec.num_requests
        assert sim_result.failed == 0 and live_result.failed == 0

        # Verified reads agree key-by-key: same found flags, same values.
        # Each read reached PHASE_TWO only after its LSMerkle proof verified,
        # so agreement here is agreement on certified state.
        assert set(sim_reads) == set(live_reads) == set(keys)
        for key in keys:
            assert sim_reads[key] == live_reads[key], key
            found, value = sim_reads[key]
            assert found is True
            assert isinstance(value, bytes) and value

    def test_sim_side_is_bit_deterministic(self):
        spec = _spec()
        first_result, first_reads = _sim_run(spec)
        second_result, second_reads = _sim_run(spec)
        assert first_result.percentiles_s == second_result.percentiles_s
        assert first_result.duration_s == second_result.duration_s
        assert first_reads == second_reads

    def test_schedule_offered_to_both_substrates_is_identical(self):
        spec = _spec()
        assert build_request_schedule(spec, _NUM_CLIENTS) == build_request_schedule(
            spec, _NUM_CLIENTS
        )
