"""Unit tests for the discrete-event scheduler and simulated clocks."""

from __future__ import annotations

import pytest

from repro.common import SimulationError
from repro.sim.clock import ManualClock, SimulatedClock, WallClock
from repro.sim.events import EventScheduler


class TestClocks:
    def test_manual_clock_advances(self):
        clock = ManualClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        assert clock.now() == 1.5

    def test_manual_clock_rejects_backwards(self):
        clock = ManualClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance(-1)
        with pytest.raises(SimulationError):
            clock.set(5.0)

    def test_simulated_clock_only_moves_forward(self):
        clock = SimulatedClock()
        clock._advance_to(3.0)
        with pytest.raises(SimulationError):
            clock._advance_to(2.0)

    def test_wall_clock_monotonic(self):
        clock = WallClock()
        assert clock.now() <= clock.now()


class TestEventScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(2.0, lambda: order.append("b"))
        scheduler.schedule_at(1.0, lambda: order.append("a"))
        scheduler.schedule_at(3.0, lambda: order.append("c"))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        for name in "abc":
            scheduler.schedule_at(1.0, lambda n=name: order.append(n))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule_after(5.0, lambda: seen.append(scheduler.now()))
        scheduler.run()
        assert seen == [5.0]

    def test_cannot_schedule_in_the_past(self):
        scheduler = EventScheduler(start_time=10.0)
        with pytest.raises(SimulationError):
            scheduler.schedule_at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            scheduler.schedule_after(-1.0, lambda: None)

    def test_cancelled_events_do_not_run(self):
        scheduler = EventScheduler()
        ran = []
        handle = scheduler.schedule_after(1.0, lambda: ran.append(1))
        handle.cancel()
        scheduler.run()
        assert ran == []
        assert handle.cancelled

    def test_events_scheduled_during_execution_run(self):
        scheduler = EventScheduler()
        order = []

        def first():
            order.append("first")
            scheduler.schedule_after(1.0, lambda: order.append("second"))

        scheduler.schedule_after(1.0, first)
        scheduler.run()
        assert order == ["first", "second"]

    def test_run_until_stops_at_deadline(self):
        scheduler = EventScheduler()
        ran = []
        scheduler.schedule_at(1.0, lambda: ran.append(1))
        scheduler.schedule_at(10.0, lambda: ran.append(2))
        scheduler.run_until(5.0)
        assert ran == [1]
        assert scheduler.now() == 5.0
        assert scheduler.pending_events == 1

    def test_run_max_events(self):
        scheduler = EventScheduler()
        for i in range(5):
            scheduler.schedule_at(float(i + 1), lambda: None)
        processed = scheduler.run(max_events=3)
        assert processed == 3
        assert scheduler.pending_events == 2

    def test_run_until_condition(self):
        scheduler = EventScheduler()
        counter = {"n": 0}

        def bump():
            counter["n"] += 1

        for i in range(10):
            scheduler.schedule_at(float(i + 1), bump)
        reached = scheduler.run_until_condition(lambda: counter["n"] >= 4, max_time=100)
        assert reached
        assert counter["n"] >= 4

    def test_run_until_condition_times_out(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(50.0, lambda: None)
        reached = scheduler.run_until_condition(lambda: False, max_time=10.0)
        assert not reached

    def test_periodic_scheduling_and_stop(self):
        scheduler = EventScheduler()
        ticks = []
        stop = scheduler.schedule_periodic(1.0, lambda: ticks.append(scheduler.now()))
        scheduler.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]
        stop()
        scheduler.run_until(10.0)
        assert len(ticks) == 3

    def test_periodic_rejects_non_positive_interval(self):
        scheduler = EventScheduler()
        with pytest.raises(SimulationError):
            scheduler.schedule_periodic(0.0, lambda: None)

    def test_events_processed_counter(self):
        scheduler = EventScheduler()
        scheduler.schedule_after(1.0, lambda: None)
        scheduler.schedule_after(2.0, lambda: None)
        scheduler.run()
        assert scheduler.events_processed == 2
