"""Unit-level tests of the client node's verification and evidence handling."""

from __future__ import annotations

import pytest

from repro.common import LoggingConfig, LSMerkleConfig, SecurityConfig, SystemConfig
from repro.core.system import WedgeChainSystem
from repro.log.proofs import CommitPhase, issue_phase_one_receipt
from repro.messages.log_messages import AppendBatchResponse, BlockProofMessage
from repro.sim.environment import local_environment


def small_config():
    return SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=3, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
        security=SecurityConfig(dispute_timeout_s=1.0),
    )


@pytest.fixture
def system():
    return WedgeChainSystem.build(
        config=small_config(), num_clients=2, env=local_environment(seed=111)
    )


class TestAppendResponseVerification:
    def test_receipt_signed_by_wrong_party_is_rejected(self, system):
        client = system.client(0)
        edge = system.edge()
        op = client.put_batch([("a", b"1"), ("b", b"2"), ("c", b"3")])
        system.run_for(1.0)
        record = client.operation(op)
        assert record.phase is CommitPhase.PHASE_TWO

        # Forge a response for a new operation with a receipt signed by the
        # *cloud* instead of the client's edge node: the client must refuse it.
        from repro.log.block import build_block
        from repro.log.entry import make_entry
        from repro.lsmerkle.codec import encode_put

        entries = tuple(
            make_entry(system.env.registry, client.node_id, 100 + i, encode_put("x", b"y"), 0.0)
            for i in range(3)
        )
        fake_block = build_block(edge.node_id, 77, entries, 0.0)
        forged_receipt = issue_phase_one_receipt(
            system.env.registry, system.cloud.node_id, fake_block, 0.0
        )
        op2 = client.put_batch([("x", b"y"), ("x2", b"y"), ("x3", b"y")])
        forged = AppendBatchResponse(
            edge=edge.node_id,
            operation_id=op2,
            block_id=77,
            receipt=forged_receipt,
            block=fake_block,
        )
        system.env.send(edge.node_id, client.node_id, forged)
        system.run_for(0.2)
        assert client.operation(op2).phase is CommitPhase.FAILED
        assert any(
            event["kind"] == "invalid-receipt" for event in client.malicious_events
        )

    def test_block_missing_client_entries_is_rejected(self, system):
        client = system.client(0)
        edge = system.edge()
        from repro.log.block import build_block
        from repro.log.entry import make_entry
        from repro.lsmerkle.codec import encode_put

        op = client.put_batch([("a", b"1"), ("b", b"2"), ("c", b"3")])
        # Intercept before the real edge answers: build a block that does NOT
        # contain the client's entries but is correctly signed by the edge.
        other_entries = tuple(
            make_entry(
                system.env.registry, system.client(1).node_id, i, encode_put("z", b"w"), 0.0
            )
            for i in range(3)
        )
        wrong_block = build_block(edge.node_id, 50, other_entries, 0.0)
        receipt = issue_phase_one_receipt(system.env.registry, edge.node_id, wrong_block, 0.0)
        response = AppendBatchResponse(
            edge=edge.node_id,
            operation_id=op,
            block_id=50,
            receipt=receipt,
            block=wrong_block,
        )
        system.env.send(edge.node_id, client.node_id, response)
        system.run_until_condition = None  # unused; silence linters
        system.env.run_until(system.env.now() + 0.001)
        record = client.operation(op)
        assert record.phase is CommitPhase.FAILED
        assert any(event["kind"] == "missing-entries" for event in client.malicious_events)

    def test_unknown_operation_in_response_is_ignored(self, system):
        client = system.client(0)
        from repro.common.identifiers import OperationId

        ghost_op = OperationId(client=client.node_id, sequence=999)
        op = client.put_batch([("a", b"1"), ("b", b"2"), ("c", b"3")])
        system.run_for(1.0)
        record = client.operation(op)
        receipt = record.receipt
        response = AppendBatchResponse(
            edge=system.edge().node_id,
            operation_id=ghost_op,
            block_id=record.block_id,
            receipt=receipt,
            block=None,
        )
        system.env.send(system.edge().node_id, client.node_id, response)
        system.run_for(0.2)
        assert ghost_op not in client.tracker


class TestBlockProofHandling:
    def test_foreign_or_invalid_proofs_are_ignored(self):
        # Use the wide-area topology so certification takes tens of
        # milliseconds and the operation is still Phase I when we inject.
        system = WedgeChainSystem.build(config=small_config(), num_clients=1, seed=117)
        client = system.client(0)
        op = client.put_batch([("a", b"1"), ("b", b"2"), ("c", b"3")])
        system.wait_for(client, op, CommitPhase.PHASE_ONE, max_time_s=10)
        assert client.operation(op).phase is CommitPhase.PHASE_ONE
        from repro.log.proofs import issue_block_proof

        bogus = issue_block_proof(
            system.env.registry,
            system.cloud.node_id,
            system.edge().node_id,
            client.operation(op).block_id or 0,
            "e" * 64,
            1.0,
        )
        # Digest mismatch with the receipt: treated as malicious evidence, the
        # operation must not be marked Phase II by this proof.  Deliver the
        # handler call directly so the genuine proof (still in flight) cannot
        # race with the injected one.
        client.on_message(system.cloud.node_id, BlockProofMessage(proof=bogus))
        assert client.operation(op).phase is not CommitPhase.PHASE_TWO
        assert any(
            event["kind"] == "certified-digest-mismatch"
            for event in client.malicious_events
        )
        assert client.stats["disputes_sent"] >= 1

    def test_early_proof_completes_operation_on_late_response(self, system):
        """If the proof overtakes the append response the client still reaches
        Phase II (ordering robustness)."""

        client = system.client(0)
        op = client.put_batch([("a", b"1"), ("b", b"2"), ("c", b"3")])
        system.run_for(5.0)
        assert client.operation(op).phase is CommitPhase.PHASE_TWO
        assert client._early_proofs  # the proof was cached along the way


class TestClientApi:
    def test_value_of_and_phase_of(self, system):
        client = system.client(0)
        op = client.put_batch([("k1", b"v1"), ("k2", b"v2"), ("k3", b"v3")])
        system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=10)
        assert client.phase_of(op) is CommitPhase.PHASE_TWO
        get_op = client.get("k2")
        system.wait_for(client, get_op, CommitPhase.PHASE_TWO, max_time_s=10)
        assert client.value_of(get_op) == b"v2"

    def test_single_put_and_add_helpers(self, system):
        client = system.client(0)
        put_op = client.put("solo-key", b"solo-value")
        add_op = client.add(b"solo-log-entry")
        system.run_for(1.0)
        # A single put/add fills only part of a block; the timeout flush
        # completes it.
        assert client.operation(put_op).phase.is_committed
        assert client.operation(add_op).phase.is_committed

    def test_stats_counters(self, system):
        client = system.client(0)
        client.put_batch([("a", b"1"), ("b", b"2"), ("c", b"3")])
        client.get("a")
        client.read(0)
        system.run_for(1.0)
        assert client.stats["writes_issued"] == 1
        assert client.stats["gets_issued"] == 1
        assert client.stats["reads_issued"] == 1
        assert client.stats["entries_sent"] == 3
