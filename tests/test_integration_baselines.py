"""Integration tests for the two baseline systems and cross-system comparisons."""

from __future__ import annotations

from repro.baselines.cloud_only import CloudOnlySystem
from repro.baselines.edge_baseline import EdgeBaselineSystem
from repro.common import LoggingConfig, LSMerkleConfig, SystemConfig
from repro.core.system import WedgeChainSystem
from repro.log.proofs import CommitPhase
from repro.sim.environment import local_environment


def small_config(block_size=5):
    return SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=block_size, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )


class TestCloudOnly:
    def test_put_and_get_roundtrip(self):
        system = CloudOnlySystem.build(
            config=small_config(), num_clients=1, env=local_environment(seed=81)
        )
        client = system.client()
        op = client.put_batch([(f"k{i}", f"v{i}".encode()) for i in range(5)])
        system.wait_for_all([(client, op)], max_time_s=30)
        assert client.tracker.get(op).phase is CommitPhase.PHASE_TWO

        get_op = client.get("k3")
        system.wait_for_all([(client, get_op)], max_time_s=30)
        assert client.value_of(get_op) == b"v3"

    def test_get_missing_key(self):
        system = CloudOnlySystem.build(
            config=small_config(), num_clients=1, env=local_environment(seed=82)
        )
        client = system.client()
        op = client.put_batch([(f"k{i}", b"v") for i in range(5)])
        system.wait_for_all([(client, op)], max_time_s=30)
        get_op = client.get("missing")
        system.wait_for_all([(client, get_op)], max_time_s=30)
        record = client.tracker.get(get_op)
        assert record.details["found"] is False

    def test_read_block_and_missing_block(self):
        system = CloudOnlySystem.build(
            config=small_config(), num_clients=1, env=local_environment(seed=83)
        )
        client = system.client()
        op = client.add_batch([f"e{i}".encode() for i in range(5)])
        system.wait_for_all([(client, op)], max_time_s=30)
        block_id = client.tracker.get(op).block_id
        read_op = client.read(block_id)
        system.wait_for_all([(client, read_op)], max_time_s=30)
        assert client.tracker.get(read_op).details["found"] is True

        missing = client.read(999)
        system.wait_for_all([(client, missing)], max_time_s=30)
        assert client.tracker.get(missing).phase is CommitPhase.FAILED

    def test_partial_batch_is_flushed_immediately(self):
        system = CloudOnlySystem.build(
            config=small_config(block_size=100),
            num_clients=1,
            env=local_environment(seed=84),
        )
        client = system.client()
        op = client.put_batch([("only", b"one")])
        system.wait_for_all([(client, op)], max_time_s=30)
        assert client.tracker.get(op).phase is CommitPhase.PHASE_TWO

    def test_index_compaction_keeps_data(self):
        system = CloudOnlySystem.build(
            config=small_config(), num_clients=1, env=local_environment(seed=85)
        )
        client = system.client()
        ops = []
        for block in range(8):
            ops.append(
                (client, client.put_batch([(f"key-{block}-{i}", b"v") for i in range(5)]))
            )
        system.wait_for_all(ops, max_time_s=60)
        assert system.cloud.index.levels_needing_merge() == ()
        get_op = client.get("key-0-0")
        system.wait_for_all([(client, get_op)], max_time_s=30)
        assert client.tracker.get(get_op).details["found"] is True


class TestEdgeBaseline:
    def test_write_commits_only_after_cloud_certification(self):
        system = EdgeBaselineSystem.build(config=small_config(), num_clients=1, seed=86)
        client = system.client()
        op = client.put_batch([(f"k{i}", b"v") for i in range(5)])
        system.wait_for_all([(client, op)], max_time_s=60)
        record = client.operation(op)
        assert record.phase is CommitPhase.PHASE_TWO
        # The acknowledgement had to wait for the wide-area certification.
        assert record.phase_one_latency > 0.030
        # Phase I and Phase II coincide (synchronous certification).
        assert record.phase_two_latency - record.phase_one_latency < 0.050

    def test_reads_are_served_from_the_edge_with_proofs(self):
        system = EdgeBaselineSystem.build(config=small_config(), num_clients=2, seed=87)
        writer, reader = system.clients
        op = writer.put_batch([(f"k{i}", f"v{i}".encode()) for i in range(5)])
        system.wait_for_all([(writer, op)], max_time_s=60)
        get_op = reader.get("k2")
        system.wait_for_all([(reader, get_op)], max_time_s=60)
        assert reader.value_of(get_op) == b"v2"
        assert reader.operation(get_op).phase is CommitPhase.PHASE_TWO

    def test_cloud_stores_certified_digests(self):
        system = EdgeBaselineSystem.build(config=small_config(), num_clients=1, seed=88)
        client = system.client()
        op = client.put_batch([(f"k{i}", b"v") for i in range(5)])
        system.wait_for_all([(client, op)], max_time_s=60)
        edge_id = system.edge().node_id
        assert system.cloud.certified_log_size(edge_id) == 1
        assert system.cloud.stats["certifications"] == 1


class TestCrossSystemComparisons:
    """The latency orderings that every figure of the paper relies on."""

    def _commit_latency(self, system_cls, seed):
        system = system_cls.build(config=small_config(), num_clients=1, seed=seed)
        client = system.clients[0]
        op = client.put_batch([(f"k{i}", b"v") for i in range(5)])
        if isinstance(system, WedgeChainSystem):
            system.wait_for(client, op, CommitPhase.PHASE_ONE, max_time_s=60)
        else:
            system.wait_for_all([(client, op)], max_time_s=60)
        return client.tracker.get(op).phase_one_latency

    def test_wedgechain_commits_at_edge_latency(self):
        wedge = self._commit_latency(WedgeChainSystem, seed=91)
        cloud_only = self._commit_latency(CloudOnlySystem, seed=92)
        edge_baseline = self._commit_latency(EdgeBaselineSystem, seed=93)
        assert wedge < cloud_only < edge_baseline

    def test_data_free_certification_saves_wan_bytes(self):
        """WedgeChain's WAN traffic per committed block is far smaller than the
        edge-baseline's, which ships every block across the WAN."""

        config = small_config(block_size=50)
        wedge = WedgeChainSystem.build(config=config, num_clients=1, seed=94)
        baseline = EdgeBaselineSystem.build(config=config, num_clients=1, seed=95)
        items = [(f"key-{i}", b"x" * 100) for i in range(50)]

        wedge_client = wedge.client()
        op = wedge_client.put_batch(items)
        wedge.wait_for(wedge_client, op, CommitPhase.PHASE_TWO, max_time_s=60)

        baseline_client = baseline.client()
        op = baseline_client.put_batch(items)
        baseline.wait_for_all([(baseline_client, op)], max_time_s=60)

        assert wedge.env.network.stats.wan_bytes * 5 < baseline.env.network.stats.wan_bytes
