"""The unified observability layer (PR 8): metrics registry, protocol-phase
tracing, exports, and the fleet health report.

The determinism contract is the backbone of these tests: observability adds
no CPU charges, no RNG draws, and never touches wire payloads, so (a) the
same seed produces a byte-identical metrics/trace snapshot, and (b) an
obs-enabled run reaches exactly the same protocol outcome as an obs-off run
of the same seed — including under injected faults.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

from repro.common.config import (
    ConfigurationError,
    LoggingConfig,
    ObservabilityConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.core.system import WedgeChainSystem
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs import Observability
from repro.obs.export import (
    diff_snapshots,
    load_recording,
    metrics_snapshot,
    prometheus_text,
    trace_jsonl,
    write_recording,
)
from repro.obs.metrics import MetricsRegistry, StatsDict
from repro.obs.report import fleet_health_report
from repro.obs.tracing import Tracer
from repro.sharding import ShardedWedgeSystem
from repro.sim.environment import local_environment

BLOCK = 4

OBS_ON = ObservabilityConfig(enabled=True)


def obs_config(**overrides) -> SystemConfig:
    base = dict(
        logging=LoggingConfig(block_size=BLOCK, block_timeout_s=0.02),
        observability=OBS_ON,
    )
    base.update(overrides)
    return SystemConfig.paper_default().with_overrides(**base)


def build_system(seed=11, observability=OBS_ON):
    return WedgeChainSystem.build(
        config=obs_config(observability=observability),
        num_clients=1,
        env=local_environment(seed=seed),
    )


def put_blocks(client, count, prefix="k"):
    """Issue *count* full blocks; returns ``(client, op)`` pairs for
    :meth:`WedgeChainSystem.wait_for_all`."""

    ops = []
    for block in range(count):
        items = [(f"{prefix}-{block}-{i}", b"v%d" % i) for i in range(BLOCK)]
        ops.append((client, client.put_batch(items)))
    return ops


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry("node")
        registry.counter("puts").inc()
        registry.counter("puts").inc(4)
        registry.gauge("queue").set(7)
        hist = registry.histogram("latency_s")
        for value in (0.004, 0.02, 0.02, 1.5):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["counters"]["puts"] == 5
        assert snap["gauges"]["queue"] == 7
        summary = snap["histograms"]["latency_s"]
        assert summary["count"] == 4
        assert summary["min"] == 0.004 and summary["max"] == 1.5
        assert summary["p50"] == 0.02

    def test_labels_key_separate_series(self):
        registry = MetricsRegistry("node")
        registry.counter("bytes", link="wan").inc(10)
        registry.counter("bytes", link="lan").inc(1)
        # Same (name, labels) → same instance; order of kwargs irrelevant.
        assert registry.counter("bytes", link="wan").value == 10
        snap = registry.snapshot()["counters"]
        assert snap['bytes{link="lan"}'] == 1
        assert snap['bytes{link="wan"}'] == 10

    def test_histogram_exact_percentiles(self):
        hist = MetricsRegistry("n").histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        # Nearest-rank over the raw values: index = floor(f * n), clamped.
        assert hist.percentile(0.50) == 51.0
        assert hist.percentile(0.99) == 100.0
        assert hist.percentile(1.0) == 100.0
        assert hist.percentile(0.0) == 1.0

    def test_stats_dict_mirrors_numeric_values(self):
        registry = MetricsRegistry("edge")
        stats = StatsDict(registry, {"entries_logged": 0})
        stats["entries_logged"] += 12
        stats.setdefault("degraded_entries", 0)
        stats["degraded_entries"] += 1
        stats.update(blocks_formed=3)
        counters = registry.snapshot()["counters"]
        assert counters["entries_logged"] == 12
        assert counters["degraded_entries"] == 1
        assert counters["blocks_formed"] == 3
        # Reads behave exactly like the plain dict they replace.
        assert stats["entries_logged"] == 12
        assert dict(stats)["blocks_formed"] == 3


class TestTracer:
    def test_span_nesting_and_links(self):
        clock = iter(float(i) for i in range(100))
        tracer = Tracer(lambda: next(clock))
        with tracer.span("parent", parent=None, node="e") as parent:
            with tracer.span("child") as child:
                assert child.trace_id == parent.trace_id
            tracer.event("fault.drop", src="a", dst="b")
        spans = tracer.spans
        assert [record.name for record in spans] == ["parent", "child"]
        assert spans[1].parent_id == spans[0].span_id
        assert tracer.events[0]["span"] == spans[0].span_id

    def test_sequential_ids_are_deterministic(self):
        tracer = Tracer(lambda: 0.0)
        with tracer.span("a", parent=None):
            pass
        with tracer.span("b", parent=None):
            pass
        assert [record.span_id for record in tracer.spans] == ["s000001", "s000002"]
        assert [record.context.trace_id for record in tracer.spans] == [
            "t000001",
            "t000002",
        ]


class TestObservabilityConfig:
    def test_enabled_requires_a_surface(self):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(enabled=True, trace=False, metrics=False)

    def test_registry_for_respects_metrics_flag(self):
        obs = Observability(
            ObservabilityConfig(enabled=True, metrics=False), clock=lambda: 0.0
        )
        assert obs.registry_for("edge") is None
        assert obs.tracer is not None


# ----------------------------------------------------------------------
# Default-off stance: zero footprint unless opted in
# ----------------------------------------------------------------------
class TestDefaultOff:
    def test_default_run_carries_no_observability(self):
        system = build_system(observability=ObservabilityConfig())
        client = system.client(0)
        ops = put_blocks(client, 2)
        assert system.wait_for_all(ops)
        env = system.env
        assert env.obs is None
        assert env.network._obs is None
        # Stats stay plain dicts — not registry-mirroring shims.
        assert type(system.edge(0).stats) is dict
        assert type(system.cloud.stats) is dict
        assert "repro.obs" not in sys.modules or True  # imported by this test file

    def test_obs_module_not_imported_by_default_deployment(self):
        # Run in a subprocess so this test file's own imports don't pollute
        # the check: a paper-default build must never import repro.obs.
        code = (
            "import sys\n"
            "from repro.core.system import WedgeChainSystem\n"
            "system = WedgeChainSystem.build(num_clients=1)\n"
            "client = system.client(0)\n"
            "op = client.put_batch([(f'k{i}', b'v') for i in range(4)])\n"
            "system.wait_for_all([(client, op)])\n"
            "assert not any(m.startswith('repro.obs') for m in sys.modules), (\n"
            "    sorted(m for m in sys.modules if m.startswith('repro.obs')))\n"
            "print('clean')\n"
        )
        repo_src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
        completed = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=120,
            env={"PYTHONPATH": repo_src, "PYTHONHASHSEED": "0", "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "clean" in completed.stdout


# ----------------------------------------------------------------------
# End-to-end traces: the Phase I → Phase II causal chain
# ----------------------------------------------------------------------
class TestProtocolTraces:
    def test_certificate_spans_link_to_phase1(self):
        system = build_system(seed=11)
        client = system.client(0)
        ops = put_blocks(client, 3)
        assert system.wait_for_all(ops)
        tracer = system.env.obs.tracer
        phase1 = {record.span_id for record in tracer.spans_named("phase1.commit")}
        absorbs = tracer.spans_named("certify.absorb")
        assert phase1 and absorbs
        for span in absorbs:
            # The acceptance linkage: every Phase II certificate absorption
            # names the Phase I commit span of the block it certifies.
            assert span.links, f"absorb span {span.span_id} carries no links"
            assert all(link.span_id in phase1 for link in span.links)
            # And it parents off the cloud's certify span via the delivery
            # sidecar (which itself parents off certify.dispatch).
            parent = tracer.find(span.parent_id)
            assert parent is not None and parent.name == "certify.cloud"
            dispatch = tracer.find(parent.parent_id)
            assert dispatch is not None and dispatch.name == "certify.dispatch"

    def test_certify_latency_histogram_observed(self):
        system = build_system(seed=11)
        client = system.client(0)
        assert system.wait_for_all(put_blocks(client, 3))
        registry = system.env.obs.registry_for(str(system.edge(0).node_id))
        summary = registry.histogram("certify_latency_s").summary()
        assert summary["count"] == 3
        assert summary["min"] > 0.0

    def test_network_traffic_metrics(self):
        system = build_system(seed=11)
        client = system.client(0)
        assert system.wait_for_all(put_blocks(client, 2))
        network = system.env.obs.registry_for("network")
        counters = network.snapshot()["counters"]
        certify_bytes = [
            value
            for name, value in counters.items()
            if name.startswith("net_bytes{") and "BlockCertifyRequest" in name
        ]
        assert certify_bytes and certify_bytes[0] > 0

    def test_fault_events_carry_active_span(self):
        system = build_system(seed=110)
        client = system.client(0)
        plan = FaultPlan(seed=110, name="obs-faults").with_rule(
            FaultRule(
                "delay",
                message_type="BlockCertifyRequest",
                delay_s=0.5,
                until_s=5.0,
            )
        )
        FaultInjector(system.env, plan).install()
        put_blocks(client, 3)
        system.run_for(30.0)
        tracer = system.env.obs.tracer
        delays = [e for e in tracer.events if e["name"] == "fault.delay"]
        assert delays, "the delay rule never fired"
        dispatch_ids = {
            record.span_id for record in tracer.spans_named("certify.dispatch")
        }
        for event in delays:
            # The injector's send hook runs while the edge's dispatch span
            # is active, so the fault that delayed a certification is linked
            # to the very span it perturbed.
            assert event["span"] in dispatch_ids

    def test_sharded_handoff_and_txn_spans(self):
        system = ShardedWedgeSystem.build(
            config=obs_config(
                num_edge_nodes=2,
                sharding=ShardingConfig(num_shards=4),
            ),
            num_clients=1,
            env=local_environment(seed=17),
        )
        client = system.clients[0]
        ops = [(client, client.put(f"w-{i:04d}", b"v%d" % i)) for i in range(16)]
        assert system.wait_for_all(ops)
        txn_id = client.txn_put(
            [("txn-a-key", b"1"), ("txn-b-key", b"2"), ("txn-c-key", b"3")]
        )
        system.run_for(20.0)
        assert client.txns.state_of(txn_id) == "committed"
        source = system.edges[0]
        shard_id = max(source.shard_entry_counts, key=source.shard_entry_counts.get)
        system.rebalance_shard(shard_id, system.edges[1].node_id)
        system.run_for(30.0)
        tracer = system.env.obs.tracer
        names = {record.name for record in tracer.spans}
        assert {"txn.begin", "txn.decide"} <= names
        assert {"handoff.drain", "handoff.offer", "handoff.transfer"} <= names
        # The decide span parents off its transaction's begin span, and the
        # handoff offer/transfer spans parent off their shard's drain span.
        begins = {r.span_id for r in tracer.spans_named("txn.begin")}
        for record in tracer.spans_named("txn.decide"):
            assert record.parent_id in begins
        drains = {r.span_id for r in tracer.spans_named("handoff.drain")}
        for name in ("handoff.offer", "handoff.transfer"):
            for record in tracer.spans_named(name):
                assert record.parent_id in drains


# ----------------------------------------------------------------------
# Determinism: byte-identical exports, identical protocol outcomes
# ----------------------------------------------------------------------
def _chaos_run(observability):
    system = WedgeChainSystem.build(
        config=obs_config(observability=observability),
        num_clients=1,
        env=local_environment(seed=110),
    )
    client = system.client(0)
    plan = (
        FaultPlan(seed=110, name="obs-determinism")
        .with_rule(FaultRule("drop", probability=0.4, until_s=2.0))
        .with_rule(
            FaultRule("duplicate", probability=0.3, until_s=2.0, spread_s=0.1)
        )
    )
    injector = FaultInjector(system.env, plan).install()
    stop = system.env.schedule_periodic(
        0.5,
        lambda: system.edge(0).retry_overdue_certifications(timeout_s=0.5),
        label="obs:pump",
    )
    put_blocks(client, 5)
    system.run_for(25.0)
    stop()
    return system, injector


class TestDeterminism:
    def test_same_seed_byte_identical_exports(self):
        first, _ = _chaos_run(OBS_ON)
        second, _ = _chaos_run(OBS_ON)
        assert first.env.obs.trace_jsonl() == second.env.obs.trace_jsonl()
        assert first.env.obs.prometheus_text() == second.env.obs.prometheus_text()
        assert first.env.obs.metrics_snapshot() == second.env.obs.metrics_snapshot()

    def test_obs_on_matches_obs_off_outcome(self):
        on_system, on_injector = _chaos_run(OBS_ON)
        off_system, off_injector = _chaos_run(ObservabilityConfig())
        # Observability must be a pure observer: same fault trace, same
        # protocol outcome, same network accounting, to the byte.
        assert tuple(on_injector.trace) == tuple(off_injector.trace)
        assert on_injector.rule_fire_counts() == off_injector.rule_fire_counts()
        assert (
            dict(on_system.edge(0).stats) == dict(off_system.edge(0).stats)
        )
        assert dict(on_system.cloud.stats) == dict(off_system.cloud.stats)
        assert (
            on_system.env.network.stats.dropped_sends
            == off_system.env.network.stats.dropped_sends
        )
        assert (
            on_system.env.network.stats.bytes_sent
            == off_system.env.network.stats.bytes_sent
        )
        assert (
            on_system.env.network.stats.wan_bytes
            == off_system.env.network.stats.wan_bytes
        )


# ----------------------------------------------------------------------
# Export formats and the fleet health report
# ----------------------------------------------------------------------
class TestExports:
    def test_recording_round_trip(self, tmp_path):
        system = build_system(seed=11)
        client = system.client(0)
        assert system.wait_for_all(put_blocks(client, 2))
        path = tmp_path / "recording.json"
        write_recording(system.env.obs, str(path))
        recording = load_recording(str(path))
        assert recording["schema"] == 1
        assert recording["metrics"] == metrics_snapshot(system.env.obs)
        names = {r["name"] for r in recording["trace"] if r["kind"] == "span"}
        assert "phase1.commit" in names and "certify.absorb" in names

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "metrics": {}, "trace": []}))
        with pytest.raises(ValueError):
            load_recording(str(path))

    def test_trace_jsonl_is_sorted_compact_json(self):
        system = build_system(seed=11)
        client = system.client(0)
        assert system.wait_for_all(put_blocks(client, 1))
        lines = system.env.obs.trace_jsonl().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert json.dumps(record, sort_keys=True, separators=(",", ":")) == line

    def test_diff_snapshots(self):
        system = build_system(seed=11)
        client = system.client(0)
        assert system.wait_for_all(put_blocks(client, 1))
        before = metrics_snapshot(system.env.obs)
        assert system.wait_for_all(put_blocks(client, 1, prefix="second"))
        after = metrics_snapshot(system.env.obs)
        delta = diff_snapshots(before, after)
        edge = str(system.edge(0).node_id)
        assert delta[edge]["counters"]["entries_logged"] == BLOCK

    def test_fleet_health_report_renders(self):
        system = build_system(seed=11)
        client = system.client(0)
        assert system.wait_for_all(put_blocks(client, 3))
        report = fleet_health_report(system.env.obs.recording())
        assert "fleet health report" in report
        assert "Throughput by node" in report
        assert "entries_logged=12" in report
        assert "WAN bytes by message type" in report
        assert "Trace digest" in report
        assert "none — every partition at full durability" in report

    def test_report_cli_runs_demo_and_recording(self, tmp_path):
        repo_src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
        env = {"PYTHONPATH": repo_src, "PYTHONHASHSEED": "0", "PATH": "/usr/bin:/bin"}
        demo = subprocess.run(
            [sys.executable, "-m", "repro.obs.report"],
            capture_output=True,
            text=True,
            timeout=240,
            env=env,
        )
        assert demo.returncode == 0, demo.stderr[-2000:]
        assert "fleet health report" in demo.stdout

        system = build_system(seed=11)
        client = system.client(0)
        assert system.wait_for_all(put_blocks(client, 2))
        path = tmp_path / "recording.json"
        write_recording(system.env.obs, str(path))
        from_file = subprocess.run(
            [sys.executable, "-m", "repro.obs.report", str(path)],
            capture_output=True,
            text=True,
            timeout=240,
            env=env,
        )
        assert from_file.returncode == 0, from_file.stderr[-2000:]
        assert "fleet health report" in from_file.stdout

    def test_durable_storage_metrics_surface_in_report(self, tmp_path):
        from repro.common.config import StorageConfig

        storage = StorageConfig(backend="disk", root_dir=str(tmp_path), fsync="always")
        system = WedgeChainSystem.build(
            config=obs_config(storage=storage),
            num_clients=1,
            env=local_environment(seed=31),
        )
        client = system.client(0)
        edge = system.edge(0)
        assert system.wait_for_all(put_blocks(client, 3))
        # The partition store's counters are registry-mirrored under the
        # ``storage_`` prefix; a crash/restart exercises the recovery
        # histogram as well.
        edge.on_crash()
        edge.on_restart()
        snap = metrics_snapshot(system.env.obs)[str(edge.node_id)]
        storage_counters = {
            name for name in snap["counters"] if name.startswith("storage_")
        }
        assert "storage_blocks_appended" in storage_counters
        assert snap["histograms"]["storage_recovery_blocks"]["count"] >= 1
        report = fleet_health_report(system.env.obs.recording())
        assert "Storage (durable log)" in report
        assert "storage_blocks_appended" in report
