"""Property-based tests (hypothesis) on the core data structures and codecs.

These complement the example-based unit tests by checking invariants over a
broad input space: canonical encoding stability, put-codec roundtrips, block
digest sensitivity, commit-tracker monotonicity, and fence partitioning.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.encoding import canonical_encode
from repro.common.identifiers import OperationId, OperationKind, client_id, edge_id
from repro.core.commit import CommitTracker
from repro.crypto.hashing import digest_value
from repro.crypto.signatures import KeyRegistry
from repro.log.block import build_block, compute_block_digest
from repro.log.entry import EntryBody, LogEntry
from repro.log.proofs import CommitPhase
from repro.lsm.compaction import newest_versions
from repro.lsm.records import KVRecord
from repro.lsmerkle.codec import decode_put, encode_put, is_put_payload

ALICE = client_id("alice")
EDGE = edge_id("edge-0")

# Keys must not contain NUL (the codec rejects it explicitly).
key_strategy = st.text(
    alphabet=st.characters(blacklist_characters="\x00", blacklist_categories=("Cs",)),
    min_size=0,
    max_size=40,
)
value_strategy = st.binary(min_size=0, max_size=200)


class TestCodecProperties:
    @settings(max_examples=100, deadline=None)
    @given(key_strategy, value_strategy)
    def test_put_roundtrip(self, key, value):
        payload = encode_put(key, value)
        assert is_put_payload(payload)
        assert decode_put(payload) == (key, value)

    @settings(max_examples=60, deadline=None)
    @given(key_strategy, value_strategy, value_strategy)
    def test_different_values_give_different_payloads(self, key, a, b):
        if a != b:
            assert encode_put(key, a) != encode_put(key, b)


class TestEncodingProperties:
    scalar = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(max_size=30),
        st.binary(max_size=30),
    )
    tree = st.recursive(
        scalar,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=8), children, max_size=4),
        ),
        max_leaves=20,
    )

    @settings(max_examples=100, deadline=None)
    @given(tree)
    def test_encoding_is_deterministic(self, value):
        assert canonical_encode(value) == canonical_encode(value)

    @settings(max_examples=100, deadline=None)
    @given(tree)
    def test_digest_is_stable_and_hex(self, value):
        digest = digest_value(value)
        assert digest == digest_value(value)
        assert len(digest) == 64


class TestBlockDigestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.binary(min_size=0, max_size=60), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_digest_depends_on_every_entry(self, payloads, block_id):
        entries = tuple(
            LogEntry(
                body=EntryBody(
                    producer=ALICE, sequence=index, payload=payload, produced_at=0.0
                ),
                signature=None,
            )
            for index, payload in enumerate(payloads)
        )
        block = build_block(EDGE, block_id, entries, created_at=0.0)
        baseline = compute_block_digest(EDGE, block_id, entries)
        assert block.digest() == baseline
        # Tampering with any single entry changes the digest.
        for index in range(len(entries)):
            tampered_entry = LogEntry(
                body=EntryBody(
                    producer=ALICE,
                    sequence=entries[index].sequence,
                    payload=entries[index].payload + b"!",
                    produced_at=0.0,
                ),
                signature=None,
            )
            tampered = entries[:index] + (tampered_entry,) + entries[index + 1 :]
            assert compute_block_digest(EDGE, block_id, tampered) != baseline

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_digest_depends_on_block_id(self, block_id):
        entries = (
            LogEntry(
                body=EntryBody(producer=ALICE, sequence=0, payload=b"x", produced_at=0.0),
                signature=None,
            ),
        )
        assert compute_block_digest(EDGE, block_id, entries) != compute_block_digest(
            EDGE, block_id + 1, entries
        )


class TestSignatureProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=100), st.binary(min_size=0, max_size=100))
    def test_hmac_signatures_bind_to_message(self, message, other):
        registry = KeyRegistry("hmac")
        registry.register(ALICE)
        signature = registry.sign(ALICE, message)
        assert registry.verify(signature, message)
        if other != message:
            assert not registry.verify(signature, other)


class TestCommitTrackerProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from(["p1", "p2", "fail"]), min_size=0, max_size=12))
    def test_phase_never_regresses(self, events):
        """Whatever order phase events arrive in, the phase never moves backwards
        (FAILED and PHASE_TWO are terminal)."""

        rank = {
            CommitPhase.PENDING: 0,
            CommitPhase.PHASE_ONE: 1,
            CommitPhase.PHASE_TWO: 2,
            CommitPhase.FAILED: 3,
        }
        tracker = CommitTracker()
        op = OperationId(ALICE, 0)
        tracker.register(op, OperationKind.PUT, 0.0)
        previous = tracker.get(op).phase
        terminal = False
        for time, event in enumerate(events, start=1):
            if event == "p1":
                tracker.mark_phase_one(op, float(time))
            elif event == "p2":
                tracker.mark_phase_two(op, float(time))
            else:
                tracker.mark_failed(op, float(time), "injected")
            current = tracker.get(op).phase
            if terminal:
                assert current == previous
            else:
                if previous is CommitPhase.PHASE_TWO:
                    assert current in (CommitPhase.PHASE_TWO,)
                assert rank[current] >= 0  # always a valid phase
            if current in (CommitPhase.FAILED,):
                terminal = True
            previous = current


class TestNewestVersionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcde"), st.integers(0, 1000)),
            min_size=0,
            max_size=60,
        )
    )
    def test_newest_versions_matches_reference_implementation(self, pairs):
        records = [KVRecord(key=k, sequence=s, value=b"") for k, s in pairs]
        reference: dict[str, int] = {}
        for key, sequence in pairs:
            reference[key] = max(reference.get(key, -1), sequence)
        survivors = {record.key: record.sequence for record in newest_versions(records)}
        assert survivors == reference
