"""Unit tests for the logging layer: entries, blocks, buffer, log, proofs."""

from __future__ import annotations

import pytest

from repro.common import BlockNotFoundError, InvalidMessageError, ProtocolError
from repro.common.identifiers import client_id, edge_id
from repro.log.block import BlockSummary, build_block, compute_block_digest
from repro.log.buffer import BlockBuffer
from repro.log.entry import make_entry, require_valid_entry
from repro.log.proofs import (
    CommitPhase,
    issue_block_proof,
    issue_phase_one_receipt,
)
from repro.log.wedge_log import WedgeLog
from tests.conftest import make_signed_entries

ALICE = client_id("alice")
BOB = client_id("bob")
EDGE = edge_id("edge-0")
CLOUD_NAME = "cloud-0"


class TestLogEntry:
    def test_entry_signature_verifies(self, registry):
        entry = make_entry(registry, ALICE, 0, b"payload", 1.0)
        assert entry.verify(registry)
        require_valid_entry(registry, entry)

    def test_tampered_payload_fails_verification(self, registry):
        entry = make_entry(registry, ALICE, 0, b"payload", 1.0)
        from dataclasses import replace

        tampered = type(entry)(
            body=replace(entry.body, payload=b"other"), signature=entry.signature
        )
        assert not tampered.verify(registry)
        with pytest.raises(InvalidMessageError):
            require_valid_entry(registry, tampered)

    def test_unsigned_entry_fails(self, registry):
        entry = make_entry(registry, ALICE, 0, b"payload", 1.0)
        unsigned = type(entry)(body=entry.body, signature=None)
        assert not unsigned.verify(registry)

    def test_wire_size_tracks_payload(self, registry):
        small = make_entry(registry, ALICE, 0, b"x", 1.0)
        large = make_entry(registry, ALICE, 1, b"x" * 1000, 1.0)
        assert large.wire_size > small.wire_size + 900


class TestBlock:
    def test_digest_is_deterministic_and_content_sensitive(self, registry):
        entries = make_signed_entries(registry, ALICE, 3)
        block_a = build_block(EDGE, 0, entries, 1.0)
        block_b = build_block(EDGE, 0, entries, 5.0)  # created_at not in digest
        assert block_a.digest() == block_b.digest()
        different = build_block(EDGE, 1, entries, 1.0)
        assert block_a.digest() != different.digest()

    def test_digest_matches_standalone_function(self, sample_block):
        assert sample_block.digest() == compute_block_digest(
            sample_block.edge, sample_block.block_id, sample_block.entries
        )

    def test_contains_entry(self, registry):
        entries = make_signed_entries(registry, ALICE, 3)
        block = build_block(EDGE, 0, entries, 1.0)
        assert block.contains_entry(ALICE, 1)
        assert not block.contains_entry(ALICE, 99)
        assert not block.contains_entry(BOB, 1)

    def test_entries_for_and_producers(self, registry):
        entries = make_signed_entries(registry, ALICE, 2) + make_signed_entries(
            registry, BOB, 3, start=10
        )
        block = build_block(EDGE, 0, entries, 1.0)
        assert len(block.entries_for(ALICE)) == 2
        assert len(block.entries_for(BOB)) == 3
        assert block.producers() == frozenset({ALICE, BOB})

    def test_summary_carries_digest(self, sample_block):
        summary = BlockSummary.of(sample_block, certified_at=9.0)
        assert summary.digest == sample_block.digest()
        assert summary.num_entries == sample_block.num_entries
        assert summary.certified_at == 9.0


class TestBlockBuffer:
    def test_emits_batch_when_full(self, registry):
        buffer = BlockBuffer(block_size=3)
        entries = make_signed_entries(registry, ALICE, 3)
        assert buffer.append(entries[0], now=0.0) is None
        assert buffer.append(entries[1], now=0.0) is None
        batch = buffer.append(entries[2], now=0.0)
        assert batch is not None
        assert len(batch.log_entries) == 3
        assert buffer.is_empty

    def test_flush_returns_partial_batch(self, registry):
        buffer = BlockBuffer(block_size=10)
        entries = make_signed_entries(registry, ALICE, 2)
        for entry in entries:
            buffer.append(entry, now=1.0)
        batch = buffer.flush()
        assert batch is not None and len(batch.log_entries) == 2
        assert buffer.flush() is None

    def test_tracks_requesters(self, registry):
        from repro.common.identifiers import OperationId

        buffer = BlockBuffer(block_size=2)
        entries = make_signed_entries(registry, ALICE, 2)
        buffer.append(entries[0], now=0.0, operation_id=OperationId(ALICE, 0), requester=ALICE)
        batch = buffer.append(
            entries[1], now=0.0, operation_id=OperationId(BOB, 0), requester=BOB
        )
        assert set(batch.requesters) == {ALICE, BOB}

    def test_oldest_age(self, registry):
        buffer = BlockBuffer(block_size=10)
        assert buffer.oldest_age(now=5.0) is None
        buffer.append(make_signed_entries(registry, ALICE, 1)[0], now=2.0)
        assert buffer.oldest_age(now=5.0) == pytest.approx(3.0)

    def test_rejects_non_positive_block_size(self):
        with pytest.raises(Exception):
            BlockBuffer(block_size=0)

    def test_total_buffered_is_monotonic(self, registry):
        buffer = BlockBuffer(block_size=2)
        for entry in make_signed_entries(registry, ALICE, 4):
            buffer.append(entry, now=0.0)
        assert buffer.total_buffered == 4


class TestWedgeLog:
    def test_monotonic_block_ids(self):
        log = WedgeLog(EDGE)
        assert log.allocate_block_id() == 0
        assert log.allocate_block_id() == 1
        assert log.next_block_id == 2

    def test_append_and_get(self, registry):
        log = WedgeLog(EDGE)
        entries = make_signed_entries(registry, ALICE, 2)
        block = build_block(EDGE, log.allocate_block_id(), entries, 1.0)
        log.append(block)
        assert log.block(0) is block
        assert 0 in log
        assert len(log) == 1
        assert log.total_entries() == 2

    def test_get_missing_block_raises(self):
        log = WedgeLog(EDGE)
        with pytest.raises(BlockNotFoundError):
            log.get(5)
        assert log.try_get(5) is None

    def test_rejects_foreign_blocks(self, registry):
        log = WedgeLog(EDGE)
        entries = make_signed_entries(registry, ALICE, 1)
        foreign = build_block(edge_id("edge-1"), 0, entries, 1.0)
        with pytest.raises(ProtocolError):
            log.append(foreign)

    def test_rejects_duplicate_block_ids(self, registry, sample_block):
        log = WedgeLog(EDGE)
        log.append(sample_block)
        duplicate = build_block(EDGE, sample_block.block_id, sample_block.entries, 2.0)
        with pytest.raises(ProtocolError):
            log.append(duplicate)

    def test_attach_proof_and_certification_tracking(self, registry, sample_block):
        from repro.common.identifiers import cloud_id

        log = WedgeLog(EDGE)
        log.append(sample_block)
        assert log.uncertified_block_ids() == (0,)
        proof = issue_block_proof(
            registry,
            cloud_id(),
            EDGE,
            sample_block.block_id,
            sample_block.digest(),
            certified_at=2.0,
        )
        log.attach_proof(proof)
        assert log.certified_count() == 1
        assert log.uncertified_block_ids() == ()
        assert log.proof_for(0) is proof

    def test_attach_proof_with_wrong_digest_rejected(self, registry, sample_block):
        from repro.common.identifiers import cloud_id

        log = WedgeLog(EDGE)
        log.append(sample_block)
        bad_proof = issue_block_proof(
            registry, cloud_id(), EDGE, sample_block.block_id, "0" * 64, certified_at=2.0
        )
        with pytest.raises(ProtocolError):
            log.attach_proof(bad_proof)

    def test_summaries_in_block_order(self, registry):
        log = WedgeLog(EDGE)
        for index in range(3):
            entries = make_signed_entries(registry, ALICE, 1, start=index)
            log.append(build_block(EDGE, log.allocate_block_id(), entries, float(index)))
        summaries = log.summaries()
        assert [summary.block_id for summary in summaries] == [0, 1, 2]


class TestProofs:
    def test_phase_one_receipt_roundtrip(self, registry, sample_block):
        receipt = issue_phase_one_receipt(registry, EDGE, sample_block, issued_at=1.0)
        assert receipt.verify(registry)
        assert receipt.matches_block(sample_block)

    def test_receipt_detects_block_substitution(self, registry, sample_block):
        receipt = issue_phase_one_receipt(registry, EDGE, sample_block, issued_at=1.0)
        other_entries = make_signed_entries(registry, BOB, 5)
        other_block = build_block(EDGE, sample_block.block_id, other_entries, 1.0)
        assert not receipt.matches_block(other_block)

    def test_block_proof_roundtrip(self, registry, sample_block):
        from repro.common.identifiers import cloud_id

        proof = issue_block_proof(
            registry, cloud_id(), EDGE, sample_block.block_id, sample_block.digest(), 3.0
        )
        assert proof.verify(registry)
        assert proof.certifies(sample_block)

    def test_block_proof_wrong_signer_rejected(self, registry, sample_block):
        from repro.common.identifiers import cloud_id
        from repro.crypto.signatures import Signature

        proof = issue_block_proof(
            registry, cloud_id(), EDGE, sample_block.block_id, sample_block.digest(), 3.0
        )
        forged = type(proof)(
            statement=proof.statement,
            signature=Signature(signer=EDGE, scheme=proof.signature.scheme, value=proof.signature.value),
        )
        assert not forged.verify(registry)

    def test_commit_phase_semantics(self):
        assert CommitPhase.PHASE_ONE.is_committed
        assert CommitPhase.PHASE_TWO.is_committed
        assert not CommitPhase.PENDING.is_committed
        assert not CommitPhase.FAILED.is_committed
