"""Partitioners, shard map views, and the shard router."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.identifiers import cloud_id, edge_id
from repro.crypto.signatures import KeyRegistry
from repro.sharding import (
    HashRingPartitioner,
    RangePartitioner,
    ShardMapView,
    ShardRegistry,
    ShardRouter,
    build_shard_map_message,
    make_partitioner,
    verify_shard_map,
)
from repro.workloads.generator import format_key

CLOUD = cloud_id("cloud-0")
EDGES = [edge_id(f"edge-{i}") for i in range(4)]


@pytest.fixture
def registry() -> KeyRegistry:
    registry = KeyRegistry("hmac")
    registry.register(CLOUD)
    for edge in EDGES:
        registry.register(edge)
    return registry


def signed_map(registry, version=1, num_shards=8, owners=None):
    assignments = owners or {
        shard: EDGES[shard % len(EDGES)] for shard in range(num_shards)
    }
    return build_shard_map_message(
        registry, CLOUD, version, num_shards, "hash-ring", assignments, float(version)
    )


class TestPartitioners:
    def test_hash_ring_is_deterministic_and_total(self):
        partitioner = HashRingPartitioner(num_shards=8)
        for index in range(500):
            key = format_key(index)
            shard = partitioner.shard_of(key)
            assert 0 <= shard < 8
            assert shard == partitioner.shard_of(key)

    def test_hash_ring_spreads_keys_roughly_evenly(self):
        partitioner = HashRingPartitioner(num_shards=8)
        counts = [0] * 8
        for index in range(4000):
            counts[partitioner.shard_of(format_key(index))] += 1
        # Every shard owns a meaningful slice (no empty or dominant shard).
        assert min(counts) > 4000 / 8 / 4
        assert max(counts) < 4000 / 8 * 3

    def test_range_partitioner_is_ordered_and_balanced(self):
        partitioner = RangePartitioner(num_shards=4, key_space=1000)
        shards = [partitioner.shard_of(format_key(index)) for index in range(1000)]
        # Contiguous, non-decreasing shard assignment over the key order.
        assert shards == sorted(shards)
        assert set(shards) == {0, 1, 2, 3}
        for shard in range(4):
            assert shards.count(shard) == 250

    def test_range_partitioner_concentrates_zipf_hotspots(self):
        # Low (popular) key indices all land in shard 0: the hotspot case
        # rebalancing exists for.
        partitioner = RangePartitioner(num_shards=4, key_space=100_000)
        assert {partitioner.shard_of(format_key(i)) for i in range(100)} == {0}

    def test_make_partitioner_registry(self):
        assert isinstance(make_partitioner("hash-ring", 4), HashRingPartitioner)
        assert isinstance(make_partitioner("range", 4, key_space=100), RangePartitioner)
        with pytest.raises(ConfigurationError):
            make_partitioner("nope", 4)
        with pytest.raises(ConfigurationError):
            HashRingPartitioner(num_shards=0)


class TestShardMap:
    def test_signed_map_verifies_and_views_update(self, registry):
        message = signed_map(registry)
        assert verify_shard_map(registry, message, cloud=CLOUD)
        view = ShardMapView(cloud=CLOUD)
        assert view.update(registry, message)
        assert view.version == 1
        assert view.owner_of(0) == EDGES[0]
        assert view.shards_owned_by(EDGES[1]) == (1, 5)

    def test_stale_or_foreign_map_rejected(self, registry):
        view = ShardMapView(cloud=CLOUD)
        assert view.update(registry, signed_map(registry, version=3))
        # Stale (lower version) maps never regress the view.
        assert not view.update(registry, signed_map(registry, version=2))
        assert view.version == 3
        assert view.rejected == 1
        # Same-version replays are ignored but not counted as suspicious.
        assert not view.update(registry, signed_map(registry, version=3))
        assert view.rejected == 1
        # A map signed by a non-cloud node never passes.
        imposter = signed_map(registry, version=9)
        forged = type(imposter)(
            statement=imposter.statement,
            signature=registry.sign(EDGES[0], imposter.statement),
        )
        assert not view.update(registry, forged)
        assert view.version == 3

    def test_registry_history_answers_owner_at(self, registry):
        shard_registry = ShardRegistry(
            num_shards=2,
            partitioner="hash-ring",
            assignments={0: EDGES[0], 1: EDGES[1]},
            now=0.0,
        )
        assert shard_registry.owner_at(0, 5.0) == EDGES[0]
        version = shard_registry.reassign(0, EDGES[2], now=10.0)
        assert version == 2
        assert shard_registry.owner_of(0) == EDGES[2]
        # History: before the move the old owner, after it the new one.
        assert shard_registry.owner_at(0, 9.999) == EDGES[0]
        assert shard_registry.owner_at(0, 10.0) == EDGES[2]
        assert shard_registry.owner_at(1, 10.0) == EDGES[1]


class TestShardRouter:
    def test_routes_through_view_with_fallback(self, registry):
        view = ShardMapView(cloud=CLOUD)
        partitioner = HashRingPartitioner(num_shards=8)
        router = ShardRouter(partitioner, view, default_owner=EDGES[0])
        # Before any map arrives every route falls back to the default.
        route = router.route(format_key(1))
        assert route.owner == EDGES[0]
        view.update(registry, signed_map(registry))
        route = router.route(format_key(1))
        assert route.owner == EDGES[route.shard_id % len(EDGES)]

    def test_split_batch_groups_by_owner_and_keeps_order(self, registry):
        view = ShardMapView(cloud=CLOUD)
        view.update(registry, signed_map(registry))
        partitioner = HashRingPartitioner(num_shards=8)
        router = ShardRouter(partitioner, view)
        items = [(format_key(index), b"v%d" % index) for index in range(64)]
        groups = router.split_batch(items)
        regrouped = [item for group in groups.values() for item in group]
        assert sorted(regrouped) == sorted(items)
        for (shard_id, owner), group in groups.items():
            assert owner == view.owner_of(shard_id)
            keys = [key for key, _ in group]
            # Within a group the client's write order is preserved.
            assert keys == [k for k, _ in items if partitioner.shard_of(k) == shard_id]
