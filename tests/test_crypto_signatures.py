"""Unit tests for the signature schemes, key registry, and envelopes."""

from __future__ import annotations

import pytest

from repro.common import InvalidMessageError, SignatureError, UnknownSignerError
from repro.common.identifiers import client_id, edge_id
from repro.crypto.envelopes import SignedChannel, seal_envelope, verify_envelope
from repro.crypto.signatures import (
    HmacSignatureScheme,
    KeyRegistry,
    SchnorrSignatureScheme,
    Signature,
    get_scheme,
)


class TestHmacScheme:
    def test_sign_and_verify_through_registry(self):
        registry = KeyRegistry("hmac")
        alice = client_id("alice")
        registry.register(alice)
        signature = registry.sign(alice, {"op": "add", "value": 1})
        assert registry.verify(signature, {"op": "add", "value": 1})

    def test_tampered_message_fails(self):
        registry = KeyRegistry("hmac")
        alice = client_id("alice")
        registry.register(alice)
        signature = registry.sign(alice, "original")
        assert not registry.verify(signature, "tampered")

    def test_direct_verify_without_registry_rejected(self):
        scheme = HmacSignatureScheme()
        keypair = scheme.generate_keypair(client_id("alice"))
        signature = scheme.sign(keypair, "message")
        with pytest.raises(SignatureError):
            scheme.verify(keypair.public_key, signature, "message")

    def test_wrong_scheme_keypair_rejected(self):
        hmac_scheme = HmacSignatureScheme()
        schnorr = SchnorrSignatureScheme()
        keypair = schnorr.generate_keypair(client_id("alice"))
        with pytest.raises(SignatureError):
            hmac_scheme.sign(keypair, "message")


class TestSchnorrScheme:
    def test_sign_and_verify_with_public_key_only(self):
        scheme = SchnorrSignatureScheme()
        keypair = scheme.generate_keypair(client_id("alice"))
        signature = scheme.sign(keypair, {"op": "put"})
        assert scheme.verify(keypair.public_key, signature, {"op": "put"})

    def test_tampered_message_fails(self):
        scheme = SchnorrSignatureScheme()
        keypair = scheme.generate_keypair(client_id("alice"))
        signature = scheme.sign(keypair, "original")
        assert not scheme.verify(keypair.public_key, signature, "tampered")

    def test_wrong_public_key_fails(self):
        scheme = SchnorrSignatureScheme()
        alice_keys = scheme.generate_keypair(client_id("alice"))
        bob_keys = scheme.generate_keypair(client_id("bob"))
        signature = scheme.sign(alice_keys, "message")
        assert not scheme.verify(bob_keys.public_key, signature, "message")

    def test_registry_with_schnorr_scheme(self):
        registry = KeyRegistry("schnorr")
        edge = edge_id("edge-0")
        registry.register(edge)
        signature = registry.sign(edge, ["block", 7])
        assert registry.verify(signature, ["block", 7])
        assert not registry.verify(signature, ["block", 8])


class TestKeyRegistry:
    def test_unknown_signer_raises(self):
        registry = KeyRegistry("hmac")
        with pytest.raises(UnknownSignerError):
            registry.sign(client_id("ghost"), "message")

    def test_verify_unknown_signer_raises(self):
        registry = KeyRegistry("hmac")
        other = KeyRegistry("hmac")
        alice = client_id("alice")
        other.register(alice)
        signature = other.sign(alice, "hi")
        with pytest.raises(UnknownSignerError):
            registry.verify(signature, "hi")

    def test_register_is_idempotent(self):
        registry = KeyRegistry("hmac")
        alice = client_id("alice")
        first = registry.register(alice)
        second = registry.register(alice)
        assert first is second

    def test_require_valid_raises_on_forgery(self):
        registry = KeyRegistry("hmac")
        alice, bob = client_id("alice"), client_id("bob")
        registry.register(alice)
        registry.register(bob)
        signature = registry.sign(bob, "msg")
        forged = Signature(signer=alice, scheme=signature.scheme, value=signature.value)
        with pytest.raises(SignatureError):
            registry.require_valid(forged, "msg")

    def test_get_scheme_unknown_name(self):
        with pytest.raises(SignatureError):
            get_scheme("unknown")

    def test_cross_signer_signatures_do_not_verify(self):
        registry = KeyRegistry("hmac")
        alice, bob = client_id("alice"), client_id("bob")
        registry.register(alice)
        registry.register(bob)
        signature = registry.sign(alice, "payload")
        impersonated = Signature(signer=bob, scheme=signature.scheme, value=signature.value)
        assert not registry.verify(impersonated, "payload")

    def test_empty_signature_value_rejected(self):
        with pytest.raises(SignatureError):
            Signature(signer=client_id("alice"), scheme="hmac", value=b"")


class TestEnvelopes:
    def test_seal_and_verify_roundtrip(self):
        registry = KeyRegistry("hmac")
        alice = client_id("alice")
        registry.register(alice)
        envelope = seal_envelope(registry, alice, {"hello": "world"})
        assert verify_envelope(registry, envelope) == {"hello": "world"}

    def test_sender_signer_mismatch_rejected(self):
        registry = KeyRegistry("hmac")
        alice, bob = client_id("alice"), client_id("bob")
        registry.register(alice)
        registry.register(bob)
        envelope = seal_envelope(registry, alice, "data")
        with pytest.raises(InvalidMessageError):
            type(envelope)(sender=bob, payload="data", signature=envelope.signature)

    def test_tampered_payload_rejected(self):
        registry = KeyRegistry("hmac")
        alice = client_id("alice")
        registry.register(alice)
        envelope = seal_envelope(registry, alice, "data")
        tampered = type(envelope)(
            sender=alice, payload="other", signature=envelope.signature
        )
        with pytest.raises(InvalidMessageError):
            verify_envelope(registry, tampered)

    def test_signed_channel_detached_signatures(self):
        registry = KeyRegistry("hmac")
        channel = SignedChannel(registry, edge_id("edge-0"))
        signature = channel.sign_value({"root": "abc"})
        assert channel.verify_value(signature, {"root": "abc"})
        assert not channel.verify_value(signature, {"root": "xyz"})

    def test_signed_channel_open_rejects_forgery(self):
        registry = KeyRegistry("hmac")
        alice_channel = SignedChannel(registry, client_id("alice"))
        bob_channel = SignedChannel(registry, client_id("bob"))
        envelope = alice_channel.seal("payload")
        tampered = type(envelope)(
            sender=envelope.sender, payload="evil", signature=envelope.signature
        )
        with pytest.raises(InvalidMessageError):
            bob_channel.open(tampered)
