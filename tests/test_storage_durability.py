"""Durable edge state: segment log, manifest, recovery, and disk chaos.

Three layers of coverage for ``repro/storage``:

* **Unit** — the checksummed segment log (framing, rotation, torn-tail
  repair, sealed-segment CRC detection, fault arming), the round-trip
  codec, the atomically-swapped manifest (old-or-new, never hybrid), and
  :class:`~repro.storage.store.PartitionStore` replay/truncation/retire.
* **Recovery** — :func:`~repro.storage.recovery.recover_partition` rebuilds
  a fresh partition from a store and verifies it against the durable
  cloud-signed root; corruption and root disagreement quarantine instead
  of raising.
* **Chaos** — full simulated deployments on the disk backend: crashes
  mid-certify-window and mid-compaction recover from disk through the
  fault injector's real restart path, injected disk faults
  (:class:`~repro.faults.DiskFaultRule`) behave per the fault model, and
  direct on-disk byte flips are detected and quarantined — an honest edge
  with a corrupt disk refuses service and is never convicted for it.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.common.config import StorageConfig, SystemConfig
from repro.common.errors import (
    PartitionQuarantinedError,
    StorageCorruptionError,
    StorageFullError,
)
from repro.common.identifiers import NodeRole, client_id, cloud_id, edge_id
from repro.crypto.signatures import KeyRegistry, Signature
from repro.faults import (
    CrashEvent,
    DiskFaultRule,
    FaultInjector,
    FaultPlan,
    assert_full_certification,
    assert_no_false_convictions,
    assert_no_quarantines,
)
from repro.log.block import build_block
from repro.log.entry import EntryBody, LogEntry
from repro.log.proofs import (
    issue_block_proof,
    issue_phase_one_receipt,
)
from repro.lsm.records import KVRecord
from repro.lsm.page import build_page
from repro.lsmerkle.mlsm import sign_global_root
from repro.nodes.edge import PartitionState
from repro.storage.codec import decode_record, encode_record
from repro.storage.manifest import (
    MANIFEST_NAME,
    PAGES_DIR,
    Manifest,
    load_manifest,
    load_pages,
    write_manifest,
    write_pages,
)
from repro.storage.recovery import recover_partition
from repro.storage.segments import SegmentLog
from repro.storage.store import PartitionStore

from test_chaos_scenarios import (
    BLOCK_SIZE,
    build_single,
    build_sharded,
    certified_total,
    put_blocks,
    start_certify_pump,
)

EDGE = edge_id("store-edge")
CLOUD = cloud_id("store-cloud")
PRODUCER = client_id("store-client")


def make_registry() -> KeyRegistry:
    registry = KeyRegistry("hmac")
    registry.register(EDGE)
    registry.register(CLOUD)
    return registry


def make_blocks(count: int, entries_per_block: int = 2, seed: int = 7):
    rng = random.Random(seed)
    blocks = []
    for block_id in range(count):
        entries = []
        for index in range(entries_per_block):
            body = EntryBody(
                producer=PRODUCER,
                sequence=block_id * entries_per_block + index,
                payload=bytes(rng.getrandbits(8) for _ in range(48)),
                produced_at=float(block_id),
            )
            signature = Signature(
                signer=PRODUCER,
                scheme="hmac",
                value=bytes(rng.getrandbits(8) for _ in range(32)),
            )
            entries.append(LogEntry(body=body, signature=signature))
        blocks.append(
            build_block(
                edge=EDGE,
                block_id=block_id,
                entries=entries,
                created_at=float(block_id),
            )
        )
    return blocks


def flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x01]))


def disk_storage(tmp_path, **overrides) -> StorageConfig:
    settings = dict(backend="disk", root_dir=str(tmp_path), fsync="always")
    settings.update(overrides)
    return StorageConfig(**settings)


# ----------------------------------------------------------------------
# Segment log
# ----------------------------------------------------------------------
class TestSegmentLog:
    def test_append_replay_round_trip(self, tmp_path):
        log = SegmentLog(str(tmp_path), fsync="always", segment_max_bytes=1 << 20)
        payloads = [b"record-%d" % index for index in range(5)]
        for payload in payloads:
            log.append(payload)
        log.close()

        reopened = SegmentLog(str(tmp_path), fsync="always", segment_max_bytes=1 << 20)
        assert [payload for _, payload in reopened.replay()] == payloads
        assert reopened.torn_records_dropped == 0
        reopened.close()

    def test_rotation_seals_segments_in_order(self, tmp_path):
        log = SegmentLog(str(tmp_path), fsync="on_seal", segment_max_bytes=64)
        payloads = [b"x" * 40 + b"%02d" % index for index in range(6)]
        for payload in payloads:
            log.append(payload)
        assert len(log.segment_indices()) > 1
        assert log.active_index == max(log.segment_indices())
        assert [payload for _, payload in log.replay()] == payloads
        log.close()

    def test_torn_write_repaired_on_reopen(self, tmp_path):
        log = SegmentLog(str(tmp_path), fsync="always", segment_max_bytes=1 << 20)
        for index in range(3):
            log.append(b"good-%d" % index)
        log.arm_fault("torn_write", 1)
        log.append(b"torn-record-that-only-half-lands")
        log.close()

        reopened = SegmentLog(str(tmp_path), fsync="always", segment_max_bytes=1 << 20)
        assert [payload for _, payload in reopened.replay()] == [
            b"good-0",
            b"good-1",
            b"good-2",
        ]
        assert reopened.torn_records_dropped == 1
        # The repair truncated the debris: appends continue cleanly.
        reopened.append(b"after-repair")
        assert [payload for _, payload in reopened.replay()][-1] == b"after-repair"
        reopened.close()

    def test_sealed_segment_corruption_raises(self, tmp_path):
        log = SegmentLog(str(tmp_path), fsync="on_seal", segment_max_bytes=64)
        for index in range(6):
            log.append(b"y" * 40 + b"%02d" % index)
        sealed = sorted(log.segment_indices())[0]
        assert sealed != log.active_index
        log.close()

        path = os.path.join(str(tmp_path), f"seg-{sealed:08d}.log")
        flip_byte(path, os.path.getsize(path) // 2)
        # Sealed validation is lazy: the open repairs only the active tail,
        # replay is where a sealed segment must prove itself.
        reopened = SegmentLog(str(tmp_path), fsync="on_seal", segment_max_bytes=64)
        with pytest.raises(StorageCorruptionError):
            list(reopened.replay())
        reopened.close()

    def test_simulate_crash_loses_only_a_tail(self, tmp_path):
        log = SegmentLog(str(tmp_path), fsync="never", segment_max_bytes=1 << 20)
        payloads = [b"crashy-%d" % index for index in range(5)]
        for payload in payloads:
            log.append(payload)
        log.simulate_crash()

        reopened = SegmentLog(str(tmp_path), fsync="never", segment_max_bytes=1 << 20)
        recovered = [payload for _, payload in reopened.replay()]
        # Whatever survived is a strict prefix — never reordered, never
        # invented, and under fsync="never" the unsynced tail is fair game.
        assert recovered == payloads[: len(recovered)]
        assert len(recovered) < len(payloads)
        reopened.close()

    def test_enospc_fault_raises_then_clears(self, tmp_path):
        log = SegmentLog(str(tmp_path), fsync="always", segment_max_bytes=1 << 20)
        log.arm_fault("enospc", 1)
        with pytest.raises(StorageFullError):
            log.append(b"does-not-fit")
        log.append(b"fits-again")
        assert [payload for _, payload in log.replay()] == [b"fits-again"]
        log.close()

    def test_drop_segment_removes_its_records(self, tmp_path):
        log = SegmentLog(str(tmp_path), fsync="on_seal", segment_max_bytes=64)
        payloads = [b"z" * 40 + b"%02d" % index for index in range(6)]
        for payload in payloads:
            log.append(payload)
        first = sorted(log.segment_indices())[0]
        log.drop_segment(first)
        remaining = [payload for _, payload in log.replay()]
        assert remaining == payloads[len(payloads) - len(remaining):]
        assert first not in log.segment_indices()
        log.close()


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_block_round_trip_preserves_digest(self):
        block = make_blocks(1)[0]
        decoded = decode_record(encode_record(block))
        assert decoded == block
        assert decoded.digest() == block.digest()

    def test_node_role_survives_the_round_trip(self):
        # NodeRole subclasses str, so the canonical encoder flattens it to
        # its plain value; the decoder must re-wrap it or every NodeId
        # rebuilt from disk breaks (regression: str has no ``.value``).
        block = make_blocks(1)[0]
        decoded = decode_record(encode_record(block))
        assert isinstance(decoded.edge.role, NodeRole)
        assert str(decoded.edge) == str(block.edge)

    def test_receipt_and_proof_round_trip_still_verify(self):
        registry = make_registry()
        block = make_blocks(1)[0]
        receipt = issue_phase_one_receipt(registry, EDGE, block, issued_at=1.0)
        proof = issue_block_proof(
            registry, CLOUD, EDGE, block.block_id, block.digest(), certified_at=2.0
        )
        for original in (receipt, proof):
            decoded = decode_record(encode_record(original))
            assert decoded == original
            assert decoded.verify(registry)

    def test_signed_root_round_trip(self):
        registry = make_registry()
        signed = sign_global_root(
            registry, CLOUD, EDGE, ("a" * 64, "b" * 64), version=3, timestamp=4.0
        )
        decoded = decode_record(encode_record(signed))
        assert decoded == signed
        assert decoded.verify(registry, CLOUD)

    def test_malformed_bytes_are_typed_corruption(self):
        with pytest.raises(StorageCorruptionError):
            decode_record(b"\xff\xfe not json")
        with pytest.raises(StorageCorruptionError):
            decode_record(b'{"__type__": "NoSuchClass"}')
        with pytest.raises(StorageCorruptionError):
            # A known type whose constructor rejects the fields.
            decode_record(b'{"__type__": "Block", "bogus": 1}')


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def make_pages(count: int, seed: int = 13):
    rng = random.Random(seed)
    pages = []
    for page_index in range(count):
        records = [
            KVRecord(
                key=f"key-{page_index:02d}-{index:04d}",
                sequence=page_index * 10 + index,
                value=bytes(rng.getrandbits(8) for _ in range(16)),
                written_at=float(page_index),
            )
            for index in range(3)
        ]
        pages.append(build_page(records, created_at=float(page_index)))
    return pages


class TestManifest:
    def test_write_load_round_trip(self, tmp_path):
        registry = make_registry()
        pages = make_pages(2)
        signed = sign_global_root(
            registry, CLOUD, EDGE, ("c" * 64,), version=1, timestamp=1.0
        )
        manifest = Manifest(
            version=1,
            next_block_id=7,
            level_zero_blocks=(5, 6),
            levels={1: tuple(page.digest() for page in pages)},
            signed_root=signed,
        )
        write_manifest(str(tmp_path), manifest, pages)

        loaded = load_manifest(str(tmp_path))
        assert loaded == manifest
        reloaded_pages = load_pages(str(tmp_path), loaded)
        assert [page.digest() for page in reloaded_pages[1]] == [
            page.digest() for page in pages
        ]

    def test_manifest_byte_flip_is_detected(self, tmp_path):
        manifest = Manifest(version=1, next_block_id=3, level_zero_blocks=())
        write_manifest(str(tmp_path), manifest, [])
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        flip_byte(path, os.path.getsize(path) // 2)
        with pytest.raises(StorageCorruptionError):
            load_manifest(str(tmp_path))

    def test_crash_before_swap_leaves_old_manifest(self, tmp_path):
        old_pages = make_pages(1, seed=1)
        old = Manifest(
            version=1,
            next_block_id=2,
            level_zero_blocks=(),
            levels={1: tuple(page.digest() for page in old_pages)},
        )
        write_manifest(str(tmp_path), old, old_pages)
        # A compaction crashes after writing its new page files but before
        # the manifest swap: the new pages sit unreferenced on disk.
        new_pages = make_pages(2, seed=2)
        write_pages(str(tmp_path), new_pages)

        loaded = load_manifest(str(tmp_path))
        assert loaded == old
        assert load_pages(str(tmp_path), loaded)[1][0].digest() == old_pages[0].digest()

    def test_swap_commits_new_set_and_collects_orphans(self, tmp_path):
        old_pages = make_pages(1, seed=1)
        write_manifest(
            str(tmp_path),
            Manifest(
                version=1,
                next_block_id=2,
                level_zero_blocks=(),
                levels={1: tuple(page.digest() for page in old_pages)},
            ),
            old_pages,
        )
        new_pages = make_pages(2, seed=2)
        new = Manifest(
            version=2,
            next_block_id=4,
            level_zero_blocks=(),
            levels={1: tuple(page.digest() for page in new_pages)},
        )
        write_manifest(str(tmp_path), new, new_pages)

        assert load_manifest(str(tmp_path)) == new
        on_disk = {
            name[:-5]
            for name in os.listdir(os.path.join(str(tmp_path), PAGES_DIR))
            if name.endswith(".json")
        }
        # Exactly the new referenced set: old pages were garbage-collected.
        assert on_disk == new.referenced_digests()

    def test_page_digest_mismatch_is_corruption(self, tmp_path):
        pages = make_pages(1)
        manifest = Manifest(
            version=1,
            next_block_id=1,
            level_zero_blocks=(),
            levels={1: (pages[0].digest(),)},
        )
        write_manifest(str(tmp_path), manifest, pages)
        page_path = os.path.join(
            str(tmp_path), PAGES_DIR, f"{pages[0].digest()}.json"
        )
        flip_byte(page_path, os.path.getsize(page_path) // 2)
        with pytest.raises(StorageCorruptionError):
            load_pages(str(tmp_path), manifest)


# ----------------------------------------------------------------------
# Partition store
# ----------------------------------------------------------------------
def populated_store(tmp_path, blocks, proofs_for=(), **config_overrides):
    registry = make_registry()
    store = PartitionStore(
        str(tmp_path), disk_storage(tmp_path, **config_overrides)
    )
    for block in blocks:
        receipt = issue_phase_one_receipt(
            registry, EDGE, block, issued_at=block.created_at
        )
        store.append_block(block, receipt)
    for block in blocks:
        if block.block_id in proofs_for:
            store.append_proof(
                issue_block_proof(
                    registry,
                    CLOUD,
                    EDGE,
                    block.block_id,
                    block.digest(),
                    certified_at=block.created_at + 1.0,
                )
            )
    return store, registry


class TestPartitionStore:
    def test_replay_round_trip(self, tmp_path):
        blocks = make_blocks(3)
        store, _ = populated_store(tmp_path, blocks, proofs_for=(0, 1))
        store.close()

        reopened = PartitionStore(str(tmp_path), disk_storage(tmp_path))
        replay = reopened.replay()
        assert replay.blocks == blocks
        assert sorted(replay.receipts) == [0, 1, 2]
        assert sorted(replay.proofs) == [0, 1]
        assert all(
            replay.receipts[block.block_id].statement.block_digest
            == block.digest()
            for block in blocks
        )
        reopened.close()

    def test_snapshot_truncation_keeps_storage_bounded(self, tmp_path):
        blocks = make_blocks(6)
        store, _ = populated_store(
            tmp_path,
            blocks,
            proofs_for=range(6),
            segment_max_bytes=2048,
            fsync="on_seal",
        )
        sealed_before = len(store.segments.segment_indices())
        assert sealed_before > 1
        # Everything below the floor is certified and merged: the manifest
        # write doubles as the snapshot point.
        store.write_manifest(
            next_block_id=6,
            level_pages={},
            level_zero_blocks=(),
            signed_root=None,
            truncate_floor=6,
        )
        assert store.stats["segments_truncated"] >= 1
        assert len(store.segments.segment_indices()) < sealed_before
        store.close()

    def test_retire_marks_directory_for_wipe(self, tmp_path):
        blocks = make_blocks(2)
        store, _ = populated_store(tmp_path, blocks)
        store.retire()
        # A re-adoption of the shard starts from the transfer, not from the
        # stale local segments of the retired incarnation.
        readopted = PartitionStore(str(tmp_path), disk_storage(tmp_path))
        replay = readopted.replay()
        assert replay.blocks == []
        assert readopted.load_manifest() is None
        readopted.close()


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
def fresh_state() -> PartitionState:
    return PartitionState(owner=EDGE, config=SystemConfig(), shard_id=None)


class TestRecovery:
    def test_healthy_recovery_rebuilds_everything(self, tmp_path):
        blocks = make_blocks(3)
        store, registry = populated_store(tmp_path, blocks, proofs_for=(0, 1))
        state = fresh_state()
        report = recover_partition(state, store, registry, CLOUD)

        assert report.ok
        assert report.blocks_replayed == 3
        assert report.proofs_replayed == 2
        assert len(state.log) == 3
        assert state.log.proof_for(0) is not None
        assert state.log.proof_for(2) is None
        # Replay protection came back with the blocks.
        entry = blocks[1].entries[0]
        assert state.entry_locations[(entry.producer, entry.sequence)] == 1
        # The allocator never re-issues a durable id.
        assert state.log.next_block_id == 3
        store.close()

    def test_recovery_verifies_the_durable_signed_root(self, tmp_path):
        blocks = make_blocks(2)
        store, registry = populated_store(tmp_path, blocks, proofs_for=(0, 1))
        signed = sign_global_root(
            registry,
            CLOUD,
            EDGE,
            fresh_state().index.level_roots(),
            version=1,
            timestamp=1.0,
        )
        store.write_manifest(
            next_block_id=2,
            level_pages={},
            level_zero_blocks=(),
            signed_root=signed,
        )
        state = fresh_state()
        report = recover_partition(state, store, registry, CLOUD)

        assert report.ok
        assert report.root_verified
        assert report.root_version == 1
        assert state.signed_root == signed
        store.close()

    def test_root_disagreement_quarantines(self, tmp_path):
        blocks = make_blocks(2)
        store, registry = populated_store(tmp_path, blocks)
        lying_root = sign_global_root(
            registry, CLOUD, EDGE, ("f" * 64,), version=1, timestamp=1.0
        )
        store.write_manifest(
            next_block_id=2,
            level_pages={},
            level_zero_blocks=(),
            signed_root=lying_root,
        )
        state = fresh_state()
        report = recover_partition(state, store, registry, CLOUD)

        assert not report.ok
        assert state.quarantined is not None
        assert "do not match" in report.quarantined
        store.close()

    def test_sealed_corruption_quarantines_instead_of_raising(self, tmp_path):
        blocks = make_blocks(6)
        store, registry = populated_store(
            tmp_path, blocks, segment_max_bytes=2048, fsync="on_seal"
        )
        sealed = sorted(store.segments.segment_indices())[0]
        assert sealed != store.segments.active_index
        store.close()
        path = os.path.join(str(tmp_path), f"seg-{sealed:08d}.log")
        flip_byte(path, os.path.getsize(path) // 2)

        state = fresh_state()
        try:
            store = PartitionStore(str(tmp_path), disk_storage(tmp_path))
        except StorageCorruptionError:
            # Acceptable: the open scan may detect the damage directly.
            return
        report = recover_partition(state, store, registry, CLOUD)
        assert not report.ok
        assert "checksum" in report.quarantined.lower()
        assert state.quarantined is not None
        store.close()


# ----------------------------------------------------------------------
# Chaos: durable crash recovery through the fault injector
# ----------------------------------------------------------------------
class TestDurableCrashRecovery:
    def test_crash_mid_certify_window_recovers_from_disk(self, tmp_path):
        system = build_single(seed=301, storage=disk_storage(tmp_path))
        client = system.client(0)
        edge = system.edge(0)
        plan = FaultPlan(seed=301, name="durable-crash").with_crash(
            CrashEvent(edge.node_id, at_s=1.0, restart_at_s=2.5)
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        put_blocks(client, 3, prefix="before")
        # Past the crash AND the restart before the second wave — puts sent
        # at a dead edge are just dropped (clients do not retry Phase I).
        system.run_for(3.0)
        put_blocks(client, 3, prefix="after")
        system.run_for(max(0.0, injector.faults_quiet_after() - system.env.now()))
        system.run_for(12.0)
        stop_pump()

        # The restart really replaced the partition with one rebuilt from
        # disk, and the rebuild verified against the durable signed root.
        assert edge.stats.get("restarts", 0) == 1
        assert edge.stats.get("partitions_recovered", 0) >= 1
        [report] = edge.last_recovery_reports
        assert report.ok
        assert report.blocks_replayed >= 3
        assert report.root_verified
        assert_no_quarantines(system.edges)
        assert assert_full_certification(system.edges) >= 6
        assert_no_false_convictions(system.cloud, [edge.node_id])

    def test_crash_mid_compaction_recovers_old_or_new(self, tmp_path):
        system = build_single(seed=307, storage=disk_storage(tmp_path))
        client = system.client(0)
        edge = system.edge(0)
        # Crash early, while the thresholds (2, 2, 4, 8) keep merges almost
        # permanently in flight for a 6-block burst.
        plan = FaultPlan(seed=307, name="durable-compaction-crash").with_crash(
            CrashEvent(edge.node_id, at_s=0.8, restart_at_s=2.0)
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        put_blocks(client, 6, prefix="burst")
        system.run_for(max(0.0, injector.faults_quiet_after() - system.env.now()))
        system.run_for(15.0)
        stop_pump()

        assert_no_quarantines(system.edges)
        [report] = edge.last_recovery_reports
        assert report.ok
        # Old manifest or new manifest — never a hybrid: whatever root the
        # recovered index carries, it matches the index.
        state = edge._default_partition
        if state.signed_root is not None:
            assert state.index.roots_match(state.signed_root)
        assert assert_full_certification(system.edges) >= 6
        assert_no_false_convictions(system.cloud, [edge.node_id])

    def test_sharded_durable_crash_rebuilds_every_partition(self, tmp_path):
        system = build_sharded(
            seed=317, num_edges=2, num_shards=4, storage=disk_storage(tmp_path)
        )
        client = system.clients[0]
        victim = system.edges[0]
        plan = FaultPlan(seed=317, name="sharded-durable-crash").with_crash(
            CrashEvent(victim.node_id, at_s=1.0, restart_at_s=2.5)
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        put_blocks(client, 4, prefix="shardy")
        system.run_for(max(0.0, injector.faults_quiet_after() - system.env.now()))
        system.run_for(15.0)
        stop_pump()

        assert_no_quarantines(system.edges)
        assert victim.stats.get("partitions_recovered", 0) >= 1
        # The block -> shard routing table was rebuilt from the recovered
        # logs, not trusted from the crashed process.
        expected = {
            record.block.block_id: shard_id
            for shard_id, state in victim._shard_states.items()
            for record in state.log
        }
        assert victim._block_shards == expected
        assert_full_certification(system.edges)
        assert_no_false_convictions(
            system.cloud, [edge.node_id for edge in system.edges]
        )


# ----------------------------------------------------------------------
# Chaos: injected disk faults
# ----------------------------------------------------------------------
class TestDiskFaultInjection:
    def test_torn_write_drops_records_without_quarantine(self, tmp_path):
        system = build_single(seed=331, storage=disk_storage(tmp_path))
        client = system.client(0)
        edge = system.edge(0)
        plan = (
            FaultPlan(seed=331, name="torn-writes")
            .with_disk_fault(DiskFaultRule(kind="torn_write", at_s=0.1, count=1))
            .with_crash(CrashEvent(edge.node_id, at_s=1.5, restart_at_s=2.5))
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        # Let the fault arm *before* the workload: the first durable append
        # after t=0.1 only half-lands.
        system.run_for(0.3)
        put_blocks(client, 4, prefix="torn")
        system.run_for(max(0.0, injector.faults_quiet_after() - system.env.now()))
        system.run_for(4.0)
        # The partition still serves after recovering past the torn debris.
        put_blocks(client, 2, prefix="post-torn")
        system.run_for(8.0)
        stop_pump()

        assert any(action == "disk:torn_write" for _, action, *_ in injector.trace)
        [report] = edge.last_recovery_reports
        # A torn record is lost data, not corruption: recovery repairs the
        # tail, counts the damage, and the partition keeps serving.
        assert report.ok
        assert report.torn_records_dropped >= 1
        assert_no_quarantines(system.edges)
        assert_full_certification(system.edges)
        assert_no_false_convictions(system.cloud, [edge.node_id])

    def test_bit_flip_in_sealed_segment_quarantines(self, tmp_path):
        system = build_single(
            seed=337,
            storage=disk_storage(
                tmp_path, segment_max_bytes=512, truncate_on_snapshot=False
            ),
        )
        client = system.client(0)
        edge = system.edge(0)
        plan = (
            FaultPlan(seed=337, name="bit-flip")
            .with_disk_fault(DiskFaultRule(kind="bit_flip", at_s=0.1, count=1))
            .with_crash(CrashEvent(edge.node_id, at_s=2.0, restart_at_s=3.0))
        )
        injector = FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        # Arm first, then write: the first append after t=0.1 lands with a
        # CRC that can never match, in a segment the tiny rotation threshold
        # seals immediately — durable, checksummed, and wrong.
        system.run_for(0.3)
        put_blocks(client, 4, prefix="flip")
        system.run_for(max(0.0, injector.faults_quiet_after() - system.env.now()))
        system.run_for(4.0)
        # The partition refused everything after restart, including these.
        put_blocks(client, 1, prefix="refused")
        system.run_for(4.0)
        stop_pump()

        assert any(action == "disk:bit_flip" for _, action, *_ in injector.trace)
        reports = edge.quarantine_reports()
        assert reports and all(reason for reason in reports.values())
        assert edge.stats.get("partitions_quarantined", 0) >= 1
        assert edge.stats.get("quarantined_refusals", 0) >= 1
        with pytest.raises(PartitionQuarantinedError):
            edge.assert_serving()
        # An honest edge with a corrupt disk is never convicted for it.
        assert_no_false_convictions(system.cloud, [edge.node_id])

    def test_enospc_degrades_durability_not_availability(self, tmp_path):
        system = build_single(seed=347, storage=disk_storage(tmp_path))
        client = system.client(0)
        edge = system.edge(0)
        plan = FaultPlan(seed=347, name="enospc").with_disk_fault(
            DiskFaultRule(kind="enospc", at_s=0.1, count=3)
        )
        FaultInjector(system.env, plan).install()
        stop_pump = start_certify_pump(system)

        system.run_for(0.3)
        put_blocks(client, 4, prefix="full-disk")
        system.run_for(10.0)
        stop_pump()

        # Writes failed durably but the edge never stopped serving.
        assert edge.stats.get("storage_write_errors", 0) >= 1
        assert_no_quarantines(system.edges)
        assert assert_full_certification(system.edges) >= 4
        assert_no_false_convictions(system.cloud, [edge.node_id])


# ----------------------------------------------------------------------
# Chaos: direct on-disk corruption (the operator's nightmare scenarios)
# ----------------------------------------------------------------------
def partition_dir(tmp_path, edge) -> str:
    return os.path.join(str(tmp_path), edge.node_id.name, "default")


class TestDirectCorruption:
    def run_workload(self, tmp_path, seed, **storage_overrides):
        system = build_single(
            seed=seed, storage=disk_storage(tmp_path, **storage_overrides)
        )
        client = system.client(0)
        edge = system.edge(0)
        stop_pump = start_certify_pump(system)
        put_blocks(client, 4, prefix="pre")
        system.run_for(6.0)
        stop_pump()
        assert certified_total(system) >= 4
        return system, client, edge

    def test_flipped_byte_in_sealed_segment_quarantines(self, tmp_path):
        system, client, edge = self.run_workload(
            tmp_path, seed=353, segment_max_bytes=512, truncate_on_snapshot=False
        )
        edge.on_crash()
        directory = partition_dir(tmp_path, edge)
        segments = sorted(
            name for name in os.listdir(directory) if name.startswith("seg-")
        )
        assert len(segments) > 1
        sealed_path = os.path.join(directory, segments[0])
        flip_byte(sealed_path, os.path.getsize(sealed_path) // 2)
        edge.on_restart()

        reports = edge.quarantine_reports()
        assert reports
        assert "StorageCorruptionError" in next(iter(reports.values()))
        with pytest.raises(PartitionQuarantinedError):
            edge.assert_serving()
        # Quarantine is local refusal, never a protocol action.
        put_blocks(client, 1, prefix="post")
        system.run_for(2.0)
        assert edge.stats.get("quarantined_refusals", 0) >= 1
        assert_no_false_convictions(system.cloud, [edge.node_id])

    def test_flipped_byte_in_manifest_quarantines(self, tmp_path):
        system, client, edge = self.run_workload(tmp_path, seed=359)
        assert edge._default_partition.store.stats["manifests_written"] >= 1
        edge.on_crash()
        manifest_path = os.path.join(partition_dir(tmp_path, edge), MANIFEST_NAME)
        flip_byte(manifest_path, os.path.getsize(manifest_path) // 2)
        edge.on_restart()

        reports = edge.quarantine_reports()
        assert reports
        assert "StorageCorruptionError" in next(iter(reports.values()))
        put_blocks(client, 1, prefix="post")
        system.run_for(2.0)
        assert edge.stats.get("quarantined_refusals", 0) >= 1
        assert_no_false_convictions(system.cloud, [edge.node_id])

    def test_pristine_disk_does_not_quarantine(self, tmp_path):
        # Control: the same crash/restart with no tampering stays healthy —
        # the corruption detectors have no false positives on this path.
        system, client, edge = self.run_workload(tmp_path, seed=367)
        edge.on_crash()
        edge.on_restart()
        assert edge.quarantine_reports() == {}
        [report] = edge.last_recovery_reports
        assert report.ok and report.blocks_replayed >= 4


# ----------------------------------------------------------------------
# Snapshot truncation end to end
# ----------------------------------------------------------------------
class TestSnapshotTruncationScenario:
    def test_truncated_store_still_recovers_fully(self, tmp_path):
        system = build_single(
            seed=373,
            storage=disk_storage(tmp_path, segment_max_bytes=512, fsync="on_seal"),
        )
        client = system.client(0)
        edge = system.edge(0)
        stop_pump = start_certify_pump(system)
        put_blocks(client, 8, prefix="bound")
        system.run_for(10.0)
        stop_pump()

        store = edge._default_partition.store
        assert store.stats["segments_truncated"] >= 1
        # The bounded log still carries everything recovery needs.
        edge.on_crash()
        edge.on_restart()
        assert edge.quarantine_reports() == {}
        [report] = edge.last_recovery_reports
        assert report.ok
        state = edge._default_partition
        if state.signed_root is not None:
            assert state.index.roots_match(state.signed_root)
