"""Tests for the batched certification and gossip subsystem.

Covers the crypto batch helpers (one signature over a Merkle root of item
digests), the batch-anchored block proofs, the LazyCertifier dispatch queue
and retry bookkeeping, the cloud's batch-certify handler (including the
duplicate / out-of-order / conflicting cases), the edge's malicious-cloud
rejection path, and end-to-end equivalence between the batched and the
per-block protocol.
"""

from __future__ import annotations

import pytest

from repro.common import ProtocolError
from repro.common.config import LoggingConfig, LSMerkleConfig, SecurityConfig, SystemConfig
from repro.common.errors import ProofVerificationError, SignatureError
from repro.common.identifiers import client_id, cloud_id, edge_id
from repro.core.certification import LazyCertifier
from repro.core.system import WedgeChainSystem
from repro.crypto.signatures import (
    KeyRegistry,
    batch_item_leaf,
    sign_batch_root,
    verify_batch_root,
)
from repro.log.block import build_block
from repro.log.entry import make_entry
from repro.log.proofs import (
    BatchedBlockProof,
    CommitPhase,
    build_certify_batch_tree,
    certify_batch_leaf,
    derive_batched_proofs,
    issue_batch_certificate,
    issue_block_proof,
)
from repro.messages.log_messages import (
    BatchCertificateMessage,
    BlockCertifyRequest,
    CertifyBatchRequest,
    CertifyBatchStatement,
    CertifyRejection,
    CertifyStatement,
)
from repro.nodes.cloud import CloudNode
from repro.nodes.edge import EdgeNode
from repro.sim.environment import local_environment

CLOUD = cloud_id("cloud-0")
EDGE = edge_id("edge-0")
ALICE = client_id("alice")


@pytest.fixture
def registry():
    registry = KeyRegistry()
    registry.register(CLOUD)
    registry.register(EDGE)
    registry.register(ALICE)
    return registry


def digests(count):
    return [(block_id, f"{block_id:064x}") for block_id in range(count)]


# ----------------------------------------------------------------------
# Crypto batch helpers
# ----------------------------------------------------------------------
class TestBatchRootSigning:
    def test_sign_and_verify_roundtrip(self, registry):
        statement, signature = sign_batch_root(
            registry, CLOUD, "certify-batch", "ab" * 32, 4, 1.0, about=EDGE
        )
        assert verify_batch_root(registry, statement, signature)
        assert verify_batch_root(
            registry, statement, signature, expected_signer=CLOUD
        )
        assert verify_batch_root(
            registry, statement, signature, expected_context="certify-batch"
        )

    def test_wrong_signer_or_context_rejected(self, registry):
        statement, signature = sign_batch_root(
            registry, CLOUD, "certify-batch", "ab" * 32, 4, 1.0
        )
        assert not verify_batch_root(
            registry, statement, signature, expected_signer=EDGE
        )
        assert not verify_batch_root(
            registry, statement, signature, expected_context="gossip"
        )

    def test_empty_batch_rejected(self, registry):
        with pytest.raises(SignatureError):
            sign_batch_root(registry, CLOUD, "certify-batch", "ab" * 32, 0, 1.0)

    def test_forged_signature_rejected(self, registry):
        statement, _ = sign_batch_root(
            registry, CLOUD, "certify-batch", "ab" * 32, 4, 1.0
        )
        _, forged = sign_batch_root(
            registry, CLOUD, "certify-batch", "cd" * 32, 4, 1.0
        )
        assert not verify_batch_root(registry, statement, forged)

    def test_memo_cannot_be_poisoned_across_signatures(self, registry):
        """The verdict memo is keyed by (statement, signature): a forged
        signature over a value-equal statement must not inherit a genuine
        verdict, and a garbage signature seen first must not poison the
        cache against the genuine one."""

        from dataclasses import replace

        statement, genuine = sign_batch_root(
            registry, CLOUD, "certify-batch", "ab" * 32, 4, 1.0, about=EDGE
        )
        forged = replace(genuine, value=b"\x00" * 32)
        # Genuine first: the forged copy must still be rejected.
        assert verify_batch_root(registry, statement, genuine)
        assert not verify_batch_root(registry, statement, forged)
        # Garbage first on a fresh registry: the genuine one must still pass.
        fresh = KeyRegistry()
        fresh._keys = registry._keys  # same key material, empty memo
        assert not verify_batch_root(fresh, statement, forged)
        assert verify_batch_root(fresh, statement, genuine)

    def test_item_leaf_is_deterministic_and_distinct(self):
        assert batch_item_leaf((1, "ab")) == batch_item_leaf((1, "ab"))
        assert batch_item_leaf((1, "ab")) != batch_item_leaf((2, "ab"))
        assert batch_item_leaf((1, "ab")) != batch_item_leaf((1, "ba"))


# ----------------------------------------------------------------------
# Batch certificates and batch-anchored proofs
# ----------------------------------------------------------------------
class TestBatchedBlockProof:
    def make_certificate(self, registry, blocks):
        tree = build_certify_batch_tree(blocks)
        return issue_batch_certificate(
            registry=registry,
            cloud=CLOUD,
            edge=EDGE,
            batch_root=tree.root,
            num_blocks=len(blocks),
            certified_at=2.0,
        )

    def test_derived_proofs_verify(self, registry):
        blocks = digests(5)
        certificate = self.make_certificate(registry, blocks)
        proofs = derive_batched_proofs(certificate, blocks)
        assert len(proofs) == 5
        for proof, (block_id, digest) in zip(proofs, blocks):
            assert proof.block_id == block_id
            assert proof.block_digest == digest
            assert proof.edge == EDGE
            assert proof.cloud == CLOUD
            assert proof.certified_at == 2.0
            assert proof.verify(registry)
            assert proof.verify_cached(registry)

    def test_single_block_batch_degenerates(self, registry):
        blocks = digests(1)
        certificate = self.make_certificate(registry, blocks)
        (proof,) = derive_batched_proofs(certificate, blocks)
        assert proof.membership.steps == ()
        assert proof.verify(registry)

    def test_wrong_block_list_rejected(self, registry):
        blocks = digests(4)
        certificate = self.make_certificate(registry, blocks)
        with pytest.raises(ProofVerificationError):
            derive_batched_proofs(certificate, blocks[:3])
        reordered = [blocks[1], blocks[0]] + blocks[2:]
        with pytest.raises(ProofVerificationError):
            derive_batched_proofs(certificate, reordered)

    def test_tampered_proof_fields_rejected(self, registry):
        blocks = digests(4)
        certificate = self.make_certificate(registry, blocks)
        proofs = derive_batched_proofs(certificate, blocks)
        # Claiming another digest under the same membership path fails the
        # leaf binding.
        tampered = BatchedBlockProof(
            certificate=certificate,
            block_id=proofs[0].block_id,
            block_digest="f" * 64,
            membership=proofs[0].membership,
        )
        assert not tampered.verify(registry)
        # Reusing block 1's path for block 0's (id, digest) fails too.
        crossed = BatchedBlockProof(
            certificate=certificate,
            block_id=proofs[0].block_id,
            block_digest=proofs[0].block_digest,
            membership=proofs[1].membership,
        )
        assert not crossed.verify(registry)

    def test_certificate_from_unregistered_cloud_rejected(self, registry):
        blocks = digests(2)
        certificate = self.make_certificate(registry, blocks)
        verifier = KeyRegistry()
        verifier.register(CLOUD)  # fresh keys: signature cannot verify
        verifier.register(EDGE)
        proofs = derive_batched_proofs(certificate, blocks)
        assert not proofs[0].verify(verifier)

    def test_certifies_binds_block_content(self, registry):
        entries = [
            make_entry(registry, ALICE, sequence=i, payload=b"x", produced_at=0.0)
            for i in range(3)
        ]
        block = build_block(EDGE, 0, entries, created_at=1.0)
        blocks = [(0, block.digest())]
        certificate = self.make_certificate(registry, blocks)
        (proof,) = derive_batched_proofs(certificate, blocks)
        assert proof.certifies(block)
        other = build_block(EDGE, 0, entries[:2], created_at=1.0)
        assert not proof.certifies(other)

    def test_leaf_binds_id_digest_pair(self):
        assert certify_batch_leaf(1, "ab") == batch_item_leaf((1, "ab"))


# ----------------------------------------------------------------------
# LazyCertifier: dispatch queue, overdue, retry
# ----------------------------------------------------------------------
class TestCertifierDispatchQueue:
    def test_enqueue_and_drain_in_order(self):
        certifier = LazyCertifier()
        for block_id in range(3):
            certifier.track(block_id, f"{block_id:064x}", requested_at=1.0)
            certifier.enqueue_for_dispatch(block_id)
        assert certifier.pending_dispatch_count == 3
        drained = certifier.drain_dispatch_queue()
        assert [task.block_id for task in drained] == [0, 1, 2]
        assert certifier.pending_dispatch_count == 0
        assert certifier.drain_dispatch_queue() == ()

    def test_enqueue_untracked_rejected(self):
        certifier = LazyCertifier()
        with pytest.raises(ProtocolError):
            certifier.enqueue_for_dispatch(0)

    def test_enqueue_is_idempotent(self):
        certifier = LazyCertifier()
        certifier.track(0, "a" * 64, requested_at=1.0)
        assert certifier.enqueue_for_dispatch(0) == 1
        assert certifier.enqueue_for_dispatch(0) == 1

    def test_drain_respects_max_items(self):
        certifier = LazyCertifier()
        for block_id in range(4):
            certifier.track(block_id, f"{block_id:064x}", requested_at=1.0)
            certifier.enqueue_for_dispatch(block_id)
        first = certifier.drain_dispatch_queue(max_items=3)
        assert [task.block_id for task in first] == [0, 1, 2]
        assert certifier.pending_dispatch_count == 1

    def test_drain_skips_already_certified(self, registry):
        certifier = LazyCertifier()
        for block_id in range(2):
            certifier.track(block_id, f"{block_id:064x}", requested_at=1.0)
            certifier.enqueue_for_dispatch(block_id)
        proof = issue_block_proof(registry, CLOUD, EDGE, 0, f"{0:064x}", 2.0)
        certifier.complete(proof)
        drained = certifier.drain_dispatch_queue()
        assert [task.block_id for task in drained] == [1]


class TestCertifierOverdueRetry:
    def test_overdue_and_retry_bookkeeping(self):
        certifier = LazyCertifier()
        certifier.track(0, "a" * 64, requested_at=1.0)
        assert certifier.overdue(now=1.5, timeout_s=1.0) == ()
        (task,) = certifier.overdue(now=2.5, timeout_s=1.0)
        assert task.block_id == 0 and task.retries == 0

        retried = certifier.record_retry(0, now=2.5)
        assert retried.retries == 1
        assert retried.requested_at == 2.5
        # The retry resets the overdue clock.
        assert certifier.overdue(now=3.0, timeout_s=1.0) == ()
        (again,) = certifier.overdue(now=4.0, timeout_s=1.0)
        assert again.retries == 1

    def test_retry_untracked_or_certified_rejected(self, registry):
        certifier = LazyCertifier()
        with pytest.raises(ProtocolError):
            certifier.record_retry(0, now=1.0)
        certifier.track(0, "a" * 64, requested_at=1.0)
        certifier.complete(issue_block_proof(registry, CLOUD, EDGE, 0, "a" * 64, 2.0))
        with pytest.raises(ProtocolError):
            certifier.record_retry(0, now=3.0)

    def test_certified_tasks_never_overdue(self, registry):
        certifier = LazyCertifier()
        certifier.track(0, "a" * 64, requested_at=1.0)
        certifier.complete(issue_block_proof(registry, CLOUD, EDGE, 0, "a" * 64, 2.0))
        assert certifier.overdue(now=100.0, timeout_s=1.0) == ()


# ----------------------------------------------------------------------
# Cloud batch handling (driven through a probe edge endpoint)
# ----------------------------------------------------------------------
def batch_config(batch_size=4, pipeline_depth=1):
    return SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(
            block_size=4,
            block_timeout_s=0.02,
            certify_batch_size=batch_size,
            certify_flush_timeout_s=0.02,
            certify_pipeline_depth=pipeline_depth,
        ),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )


class _ProbeEdge:
    """A fake edge endpoint used to talk to the cloud node directly."""

    def __init__(self, env, name="edge-0"):
        from repro.common.regions import Region

        self.node_id = edge_id(name)
        self.region = Region.CALIFORNIA
        self.received = []
        self.env = env
        env.attach(self)

    def on_message(self, sender, message):
        self.received.append(message)

    def item(self, block_id, digest, edge=None):
        return CertifyStatement(
            edge=edge if edge is not None else self.node_id,
            block_id=block_id,
            block_digest=digest,
            num_entries=4,
        )

    def batch_request(self, items, signer=None):
        statement = CertifyBatchStatement(edge=self.node_id, items=tuple(items))
        signature = self.env.registry.sign(
            signer if signer is not None else self.node_id, statement
        )
        return CertifyBatchRequest(statement=statement, signature=signature)


@pytest.fixture
def cloud_env():
    env = local_environment(seed=11)
    cloud = CloudNode(env=env, config=batch_config())
    return env, cloud


class TestCloudBatchCertification:
    def test_batch_certifies_every_block_under_one_certificate(self, cloud_env):
        env, cloud = cloud_env
        probe = _ProbeEdge(env)
        items = [probe.item(i, f"{i:064x}") for i in range(4)]
        env.send(probe.node_id, cloud.node_id, probe.batch_request(items))
        env.run()

        assert cloud.stats["certifications"] == 4
        assert cloud.stats["certify_batches"] == 1
        (message,) = probe.received
        assert isinstance(message, BatchCertificateMessage)
        assert message.blocks == tuple((i, f"{i:064x}") for i in range(4))
        assert message.certificate.verify(env.registry)
        # The cloud keeps per-block proofs for the dispute path.
        for block_id in range(4):
            proof = cloud.proof_for(probe.node_id, block_id)
            assert proof is not None and proof.verify(env.registry)

    def test_duplicate_items_are_idempotent(self, cloud_env):
        env, cloud = cloud_env
        probe = _ProbeEdge(env)
        items = [probe.item(0, "a" * 64), probe.item(0, "a" * 64)]
        env.send(probe.node_id, cloud.node_id, probe.batch_request(items))
        env.run()
        assert cloud.stats["certifications"] == 1
        (message,) = probe.received
        # Both occurrences are answered (second one as an idempotent retry).
        assert message.blocks == ((0, "a" * 64), (0, "a" * 64))
        assert cloud.stats["punishments"] == 0

    def test_out_of_order_block_ids_accepted(self, cloud_env):
        env, cloud = cloud_env
        probe = _ProbeEdge(env)
        items = [probe.item(i, f"{i:064x}") for i in (3, 0, 2, 1)]
        env.send(probe.node_id, cloud.node_id, probe.batch_request(items))
        env.run()
        assert cloud.stats["certifications"] == 4
        (message,) = probe.received
        assert message.blocks == tuple((i, f"{i:064x}") for i in (3, 0, 2, 1))
        assert derive_batched_proofs(message.certificate, message.blocks)

    def test_conflicting_item_rejected_rest_of_batch_survives(self, cloud_env):
        env, cloud = cloud_env
        probe = _ProbeEdge(env)
        env.send(
            probe.node_id,
            cloud.node_id,
            probe.batch_request([probe.item(0, "a" * 64)]),
        )
        env.run()
        probe.received.clear()

        items = [probe.item(0, "b" * 64), probe.item(1, "c" * 64)]
        env.send(probe.node_id, cloud.node_id, probe.batch_request(items))
        env.run()

        assert cloud.stats["certify_conflicts"] == 1
        assert cloud.stats["punishments"] == 1
        rejections = [m for m in probe.received if isinstance(m, CertifyRejection)]
        certificates = [
            m for m in probe.received if isinstance(m, BatchCertificateMessage)
        ]
        assert len(rejections) == 1 and rejections[0].block_id == 0
        assert rejections[0].existing_digest == "a" * 64
        (certificate_message,) = certificates
        assert certificate_message.blocks == ((1, "c" * 64),)
        # The certified digest for block 0 is unchanged.
        assert cloud.certified_digest(probe.node_id, 0) == "a" * 64

    def test_item_for_another_edge_dropped(self, cloud_env):
        env, cloud = cloud_env
        probe = _ProbeEdge(env)
        other = edge_id("edge-other")
        env.registry.register(other)
        items = [probe.item(0, "a" * 64), probe.item(1, "b" * 64, edge=other)]
        env.send(probe.node_id, cloud.node_id, probe.batch_request(items))
        env.run()
        (message,) = probe.received
        assert message.blocks == ((0, "a" * 64),)
        assert cloud.certified_digest(other, 1) is None

    def test_misattributed_batch_dropped(self, cloud_env):
        env, cloud = cloud_env
        probe = _ProbeEdge(env)
        mallory = _ProbeEdge(env, name="edge-mallory")
        # Mallory signs a batch naming probe as the edge.
        statement = CertifyBatchStatement(
            edge=probe.node_id, items=(probe.item(0, "a" * 64),)
        )
        request = CertifyBatchRequest(
            statement=statement,
            signature=env.registry.sign(mallory.node_id, statement),
        )
        env.send(mallory.node_id, cloud.node_id, request)
        env.run()
        assert cloud.stats["certifications"] == 0
        assert probe.received == [] and mallory.received == []


# ----------------------------------------------------------------------
# Edge handling of batch certificates (including a malicious cloud)
# ----------------------------------------------------------------------
def make_edge_with_blocks(num_blocks, batch_size=8, pipeline_depth=1):
    """An edge with ``num_blocks`` formed blocks queued for batch dispatch."""

    env = local_environment(seed=13)
    config = batch_config(batch_size, pipeline_depth)
    cloud = CloudNode(env=env, config=config)
    edge = EdgeNode(env=env, cloud=cloud.node_id, config=config)
    env.registry.register(ALICE)
    for index in range(num_blocks):
        entries = [
            make_entry(
                env.registry,
                ALICE,
                sequence=index * 4 + offset,
                payload=b"payload-%d" % (index * 4 + offset),
                produced_at=0.0,
            )
            for offset in range(4)
        ]
        block = build_block(edge.node_id, index, entries, created_at=0.0)
        edge.log.append(block)
        edge.certifier.track(index, block.digest(), requested_at=0.0)
    return env, cloud, edge


class TestEdgeBatchCertificateHandling:
    def certificate_for(self, env, edge, blocks, cloud_node):
        tree = build_certify_batch_tree(blocks)
        return issue_batch_certificate(
            registry=env.registry,
            cloud=cloud_node.node_id,
            edge=edge.node_id,
            batch_root=tree.root,
            num_blocks=len(blocks),
            certified_at=1.0,
        )

    def test_accepts_matching_certificate(self):
        env, cloud, edge = make_edge_with_blocks(3)
        blocks = tuple(
            (i, edge.certifier.task(i).block_digest) for i in range(3)
        )
        certificate = self.certificate_for(env, edge, blocks, cloud)
        edge.on_message(
            cloud.node_id,
            BatchCertificateMessage(certificate=certificate, blocks=blocks),
        )
        assert edge.stats["proofs_received"] == 3
        assert edge.stats["batch_cert_mismatches"] == 0
        for block_id in range(3):
            proof = edge.log.proof_for(block_id)
            assert proof is not None and proof.verify(env.registry)

    def test_digest_mismatch_rejected_item_by_item(self):
        env, cloud, edge = make_edge_with_blocks(3)
        # The "cloud" certifies a digest the edge never sent for block 1.
        blocks = (
            (0, edge.certifier.task(0).block_digest),
            (1, "f" * 64),
            (2, edge.certifier.task(2).block_digest),
        )
        certificate = self.certificate_for(env, edge, blocks, cloud)
        edge.on_message(
            cloud.node_id,
            BatchCertificateMessage(certificate=certificate, blocks=blocks),
        )
        assert edge.stats["proofs_received"] == 2
        assert edge.stats["batch_cert_mismatches"] == 1
        assert edge.log.proof_for(0) is not None
        assert edge.log.proof_for(1) is None
        assert edge.log.proof_for(2) is not None

    def test_root_mismatch_rejects_whole_message(self):
        env, cloud, edge = make_edge_with_blocks(2)
        blocks = tuple((i, edge.certifier.task(i).block_digest) for i in range(2))
        certificate = self.certificate_for(env, edge, blocks, cloud)
        # The item list shipped alongside does not match the signed root.
        tampered = (blocks[0], (1, "e" * 64))
        edge.on_message(
            cloud.node_id,
            BatchCertificateMessage(certificate=certificate, blocks=tampered),
        )
        assert edge.stats["proofs_received"] == 0
        assert edge.stats["batch_cert_mismatches"] == 1
        assert edge.log.proof_for(0) is None

    def test_self_issued_certificate_from_non_cloud_rejected(self):
        """A malicious edge (or any registered non-cloud node) signing a
        batch root naming itself as the issuer is not Phase II evidence:
        receivers pin the issuer to their actual cloud node."""

        env, cloud, edge = make_edge_with_blocks(2)
        impostor = edge_id("edge-impostor")
        env.registry.register(impostor)
        blocks = tuple((i, edge.certifier.task(i).block_digest) for i in range(2))
        tree = build_certify_batch_tree(blocks)
        certificate = issue_batch_certificate(
            registry=env.registry,
            cloud=impostor,  # self-consistent signature, wrong issuer
            edge=edge.node_id,
            batch_root=tree.root,
            num_blocks=2,
            certified_at=1.0,
        )
        assert certificate.verify(env.registry)  # signature itself is fine
        edge.on_message(
            impostor,
            BatchCertificateMessage(certificate=certificate, blocks=blocks),
        )
        assert edge.stats["proofs_received"] == 0
        assert edge.log.proof_for(0) is None

    def test_certificate_for_other_edge_ignored(self):
        env, cloud, edge = make_edge_with_blocks(1)
        other = edge_id("edge-other")
        env.registry.register(other)
        blocks = ((0, edge.certifier.task(0).block_digest),)
        tree = build_certify_batch_tree(blocks)
        certificate = issue_batch_certificate(
            registry=env.registry,
            cloud=cloud.node_id,
            edge=other,
            batch_root=tree.root,
            num_blocks=1,
            certified_at=1.0,
        )
        edge.on_message(
            cloud.node_id,
            BatchCertificateMessage(certificate=certificate, blocks=blocks),
        )
        assert edge.stats["proofs_received"] == 0


# ----------------------------------------------------------------------
# Edge retry of overdue certifications
# ----------------------------------------------------------------------
class TestEdgeRetry:
    def test_retry_resends_and_completes(self):
        env, cloud, edge = make_edge_with_blocks(2, batch_size=8)
        # Nothing was ever sent (blocks were injected directly), so both
        # tasks are overdue; the retry goes through the single-block path
        # and the cloud answers with proofs.
        env.scheduler.run_until(5.0)
        sent = edge.retry_overdue_certifications(timeout_s=1.0)
        assert sent == 2
        assert edge.stats["certify_retries"] == 2
        env.run()
        assert edge.certifier.certified_count == 2
        assert edge.certifier.task(0).retries == 1
        assert edge.log.proof_for(0) is not None

    def test_retry_skips_recent_and_certified(self):
        env, cloud, edge = make_edge_with_blocks(1, batch_size=8)
        assert edge.retry_overdue_certifications(timeout_s=10.0) == 0
        env.scheduler.run_until(5.0)
        assert edge.retry_overdue_certifications(timeout_s=1.0) == 1
        env.run()
        # Once certified, nothing is overdue any more.
        assert edge.retry_overdue_certifications(timeout_s=0.0) == 0

    def test_retry_skips_blocks_still_queued_for_dispatch(self):
        """A digest waiting for its batch to ship was never requested, so
        it is not an unanswered request — retry must not re-send it."""

        env, cloud, edge = make_edge_with_blocks(2, batch_size=8)
        edge.certifier.enqueue_for_dispatch(0)  # still awaiting its batch
        env.scheduler.run_until(5.0)
        sent = edge.retry_overdue_certifications(timeout_s=1.0)
        assert sent == 1  # only block 1, which is tracked but not queued
        assert edge.certifier.task(0).retries == 0
        assert edge.certifier.task(1).retries == 1

    def test_retry_rebatches_overdue_digests(self):
        """With batching enabled, a retry wave ships as CertifyBatchRequests
        (one signature per chunk) instead of N single-block requests."""

        env, cloud, edge = make_edge_with_blocks(5, batch_size=3)
        env.scheduler.run_until(5.0)
        before_batches = edge.stats["certify_batches"]
        before_requests = edge.stats["certify_requests"]
        sent = edge.retry_overdue_certifications(timeout_s=1.0)
        assert sent == 5
        assert edge.stats["certify_retries"] == 5
        # 5 overdue digests in chunks of 3 → two batch requests, no singles.
        assert edge.stats["certify_batches"] - before_batches == 2
        assert edge.stats["certify_requests"] - before_requests == 2
        env.run()
        assert edge.certifier.certified_count == 5
        for block_id in range(5):
            assert edge.log.proof_for(block_id) is not None

    def test_retry_batches_are_idempotent_for_certified_blocks(self):
        """A re-batched retry that races an in-flight answer is absorbed by
        the cloud's idempotent batch handling (re-certified, not punished)."""

        env, cloud, edge = make_edge_with_blocks(3, batch_size=3)
        env.scheduler.run_until(5.0)
        assert edge.retry_overdue_certifications(timeout_s=1.0) == 3
        env.run()
        assert edge.certifier.certified_count == 3
        # Everything certified: nothing overdue, nothing re-sent, no
        # conflicts recorded at the cloud.
        assert edge.retry_overdue_certifications(timeout_s=0.0) == 0
        assert cloud.stats["certify_conflicts"] == 0
        assert cloud.ledger.is_punished(edge.node_id) is False


# ----------------------------------------------------------------------
# End-to-end: batched protocol behaves like the per-block protocol
# ----------------------------------------------------------------------
class TestEndToEndBatching:
    def run_workload(self, batch_size, num_puts=12):
        config = batch_config(batch_size)
        system = WedgeChainSystem.build(config=config, num_clients=1, seed=21)
        client = system.client(0)
        operations = []
        for index in range(num_puts):
            items = [(f"key-{index}-{j}", b"v%d" % j) for j in range(4)]
            operations.append((client, client.put_batch(items)))
        assert system.wait_for_all(operations, CommitPhase.PHASE_TWO)
        system.run_for(1.0)
        return system, client, operations

    def test_batched_run_reaches_same_final_state(self):
        unbatched_system, _, _ = self.run_workload(batch_size=1)
        batched_system, _, _ = self.run_workload(batch_size=4)

        unbatched_edge = unbatched_system.edge()
        batched_edge = batched_system.edge()
        # Same logical blocks (batching shifts simulated timestamps, so
        # compare the logged entries, not the timestamped digests), and all
        # of them certified, in both runs.
        assert len(unbatched_edge.log) == len(batched_edge.log)
        for record_a, record_b in zip(unbatched_edge.log, batched_edge.log):
            entries_a = [(e.producer, e.sequence, e.payload) for e in record_a.block.entries]
            entries_b = [(e.producer, e.sequence, e.payload) for e in record_b.block.entries]
            assert entries_a == entries_b
            assert record_a.proof is not None and record_b.proof is not None
        assert (
            unbatched_system.cloud.certified_log_size(unbatched_edge.node_id)
            == batched_system.cloud.certified_log_size(batched_edge.node_id)
        )
        # The batched run needed far fewer certify messages.
        assert (
            batched_edge.stats["certify_requests"]
            < unbatched_edge.stats["certify_requests"]
        )
        assert batched_edge.stats["certify_batches"] > 0
        assert unbatched_edge.stats["certify_batches"] == 0

    def test_batch_size_one_preserves_per_block_wire_format(self):
        config = batch_config(batch_size=1)
        env = local_environment(seed=31)
        cloud = CloudNode(env=env, config=config)

        sent = []
        original_send = env.send

        def recording_send(src, dst, message):
            sent.append(message)
            return original_send(src, dst, message)

        env.send = recording_send
        edge = EdgeNode(env=env, cloud=cloud.node_id, config=config)

        class _ProbeClient:
            node_id = ALICE
            region = edge.region

            def on_message(self, sender, message):
                pass

        env.attach(_ProbeClient())
        from repro.messages.log_messages import AppendBatchRequest
        from repro.common.identifiers import OperationId, OperationKind

        entries = tuple(
            make_entry(env.registry, ALICE, sequence=i, payload=b"x", produced_at=0.0)
            for i in range(4)
        )
        request = AppendBatchRequest(
            requester=ALICE,
            operation_id=OperationId(client=ALICE, sequence=0),
            kind=OperationKind.ADD,
            entries=entries,
        )
        edge.on_message(ALICE, request)
        env.run()
        certify_messages = [
            m for m in sent if isinstance(m, (BlockCertifyRequest, CertifyBatchRequest))
        ]
        assert len(certify_messages) == 1
        assert isinstance(certify_messages[0], BlockCertifyRequest)

    def test_size_flush_cancels_stale_timer(self):
        """A size-triggered flush cancels the pending timeout timer: the
        next digest to arrive gets a fresh full window instead of being
        shipped early (and undersized) by the previous queue's deadline.

        Pipeline depth 2 gives the second (partial) batch a free window
        slot: this test is about timer freshness, not window flow control —
        the certify round trip in this environment (~61 ms WAN) outlasts
        both timer deadlines, so at depth 1 the partial batch would
        correctly park behind the first batch instead of shipping on time.
        """

        env, cloud, edge = make_edge_with_blocks(4, batch_size=3, pipeline_depth=2)
        blocks = [edge.log.block(i) for i in range(4)]
        start = env.now()
        timeout = edge.config.logging.certify_flush_timeout_s

        # Blocks 0-1 arm the timer; block 2 fills the batch and flushes.
        for block in blocks[:3]:
            edge._send_certify_request(block, block.digest())
        assert edge.stats["certify_batches"] == 1
        assert edge._certify_flush_timer is None

        # Block 3 arrives late in what would have been the stale window.
        env.scheduler.run_until(start + timeout * 0.8)
        edge._send_certify_request(blocks[3], blocks[3].digest())
        # Past the stale deadline: the old timer must not have fired.
        env.scheduler.run_until(start + timeout * 1.2)
        assert edge.stats["certify_batches"] == 1
        assert edge.certifier.pending_dispatch_count == 1
        # The fresh window expires: now the partial batch ships.
        env.scheduler.run_until(start + timeout * 2.1)
        assert edge.stats["certify_batches"] == 2

    def test_partial_batch_flushed_by_timeout(self):
        config = batch_config(batch_size=10)  # never fills from 3 blocks
        system = WedgeChainSystem.build(config=config, num_clients=1, seed=23)
        client = system.client(0)
        operations = [
            (client, client.put_batch([(f"k{i}-{j}", b"v") for j in range(4)]))
            for i in range(3)
        ]
        assert system.wait_for_all(operations, CommitPhase.PHASE_TWO, max_time_s=30.0)
        edge = system.edge()
        assert edge.stats["certify_batches"] >= 1
        assert edge.certifier.certified_count == edge.stats["blocks_formed"]

    def test_batched_reads_get_batch_anchored_proofs(self):
        config = batch_config(batch_size=4)
        system = WedgeChainSystem.build(config=config, num_clients=1, seed=25)
        client = system.client(0)
        operations = [
            (client, client.add_batch([b"e%d%d" % (i, j) for j in range(4)]))
            for i in range(4)
        ]
        assert system.wait_for_all(operations, CommitPhase.PHASE_TWO)
        read_op = client.read(0)
        system.wait_for(client, read_op, CommitPhase.PHASE_TWO)
        record = client.operation(read_op)
        assert record.phase is CommitPhase.PHASE_TWO
