"""Regression pins for duplicate-delivery idempotency.

The fault injector's ``duplicate`` rules and the unified retransmission
timers both redeliver protocol messages, so every handler on a redelivery
path must be idempotent.  Each test here captures real messages off the
wire with a named send hook, re-sends a captured copy through the network,
and pins the dedupe counter plus the unchanged observable state.  These are
the exact double-apply bugs the duplicate-delivery audit fixed; the pins
keep them fixed.
"""

from __future__ import annotations

from repro.common.config import (
    LoggingConfig,
    LSMerkleConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.core.system import WedgeChainSystem
from repro.log.proofs import CommitPhase
from repro.messages import MergeRequest, MergeResponse
from repro.messages.log_messages import AppendBatchRequest, BatchCertificateMessage
from repro.messages.shard_messages import (
    ShardHandoffRequest,
    ShardInstallAck,
    ShardTransferMessage,
)
from repro.sharding import ShardedWedgeSystem
from repro.sim.environment import local_environment
from repro.workloads.generator import format_key


class MessageTap:
    """Named send hook that records matching traffic without touching it."""

    def __init__(self, env, *message_types):
        self.records: list[tuple] = []  # (src, dst, message)
        self._types = message_types
        env.network.add_send_hook("test:message-tap", self._observe)

    def _observe(self, src, dst, message) -> bool:
        if isinstance(message, self._types):
            self.records.append((src, dst, message))
        return True

    def first(self, message_type):
        for src, dst, message in self.records:
            if isinstance(message, message_type):
                return src, dst, message
        raise AssertionError(f"no {message_type.__name__} captured")

    def count(self, message_type) -> int:
        return sum(
            1 for _, _, message in self.records if isinstance(message, message_type)
        )


# ----------------------------------------------------------------------
# Merge protocol (edge <-> cloud)
# ----------------------------------------------------------------------
def merged_system():
    """A single-edge system that has completed at least one merge, with the
    merge round-trip captured off the wire."""

    config = SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=5, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )
    system = WedgeChainSystem.build(
        config=config, num_clients=1, env=local_environment(seed=71)
    )
    tap = MessageTap(system.env, MergeRequest, MergeResponse)
    client = system.clients[0]
    for block in range(6):
        items = [
            (format_key(block * 5 + i), b"v%d-%d" % (block, i)) for i in range(5)
        ]
        op = client.put_batch(items)
        assert (
            system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=60)
            is CommitPhase.PHASE_TWO
        )
    system.run()
    edge = system.edge()
    assert edge.stats["merges_completed"] >= 1
    assert tap.count(MergeRequest) >= 1 and tap.count(MergeResponse) >= 1
    return system, edge, tap


class TestMergeIdempotency:
    def test_duplicate_merge_response_is_counted_not_reapplied(self):
        system, edge, tap = merged_system()
        merges_before = edge.stats["merges_completed"]
        root_before = edge.signed_root
        src, dst, response = tap.first(MergeResponse)
        system.env.send(src, dst, response)
        system.run()
        assert edge.stats["merge_duplicates"] >= 1
        assert edge.stats["merges_completed"] == merges_before
        assert edge.signed_root is root_before

    def test_duplicate_merge_request_reanswered_without_punishment(self):
        system, edge, tap = merged_system()
        cloud = system.cloud
        merges_before = cloud.stats["merges"]
        src, dst, request = tap.first(MergeRequest)
        system.env.send(src, dst, request)
        system.run()
        # The cloud re-sends the stored response instead of re-running the
        # merge against its advanced mirror (which would raise a protocol
        # error and falsely punish the honest edge).
        assert cloud.stats["merge_duplicate_requests"] >= 1
        assert cloud.stats["merges"] == merges_before
        assert cloud.stats["punishments"] == 0
        # The re-answered response lands at the edge as a benign duplicate.
        assert edge.stats["merge_duplicates"] >= 1


# ----------------------------------------------------------------------
# Certified shard handoff (source edge <-> cloud <-> dest edge)
# ----------------------------------------------------------------------
def completed_handoff():
    """A two-edge fleet after one certified handoff, with the handoff
    request, transfer, and install-ack captured off the wire."""

    config = SystemConfig.paper_default().with_overrides(
        num_edge_nodes=2,
        sharding=ShardingConfig(num_shards=4, partitioner="hash-ring"),
        logging=LoggingConfig(block_size=5, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )
    system = ShardedWedgeSystem.build(
        config=config, num_clients=1, env=local_environment(seed=73)
    )
    tap = MessageTap(
        system.env, ShardHandoffRequest, ShardTransferMessage, ShardInstallAck
    )
    client = system.clients[0]
    operations = [
        (client, client.put(format_key(i), b"v%d" % i)) for i in range(20)
    ]
    assert system.wait_for_all(operations, CommitPhase.PHASE_TWO, max_time_s=300)
    system.run()
    source = system.edges[0]
    shard = max(source.shard_entry_counts, key=source.shard_entry_counts.get)
    dest = system.edges[1]
    system.rebalance_shard(shard, dest.node_id)
    system.run_for(10.0)
    system.run()
    assert system.shard_owner(shard) == dest.node_id
    assert system.cloud.stats["shard_installs"] == 1
    return system, source, dest, shard, tap


class TestHandoffIdempotency:
    def test_duplicate_handoff_request_regrants_same_certificate(self):
        system, source, dest, shard, tap = completed_handoff()
        src, dst, request = tap.first(ShardHandoffRequest)
        system.env.send(src, dst, request)
        system.run()
        cloud = system.cloud
        # The stored countersigned grant is re-sent; no second handoff
        # starts and the source (whose shard is long gone) ignores it.
        assert cloud.stats["shard_handoff_regrants"] == 1
        assert cloud.stats["shard_handoffs_granted"] == 1
        assert cloud.stats["shard_installs"] == 1
        assert source.stats["shard_handoffs_out"] == 1
        assert system.shard_owner(shard) == dest.node_id

    def test_duplicate_transfer_reacked_without_reinstall(self):
        system, source, dest, shard, tap = completed_handoff()
        state_before = dest.shard_state(shard)
        src, dst, transfer = tap.first(ShardTransferMessage)
        system.env.send(src, dst, transfer)
        system.run()
        assert dest.stats["shard_transfer_duplicates"] == 1
        assert dest.stats["shard_handoffs_in"] == 1
        # The live partition was not overwritten by the replayed snapshot.
        assert dest.shard_state(shard) is state_before
        # The dest re-acked (so a source with a lost ack stops resending);
        # the cloud deduplicates the extra ack instead of double-counting.
        assert system.cloud.stats["shard_installs"] == 1
        assert system.cloud.stats.get("shard_install_ack_duplicates", 0) >= 1

    def test_duplicate_install_ack_not_double_counted(self):
        system, source, dest, shard, tap = completed_handoff()
        src, dst, ack = next(
            record
            for record in tap.records
            if isinstance(record[2], ShardInstallAck) and record[1] == system.cloud.node_id
        )
        system.env.send(src, dst, ack)
        system.run()
        assert system.cloud.stats["shard_install_ack_duplicates"] == 1
        assert system.cloud.stats["shard_installs"] == 1


# ----------------------------------------------------------------------
# Append path and certificates (client <-> edge <-> cloud)
# ----------------------------------------------------------------------
class TestAppendIdempotency:
    def test_buffered_duplicate_append_applies_once(self):
        # A long block timeout keeps a partial batch buffered: the
        # ``entry_locations`` replay map only covers formed blocks, so the
        # buffer itself must refuse the in-flight duplicate.
        config = SystemConfig.paper_default().with_overrides(
            logging=LoggingConfig(block_size=5, block_timeout_s=30.0),
            lsmerkle=LSMerkleConfig(level_thresholds=(4, 4, 8, 16)),
        )
        system = WedgeChainSystem.build(
            config=config, num_clients=1, env=local_environment(seed=79)
        )
        tap = MessageTap(system.env, AppendBatchRequest)
        client = system.clients[0]
        op = client.put_batch([(format_key(0), b"a"), (format_key(1), b"b")])
        system.run_for(1.0)
        edge = system.edge()
        assert len(edge.buffer) == 2  # still buffered, block not formed
        src, dst, request = tap.first(AppendBatchRequest)
        system.env.send(src, dst, request)
        system.run_for(1.0)
        assert edge.stats["buffered_duplicate_entries"] == 2
        assert len(edge.buffer) == 2  # not buffered twice
        # Fill the block; exactly five entries (not seven) land in the log.
        fill = client.put_batch(
            [(format_key(i), b"c%d" % i) for i in range(2, 5)]
        )
        assert (
            system.wait_for(client, fill, CommitPhase.PHASE_TWO, max_time_s=60)
            is CommitPhase.PHASE_TWO
        )
        assert (
            system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=60)
            is CommitPhase.PHASE_TWO
        )
        system.run()
        assert edge.log.total_entries() == 5

    def test_duplicate_batch_certificate_is_benign(self):
        config = SystemConfig.paper_default().with_overrides(
            logging=LoggingConfig(
                block_size=5,
                block_timeout_s=0.02,
                certify_batch_size=2,
                certify_flush_timeout_s=0.02,
            ),
        )
        system = WedgeChainSystem.build(
            config=config, num_clients=1, env=local_environment(seed=83)
        )
        tap = MessageTap(system.env, BatchCertificateMessage)
        client = system.clients[0]
        op = client.put_batch([(format_key(i), b"v%d" % i) for i in range(5)])
        assert (
            system.wait_for(client, op, CommitPhase.PHASE_TWO, max_time_s=60)
            is CommitPhase.PHASE_TWO
        )
        system.run()
        edge = system.edge()
        certified_before = edge.certifier.certified_count
        src, dst, certificate = tap.first(BatchCertificateMessage)
        system.env.send(src, dst, certificate)
        system.run()
        assert edge.certifier.certified_count == certified_before
        assert system.cloud.stats["punishments"] == 0
