"""The codec is the wire format: coverage and round-trip byte-identity.

The live transport (:mod:`repro.service`) frames every protocol message
through :func:`repro.storage.codec.encode_record`, so a message class
missing from the storable registry is a crash on its first live send.
These tests pin the contract from both ends:

* every class in :data:`repro.messages.WIRE_MESSAGE_TYPES` (and the
  statement types nested inside them) resolves in the codec registry;
* every message actually emitted by representative deployments — the plain
  system with gossip and reads, a replicated sharded fleet, a cross-shard
  transaction — survives ``encode → decode → encode`` with byte-identical
  output (the property-style sweep over real traffic, not synthetic
  fixtures).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import messages as messages_pkg
from repro.common.config import (
    LoggingConfig,
    LSMerkleConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.core.system import WedgeChainSystem
from repro.log.proofs import CommitPhase
from repro.messages import WIRE_MESSAGE_TYPES
from repro.sharding.system import ShardedWedgeSystem
from repro.sim.environment import local_environment
from repro.storage.codec import _TYPES, decode_record, encode_record, register_storable
from repro.workloads.generator import format_key


def _capture_traffic(system, run):
    """Run *run* with a send hook recording every message on the wire."""

    captured = []

    def hook(src, dst, message):
        captured.append(message)
        return True

    system.env.network.add_send_hook("codec-capture", hook)
    try:
        run()
    finally:
        system.env.network.remove_send_hook("codec-capture")
    return captured


def _plain_system_traffic():
    system = WedgeChainSystem.build(
        num_clients=2,
        env=local_environment(seed=21),
        enable_gossip=True,
    )

    def run():
        client = system.client(0)
        operations = [
            (client, client.put_batch([(format_key(i), b"v%d" % i) for i in range(10)]))
        ]
        assert system.wait_for_all(operations, CommitPhase.PHASE_TWO)
        read = client.get(format_key(3))
        system.wait_for(client, read, CommitPhase.PHASE_TWO)
        # Let gossip rounds fire; a full run() would never return with the
        # periodic gossip timer rescheduling itself.
        system.run_for(2.5)

    return _capture_traffic(system, run)


def _sharded_replicated_traffic():
    config = SystemConfig.paper_default().with_overrides(
        num_edge_nodes=3,
        sharding=ShardingConfig(num_shards=6, replication_factor=3),
        logging=LoggingConfig(block_size=5, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )
    system = ShardedWedgeSystem.build(
        config=config,
        num_clients=2,
        env=local_environment(seed=22),
    )

    def run():
        client = system.clients[0]
        operations = [
            (client, op)
            for index in range(12)
            for op in client.put_batch([(format_key(index), b"r%d" % index)])
        ]
        assert system.wait_for_all(operations, CommitPhase.PHASE_TWO)
        system.clients[1].txn_put(
            [(format_key(100), b"t0"), (format_key(101), b"t1"), (format_key(102), b"t2")]
        )
        system.run_for(3.0)

    return _capture_traffic(system, run)


@pytest.fixture(scope="module")
def wire_traffic():
    return _plain_system_traffic() + _sharded_replicated_traffic()


class TestRegistryCoverage:
    def test_every_wire_message_class_is_registered(self):
        for cls in WIRE_MESSAGE_TYPES:
            assert _TYPES.get(cls.__name__) is cls, f"{cls.__name__} not registered"

    def test_every_message_module_dataclass_is_registered(self):
        # Statements and nested payload types ride inside the envelopes;
        # they must decode too.
        for module_name in (
            "kv_messages",
            "log_messages",
            "shard_messages",
            "txn_messages",
        ):
            module = getattr(messages_pkg, module_name)
            for obj in vars(module).values():
                if (
                    isinstance(obj, type)
                    and dataclasses.is_dataclass(obj)
                    and obj.__module__ == module.__name__
                ):
                    assert _TYPES.get(obj.__name__) is obj, obj.__name__

    def test_register_storable_rejects_name_collision(self):
        class Block:  # same name as the registered log Block
            pass

        with pytest.raises(ValueError, match="collision"):
            register_storable(Block)

    def test_register_storable_is_idempotent_for_same_class(self):
        from repro.messages import AppendBatchRequest

        assert register_storable(AppendBatchRequest) is AppendBatchRequest


class TestRoundTripProperty:
    def test_traffic_covers_a_broad_message_surface(self, wire_traffic):
        seen = {type(message).__name__ for message in wire_traffic}
        wire_names = {cls.__name__ for cls in WIRE_MESSAGE_TYPES}
        covered = seen & wire_names
        # The two deployments exercise the log, KV, gossip, sharded, replica,
        # and transaction paths; a shrinking surface means the scenarios (or
        # the protocol) silently stopped sending something.
        assert len(covered) >= 15, sorted(covered)

    def test_every_captured_message_roundtrips_byte_identically(self, wire_traffic):
        assert wire_traffic, "scenarios produced no traffic"
        for message in wire_traffic:
            first = encode_record(message)
            rebuilt = decode_record(first)
            assert type(rebuilt) is type(message)
            second = encode_record(rebuilt)
            assert first == second, type(message).__name__

    def test_decoded_enum_fields_are_real_enums(self):
        from repro.common.identifiers import (
            NodeRole,
            OperationId,
            OperationKind,
            client_id,
        )
        from repro.messages import AppendBatchRequest

        client = client_id("roundtrip-client")
        message = AppendBatchRequest(
            requester=client,
            operation_id=OperationId(client=client, sequence=5),
            kind=OperationKind.PUT,
            entries=((b"key", b"value"),),
            request_block=False,
            shard_id=0,
        )
        rebuilt = decode_record(encode_record(message))
        assert rebuilt.kind is OperationKind.PUT
        assert rebuilt.requester.role is NodeRole.CLIENT
        assert rebuilt == message
