"""End-to-end behaviour of the sharded fleet: routing, redirects, handoff."""

from __future__ import annotations

from repro.common.config import (
    LoggingConfig,
    LSMerkleConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.log.proofs import CommitPhase
from repro.sharding import ShardedWedgeSystem
from repro.sim.environment import local_environment
from repro.workloads.generator import format_key


def fleet_config(num_edges=3, num_shards=6, partitioner="hash-ring"):
    return SystemConfig.paper_default().with_overrides(
        num_edge_nodes=num_edges,
        sharding=ShardingConfig(num_shards=num_shards, partitioner=partitioner),
        logging=LoggingConfig(block_size=5, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )


def build_fleet(num_edges=3, num_shards=6, num_clients=2, seed=13, **kwargs):
    return ShardedWedgeSystem.build(
        config=fleet_config(num_edges=num_edges, num_shards=num_shards, **kwargs),
        num_clients=num_clients,
        env=local_environment(seed=seed),
    )


def write_keys(system, client, count, phase=CommitPhase.PHASE_TWO):
    operations = [
        (client, client.put(format_key(index), b"v%d" % index))
        for index in range(count)
    ]
    assert system.wait_for_all(operations, phase, max_time_s=300)
    system.run()
    return operations


class TestFleetBasics:
    def test_every_shard_has_exactly_one_owner(self):
        system = build_fleet()
        owners = [system.shard_owner(shard) for shard in range(6)]
        assert all(owner is not None for owner in owners)
        edge_ids = {edge.node_id for edge in system.edges}
        assert set(owners) <= edge_ids
        # Round-robin assignment touches every edge.
        assert len(set(owners)) == len(edge_ids)

    def test_any_client_reads_and_writes_any_key(self):
        system = build_fleet()
        writer, reader = system.clients
        write_keys(system, writer, 30)
        # Writes spread across the fleet (no edge served everything).
        blocks = [edge.stats["blocks_formed"] for edge in system.edges]
        assert sum(blocks) > 0 and max(blocks) < sum(blocks)
        # A different client reads every key back, verified, from whichever
        # edge owns it.
        for index in (0, 7, 19, 29):
            get_op = reader.get(format_key(index))
            phase = system.wait_for(reader, get_op, CommitPhase.PHASE_TWO, 60)
            assert phase is CommitPhase.PHASE_TWO
            assert reader.value_of(get_op) == b"v%d" % index
            record = reader.tracker.get(get_op)
            shard = system.partitioner.shard_of(format_key(index))
            assert record.details["edge"] == system.shard_owner(shard)

    def test_split_batches_commit_across_edges(self):
        system = build_fleet()
        client = system.clients[0]
        items = [(format_key(index), b"b%d" % index) for index in range(25)]
        operations = client.put_batch(items)
        assert len(operations) > 1  # the batch fanned out per owner
        assert system.wait_for_all(
            [(client, op) for op in operations], CommitPhase.PHASE_TWO, 120
        )
        for operation in operations:
            assert client.tracker.get(operation).phase is CommitPhase.PHASE_TWO

    def test_misroute_answered_with_signed_redirect_and_reissued(self):
        system = build_fleet()
        client = system.clients[0]
        write_keys(system, client, 10)
        key = format_key(3)
        shard = system.partitioner.shard_of(key)
        owner = system.shard_owner(shard)
        wrong_edge = next(e for e in system.edges if e.node_id != owner)
        before = wrong_edge.stats["shard_redirects"]
        get_op = client.get(key, edge=wrong_edge.node_id)
        phase = system.wait_for(client, get_op, CommitPhase.PHASE_TWO, 60)
        # The wrong edge refused with a signed redirect; the client followed
        # it and the operation still committed at the true owner.
        assert wrong_edge.stats["shard_redirects"] == before + 1
        assert client.stats["redirects_followed"] >= 1
        assert phase is CommitPhase.PHASE_TWO
        assert client.value_of(get_op) == b"v3"
        assert client.tracker.get(get_op).details["edge"] == owner


class TestCertifiedHandoff:
    def test_handoff_moves_shard_and_serving_continues(self):
        system = build_fleet(num_edges=2, num_shards=4)
        client = system.clients[0]
        write_keys(system, client, 40)
        source = system.edges[0]
        shard = max(source.shard_entry_counts, key=source.shard_entry_counts.get)
        dest = system.edges[1]
        moved_key = next(
            format_key(i)
            for i in range(40)
            if system.partitioner.shard_of(format_key(i)) == shard
        )

        system.rebalance_shard(shard, dest.node_id)
        system.run_for(10.0)
        system.run()

        assert system.shard_owner(shard) == dest.node_id
        assert source.stats["shard_handoffs_out"] == 1
        assert dest.stats["shard_handoffs_in"] == 1
        assert system.cloud.stats["shard_handoffs_granted"] == 1
        assert system.cloud.stats["shard_installs"] == 1
        assert dest.shard_state(shard) is not None
        assert source.shard_state(shard) is None
        # The map republish bumped every view to version 2.
        assert client.fleet_view.shard_map.version == 2
        assert dest.map_view.version == 2

        # Reads and writes of the moved keys go to the new owner, verified.
        get_op = client.get(moved_key)
        assert system.wait_for(client, get_op, CommitPhase.PHASE_TWO, 60) is (
            CommitPhase.PHASE_TWO
        )
        assert client.value_of(get_op) is not None
        put_op = client.put(moved_key, b"new-value")
        assert system.wait_for(client, put_op, CommitPhase.PHASE_TWO, 60) is (
            CommitPhase.PHASE_TWO
        )
        get_again = client.get(moved_key)
        system.wait_for(client, get_again, CommitPhase.PHASE_TWO, 60)
        assert client.value_of(get_again) == b"new-value"

    def test_destination_merges_adopted_shard_after_handoff(self):
        """The destination's own level-0 merges for an adopted shard must
        succeed: block ids are per-edge, so the source's consumed ids must
        not shadow the destination's new blocks at the cloud mirror."""

        system = build_fleet(num_edges=2, num_shards=4)
        client = system.clients[0]
        write_keys(system, client, 40)
        source = system.edges[0]
        shard = max(source.shard_entry_counts, key=source.shard_entry_counts.get)
        dest = system.edges[1]
        system.rebalance_shard(shard, dest.node_id)
        system.run_for(10.0)
        system.run()
        assert dest.shard_state(shard) is not None

        # Write enough keys of the moved shard to force level-0 merges of
        # the adopted partition at the destination.
        moved_keys = [
            format_key(i)
            for i in range(200)
            if system.partitioner.shard_of(format_key(i)) == shard
        ][:30]
        rejected_before = dest.stats["merges_rejected"]
        operations = [
            (client, client.put(key, b"post-%d" % i))
            for i, key in enumerate(moved_keys)
        ]
        assert system.wait_for_all(operations, CommitPhase.PHASE_TWO, 300)
        system.run()
        state = dest.shard_state(shard)
        assert dest.stats["merges_rejected"] == rejected_before
        # Level 0 drained into the merged levels (threshold 2 in this config).
        assert state.index.tree.level_zero.num_pages <= 2
        # And the merged state stays readable, verified, at the destination.
        get_op = client.get(moved_keys[0])
        assert (
            system.wait_for(client, get_op, CommitPhase.PHASE_TWO, 60)
            is CommitPhase.PHASE_TWO
        )
        assert client.value_of(get_op) == b"post-0"

    def test_rebalance_trigger_moves_hot_shard(self):
        # Range partitioning + low-index keys: all load lands on shard 0's
        # owner, which is exactly what the trigger should correct.
        system = build_fleet(num_edges=2, num_shards=4, partitioner="range")
        client = system.clients[0]
        write_keys(system, client, 40)
        action = system.maybe_rebalance()
        assert action is not None
        assert action.source != action.dest
        system.run_for(10.0)
        system.run()
        assert system.shard_owner(action.shard_id) == action.dest
        assert system.cloud.stats["shard_installs"] == 1

    def test_handoff_of_empty_shard(self):
        system = build_fleet(num_edges=2, num_shards=4)
        source_shard = next(
            shard
            for shard in system.edges[0].owned_shards()
            if not system.edges[0].shard_entry_counts.get(shard)
        )
        system.rebalance_shard(source_shard, system.edges[1].node_id)
        system.run_for(10.0)
        system.run()
        assert system.shard_owner(source_shard) == system.edges[1].node_id
        assert system.cloud.stats["shard_installs"] == 1

    def test_log_reads_survive_handoff_via_archive(self):
        system = build_fleet(num_edges=2, num_shards=4)
        client = system.clients[0]
        write_keys(system, client, 40)
        source = system.edges[0]
        shard = max(source.shard_entry_counts, key=source.shard_entry_counts.get)
        # A block of the shard, readable before the handoff …
        block_id = next(
            bid for bid, sid in source._block_shards.items() if sid == shard
        )
        system.rebalance_shard(shard, system.edges[1].node_id)
        system.run_for(10.0)
        system.run()
        # … is still served (certified under this edge's name) afterwards.
        read_op = client.read(block_id, edge=source.node_id)
        phase = system.wait_for(client, read_op, CommitPhase.PHASE_TWO, 60)
        assert phase is CommitPhase.PHASE_TWO


class TestSingleEdgeDegeneration:
    def test_single_edge_fleet_behaves_like_one_partition_per_shard(self):
        system = build_fleet(num_edges=1, num_shards=4, num_clients=1)
        client = system.clients[0]
        write_keys(system, client, 20)
        edge = system.edges[0]
        assert edge.stats["shard_redirects"] == 0
        assert set(edge.owned_shards()) == {0, 1, 2, 3}
        get_op = client.get(format_key(5))
        assert system.wait_for(client, get_op, CommitPhase.PHASE_TWO, 60) is (
            CommitPhase.PHASE_TWO
        )
        assert client.value_of(get_op) == b"v5"
