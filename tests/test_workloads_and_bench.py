"""Unit tests for workload generation, the closed-loop driver, and the
benchmark harness plumbing (result tables, runner helpers)."""

from __future__ import annotations

import pytest

from repro.common import ConfigurationError, WorkloadConfig
from repro.common.config import SystemConfig
from repro.bench.results import ResultTable
from repro.bench.runner import (
    SYSTEM_KINDS,
    build_system,
    config_for_batch,
    run_workload,
    write_workload,
)
from repro.sim.rng import DeterministicRng
from repro.workloads.driver import ClosedLoopDriver
from repro.workloads.generator import KeySpace, KeyValueWorkload, ReadOp, WriteOp, format_key


class TestKeySpace:
    def test_sample_stays_in_range(self):
        space = KeySpace(size=50)
        rng = DeterministicRng(1)
        for _ in range(200):
            key = space.sample(rng)
            index = int(key.removeprefix("key"))
            assert 0 <= index < 50

    def test_zipfian_is_skewed_towards_small_indices(self):
        space = KeySpace(size=10_000, distribution="zipfian", zipf_theta=0.99)
        rng = DeterministicRng(2)
        draws = [int(space.sample(rng).removeprefix("key")) for _ in range(2000)]
        head = sum(1 for value in draws if value < 1000)
        assert head > len(draws) * 0.25  # far more than the uniform 10 %

    def test_sequential_wraps_around(self):
        space = KeySpace(size=3)
        generator = space.sequential()
        keys = [next(generator) for _ in range(5)]
        assert keys[0] == keys[3]

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            KeySpace(size=0)
        with pytest.raises(ConfigurationError):
            KeySpace(size=5, distribution="normal")


class TestKeyValueWorkload:
    def test_deterministic_given_seed(self):
        config = WorkloadConfig(seed=42, read_fraction=0.3)
        first = [type(op).__name__ for op in KeyValueWorkload(config).operations(50)]
        second = [type(op).__name__ for op in KeyValueWorkload(config).operations(50)]
        assert first == second

    def test_clients_get_independent_streams(self):
        config = WorkloadConfig(seed=42)
        a = KeyValueWorkload(config, client_index=0).write_batch(5)
        b = KeyValueWorkload(config, client_index=1).write_batch(5)
        assert a != b

    def test_read_fraction_respected_roughly(self):
        config = WorkloadConfig(seed=1, read_fraction=0.5, operations_per_client=400)
        ops = list(KeyValueWorkload(config).operations())
        reads = sum(1 for op in ops if isinstance(op, ReadOp))
        assert 0.35 * len(ops) < reads < 0.65 * len(ops)

    def test_all_write_workload_has_no_reads(self):
        config = WorkloadConfig(seed=1, read_fraction=0.0)
        ops = list(KeyValueWorkload(config).operations(100))
        assert all(isinstance(op, WriteOp) for op in ops)

    def test_values_have_configured_size_and_are_unique(self):
        config = WorkloadConfig(seed=1, value_size=64)
        workload = KeyValueWorkload(config)
        values = [workload.next_value() for _ in range(10)]
        assert all(len(value) == 64 for value in values)
        assert len(set(values)) == 10

    def test_preload_items_are_sequential(self):
        workload = KeyValueWorkload(WorkloadConfig(seed=1, key_space=100))
        items = workload.preload_items(5)
        assert [key for key, _ in items] == [format_key(i) for i in range(5)]


class TestClosedLoopDriver:
    def _run(self, kind: str, read_fraction: float = 0.0):
        config = config_for_batch(10)
        workload = WorkloadConfig(
            num_clients=2,
            batch_size=10,
            operations_per_client=40,
            read_fraction=read_fraction,
            key_space=200,
            seed=3,
        )
        system = build_system(kind, config=config, num_clients=2)
        driver = ClosedLoopDriver(system, workload)
        result = driver.run(max_time_s=600)
        return result

    @pytest.mark.parametrize("kind", SYSTEM_KINDS)
    def test_all_operations_complete_on_every_system(self, kind):
        result = self._run(kind)
        assert result.all_finished
        assert result.operations_completed == 80
        assert result.throughput_ops_per_s > 0

    def test_mixed_workload_counts_reads_and_writes(self):
        result = self._run("wedgechain", read_fraction=0.5)
        assert result.all_finished
        assert 0 < result.operations_completed <= 80
        assert result.requests_sent >= result.operations_completed / 10


class TestResultTable:
    def test_add_row_and_column_access(self):
        table = ResultTable(title="T", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a=2, b=3.5)
        assert table.column("a") == [1, 2]
        assert table.rows_where(a=2)[0]["b"] == 3.5

    def test_unknown_column_rejected(self):
        table = ResultTable(title="T", columns=["a"])
        with pytest.raises(ConfigurationError):
            table.add_row(z=1)
        with pytest.raises(ConfigurationError):
            table.column("z")

    def test_format_contains_title_and_values(self):
        table = ResultTable(title="Latency", columns=["system", "ms"], notes="demo")
        table.add_row(system="WedgeChain", ms=15.2)
        rendered = table.format()
        assert "Latency" in rendered
        assert "WedgeChain" in rendered
        assert "note: demo" in rendered

    def test_to_csv(self):
        table = ResultTable(title="T", columns=["a", "b"])
        table.add_row(a=1, b=2)
        csv = table.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert csv.splitlines()[1] == "1,2"


class TestRunner:
    def test_build_system_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            build_system("mainframe")

    def test_write_workload_shape(self):
        workload = write_workload(batch_size=50, num_batches=4, num_clients=2)
        assert workload.operations_per_client == 200
        assert workload.read_fraction == 0.0

    def test_config_for_batch_aligns_block_size(self):
        config = config_for_batch(500)
        assert config.logging.block_size == 500
        assert isinstance(config, SystemConfig)

    def test_run_workload_produces_metrics(self):
        workload = write_workload(batch_size=20, num_batches=3)
        metrics = run_workload("wedgechain", workload, config=config_for_batch(20), drain=True)
        assert metrics.operations_completed == 60
        assert metrics.mean_commit_latency_ms > 0
        assert metrics.mean_phase_two_latency_ms > metrics.mean_commit_latency_ms
        assert metrics.failed_operations == 0
        assert metrics.wan_bytes > 0

    def test_wedgechain_commits_faster_than_baselines(self):
        workload = write_workload(batch_size=50, num_batches=3)
        config = config_for_batch(50)
        wedge = run_workload("wedgechain", workload, config=config)
        cloud = run_workload("cloud-only", workload, config=config)
        edge_baseline = run_workload("edge-baseline", workload, config=config)
        assert wedge.mean_commit_latency_ms < cloud.mean_commit_latency_ms
        assert cloud.mean_commit_latency_ms < edge_baseline.mean_commit_latency_ms
