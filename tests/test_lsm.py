"""Unit and property-based tests for the LSM substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError, ProtocolError
from repro.common.config import LSMerkleConfig
from repro.lsm.compaction import (
    merge_levels,
    merge_sorted_runs,
    merge_sorted_runs_heapq,
    newest_versions,
    partition_into_pages,
)
from repro.lsm.level import Level
from repro.lsm.lsm_tree import LSMTree
from repro.lsm.page import build_page
from repro.lsm.records import KEY_MIN, KeyFence, KVRecord, fences_are_contiguous


def record(key: str, sequence: int, value: bytes = b"v") -> KVRecord:
    return KVRecord(key=key, sequence=sequence, value=value)


class TestKeyFence:
    def test_contains_half_open_semantics(self):
        fence = KeyFence(lower="b", upper="d")
        assert fence.contains("b")
        assert fence.contains("c")
        assert not fence.contains("d")
        assert not fence.contains("a")

    def test_unbounded_upper(self):
        fence = KeyFence(lower="m", upper=None)
        assert fence.contains("zzz")
        assert fence.is_unbounded_above

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            KeyFence(lower="z", upper="a")

    def test_abuts_and_overlaps(self):
        left = KeyFence(lower=KEY_MIN, upper="m")
        right = KeyFence(lower="m", upper=None)
        assert left.abuts(right)
        assert not left.overlaps(right)
        assert left.overlaps(KeyFence(lower="a", upper="c"))

    def test_fences_are_contiguous(self):
        fences = [
            KeyFence(lower=KEY_MIN, upper="g"),
            KeyFence(lower="g", upper="p"),
            KeyFence(lower="p", upper=None),
        ]
        assert fences_are_contiguous(fences)
        assert not fences_are_contiguous(list(reversed(fences)))
        assert fences_are_contiguous([])


class TestPage:
    def test_records_sorted_and_lookup_latest(self):
        page = build_page(
            [record("b", 2), record("a", 1), record("b", 5)], created_at=1.0
        )
        assert page.keys() == ("a", "b", "b")
        assert page.lookup("b").sequence == 5
        assert page.lookup("missing") is None

    def test_rejects_unsorted_records(self):
        from repro.lsm.page import Page

        with pytest.raises(ProtocolError):
            Page(
                records=(record("b", 1), record("a", 2)),
                fence=KeyFence.covering_everything(),
                created_at=0.0,
            )

    def test_rejects_records_outside_fence(self):
        from repro.lsm.page import Page

        with pytest.raises(ProtocolError):
            Page(
                records=(record("a", 1),),
                fence=KeyFence(lower="b", upper=None),
                created_at=0.0,
            )

    def test_digest_is_content_sensitive_and_cached(self):
        page_a = build_page([record("a", 1)], created_at=1.0)
        page_b = build_page([record("a", 2)], created_at=1.0)
        assert page_a.digest() != page_b.digest()
        assert page_a.digest() == page_a.digest()

    def test_min_max_keys(self):
        page = build_page([record("c", 1), record("a", 2)], created_at=0.0)
        assert page.min_key == "a"
        assert page.max_key == "c"


class TestLevel:
    def test_level_zero_append_order_and_lookup(self):
        level = Level(index=0, threshold=4)
        level.append_page(build_page([record("x", 1)], created_at=0.0))
        level.append_page(build_page([record("x", 7)], created_at=1.0))
        assert level.lookup("x").sequence == 7
        assert level.num_pages == 2
        assert not level.exceeds_threshold

    def test_append_page_only_on_level_zero(self):
        level = Level(index=1, threshold=4)
        with pytest.raises(ProtocolError):
            level.append_page(build_page([record("x", 1)], created_at=0.0))

    def test_sorted_level_requires_contiguous_fences(self):
        level = Level(index=1, threshold=4)
        good = partition_into_pages(
            [record("a", 1), record("b", 2), record("c", 3)], page_capacity=2, created_at=0.0
        )
        level.replace_pages(good)
        assert level.num_pages == 2
        bad = [build_page([record("a", 1)], created_at=0.0, fence=KeyFence("a", "b"))]
        with pytest.raises(ProtocolError):
            level.replace_pages(bad)

    def test_intersecting_page_unique(self):
        level = Level(index=1, threshold=4)
        pages = partition_into_pages(
            [record(k, i) for i, k in enumerate("abcdef")], page_capacity=2, created_at=0.0
        )
        level.replace_pages(pages)
        page = level.intersecting_page("d")
        assert page is not None and page.lookup("d") is not None
        assert level.intersecting_page("zzz") is not None  # last fence is unbounded


class TestCompaction:
    def test_newest_versions_keeps_latest_only(self):
        survivors = newest_versions(
            [record("a", 1), record("a", 9), record("b", 3), record("a", 5)]
        )
        assert [r.key for r in survivors] == ["a", "b"]
        assert survivors[0].sequence == 9

    def test_partition_fences_cover_whole_key_space(self):
        records = [record(f"k{i:03d}", i) for i in range(10)]
        pages = partition_into_pages(records, page_capacity=3, created_at=0.0)
        assert fences_are_contiguous([page.fence for page in pages])
        assert pages[0].fence.lower == KEY_MIN
        assert pages[-1].fence.is_unbounded_above
        assert sum(page.num_records for page in pages) == 10

    def test_partition_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            partition_into_pages([record("a", 1)], page_capacity=0, created_at=0.0)

    def test_partition_empty_records(self):
        assert partition_into_pages([], page_capacity=5, created_at=0.0) == ()

    def test_merge_levels_removes_redundancy(self):
        source = [build_page([record("a", 10), record("b", 11)], created_at=1.0)]
        target = partition_into_pages(
            [record("a", 1), record("b", 2), record("c", 3)], page_capacity=2, created_at=0.0
        )
        result = merge_levels(source, target, created_at=2.0, page_capacity=2)
        assert result.records_in == 5
        assert result.records_out == 3
        assert result.redundancy_removed == 2
        merged_lookup = {
            r.key: r.sequence for page in result.pages for r in page.records
        }
        assert merged_lookup == {"a": 10, "b": 11, "c": 3}


class TestMergeSortedRuns:
    """Equivalence of the k-way merge paths against the old global re-sort.

    ``merge_levels`` used to flatten every page and call ``newest_versions``
    (hash every record, sort the unique keys).  Both run-aware replacements —
    the dict-based :func:`merge_sorted_runs` on the hot path and the
    reference :func:`merge_sorted_runs_heapq` — must produce exactly what the
    old path produced for any key-sorted page runs.
    """

    @staticmethod
    def _old_path(runs):
        flattened = [record for run in runs for record in run]
        return newest_versions(flattened)

    def _assert_all_equivalent(self, runs):
        expected = self._old_path(runs)
        assert merge_sorted_runs(runs) == expected
        assert merge_sorted_runs_heapq(runs) == expected

    def test_empty_and_trivial_runs(self):
        self._assert_all_equivalent([])
        self._assert_all_equivalent([()])
        self._assert_all_equivalent([(record("a", 1),)])
        self._assert_all_equivalent([(), (record("a", 1),), ()])

    def test_duplicate_keys_within_and_across_runs(self):
        run_a = (record("a", 1), record("a", 7), record("c", 3))
        run_b = (record("a", 5), record("b", 2), record("c", 9))
        self._assert_all_equivalent([run_a, run_b])
        survivors = merge_sorted_runs([run_a, run_b])
        assert [(r.key, r.sequence) for r in survivors] == [
            ("a", 7),
            ("b", 2),
            ("c", 9),
        ]

    def test_newest_wins_regardless_of_run_order(self):
        run_old = (record("k", 1),)
        run_new = (record("k", 2),)
        assert merge_sorted_runs([run_old, run_new])[0].sequence == 2
        assert merge_sorted_runs([run_new, run_old])[0].sequence == 2
        assert merge_sorted_runs_heapq([run_old, run_new])[0].sequence == 2
        assert merge_sorted_runs_heapq([run_new, run_old])[0].sequence == 2

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=15),
                    st.integers(min_value=0, max_value=10_000),
                ),
                max_size=30,
            ),
            max_size=6,
        )
    )
    def test_property_equivalence_on_random_runs(self, raw_runs):
        seen_sequences: set[int] = set()
        runs = []
        for raw in raw_runs:
            run = []
            for key_index, sequence in raw:
                if sequence in seen_sequences:
                    continue  # sequence numbers are globally unique
                seen_sequences.add(sequence)
                run.append(record(f"key-{key_index:02d}", sequence))
            run.sort(key=lambda r: (r.key, r.sequence))
            runs.append(tuple(run))
        self._assert_all_equivalent(runs)

    def test_merge_levels_uses_equivalent_path(self):
        source = [
            build_page([record("a", 10), record("b", 11)], created_at=1.0),
            build_page([record("a", 12), record("d", 13)], created_at=1.1),
        ]
        target = partition_into_pages(
            [record("a", 1), record("b", 2), record("c", 3)],
            page_capacity=2,
            created_at=0.0,
        )
        result = merge_levels(source, target, created_at=2.0, page_capacity=2)
        old_survivors = self._old_path(
            [page.records for page in source] + [page.records for page in target]
        )
        merged = [r for page in result.pages for r in page.records]
        assert merged == old_survivors


class TestLSMTree:
    def _tree(self) -> LSMTree:
        return LSMTree(
            config=LSMerkleConfig(level_thresholds=(2, 2, 4)), page_capacity=2
        )

    def test_get_prefers_level_zero(self):
        tree = self._tree()
        tree.add_level_zero_page(build_page([record("k", 1)], created_at=0.0))
        tree.add_level_zero_page(build_page([record("k", 9)], created_at=1.0))
        result = tree.get("k")
        assert result.found and result.record.sequence == 9
        assert result.level_index == 0

    def test_merge_cascade_respects_thresholds(self):
        tree = self._tree()
        for index in range(8):
            tree.add_level_zero_page(
                build_page([record(f"k{index:02d}", index)], created_at=float(index))
            )
            tree.compact_all(created_at=float(index))
        assert tree.levels_needing_merge() == ()
        counts = tree.level_page_counts()
        assert counts[0] <= 2 and counts[1] <= 2
        # All 8 keys must still be reachable.
        for index in range(8):
            assert tree.get(f"k{index:02d}").found

    def test_get_missing_key(self):
        tree = self._tree()
        assert not tree.get("nope").found

    def test_plan_and_apply_merge_bounds(self):
        tree = self._tree()
        with pytest.raises(ConfigurationError):
            tree.plan_merge(2)
        with pytest.raises(ConfigurationError):
            tree.apply_merge(5, ())

    def test_total_records_and_pages(self):
        tree = self._tree()
        tree.add_level_zero_page(build_page([record("a", 1), record("b", 2)], created_at=0.0))
        assert tree.total_records() == 2
        assert tree.total_pages() == 1


class TestLSMPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=60))
    def test_merged_tree_always_returns_newest_version(self, keys):
        """After arbitrary writes + full compaction, gets return the last write.

        Sequence numbers are assigned in write order, matching the system's
        invariant that later blocks always carry higher sequence numbers.
        """

        tree = LSMTree(config=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)), page_capacity=3)
        expected: dict[str, int] = {}
        for sequence, key in enumerate(keys):
            record_obj = KVRecord(key=key, sequence=sequence, value=str(sequence).encode())
            expected[key] = sequence
            tree.add_level_zero_page(build_page([record_obj], created_at=float(sequence)))
            tree.compact_all(created_at=float(sequence))
        for key, sequence in expected.items():
            result = tree.get(key)
            assert result.found
            assert result.record.sequence == sequence

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.text(alphabet="abcxyz", min_size=1, max_size=4), st.integers(0, 999)),
            min_size=0,
            max_size=50,
        )
    )
    def test_newest_versions_is_idempotent_and_sorted(self, pairs):
        records = [KVRecord(key=k, sequence=s, value=b"") for k, s in pairs]
        once = newest_versions(records)
        twice = newest_versions(once)
        assert once == twice
        assert [r.key for r in once] == sorted({r.key for r in records})

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 80), st.integers(1, 10))
    def test_partition_preserves_all_records(self, count, capacity):
        records = [record(f"k{i:04d}", i) for i in range(count)]
        pages = partition_into_pages(records, page_capacity=capacity, created_at=0.0)
        flattened = [r for page in pages for r in page.records]
        assert flattened == records
        assert fences_are_contiguous([page.fence for page in pages])
