"""Unit tests for hashing helpers (digests underpin data-free certification)."""

from __future__ import annotations

from repro.crypto.hashing import (
    DIGEST_HEX_LENGTH,
    EMPTY_DIGEST,
    digest_chain,
    digest_leaf,
    digest_pair,
    digest_value,
    is_hex_digest,
    sha256_hex,
)


class TestBasicDigests:
    def test_sha256_known_vector(self):
        assert (
            sha256_hex(b"abc")
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_empty_digest_constant(self):
        assert EMPTY_DIGEST == sha256_hex(b"")

    def test_digest_value_is_deterministic(self):
        assert digest_value({"a": 1, "b": 2}) == digest_value({"b": 2, "a": 1})

    def test_digest_value_distinguishes_values(self):
        assert digest_value([1, 2, 3]) != digest_value([1, 2, 4])

    def test_digest_length(self):
        assert len(digest_value("x")) == DIGEST_HEX_LENGTH


class TestDomainSeparation:
    def test_leaf_and_pair_are_domain_separated(self):
        leaf = digest_leaf(b"data")
        # Interpreting the same bytes as a pair input must give a different hash.
        assert leaf != sha256_hex(b"data")

    def test_pair_is_order_sensitive(self):
        a, b = digest_leaf(b"a"), digest_leaf(b"b")
        assert digest_pair(a, b) != digest_pair(b, a)

    def test_chain_is_order_sensitive(self):
        a, b = digest_leaf(b"a"), digest_leaf(b"b")
        assert digest_chain([a, b]) != digest_chain([b, a])

    def test_chain_of_empty_sequence(self):
        assert is_hex_digest(digest_chain([]))

    def test_chain_prefix_is_not_ambiguous(self):
        a, b, c = (digest_leaf(x) for x in (b"a", b"b", b"c"))
        assert digest_chain([a, b]) != digest_chain([a, b, c])


class TestIsHexDigest:
    def test_accepts_real_digest(self):
        assert is_hex_digest(sha256_hex(b"x"))

    def test_rejects_wrong_length(self):
        assert not is_hex_digest("abcd")

    def test_rejects_non_hex(self):
        assert not is_hex_digest("z" * DIGEST_HEX_LENGTH)

    def test_rejects_non_string(self):
        assert not is_hex_digest(12345)
