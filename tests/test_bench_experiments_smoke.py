"""Smoke tests for every experiment function at a tiny scale.

The full-size runs live under ``benchmarks/``; these tests only check that
each experiment function produces a well-formed table with the expected
series so that harness regressions are caught by the ordinary test suite.
"""

from __future__ import annotations

from repro.bench import experiments
from repro.bench.results import ResultTable
from repro.common import Region


def _assert_table(table: ResultTable, expected_rows: int | None = None) -> None:
    assert isinstance(table, ResultTable)
    assert table.rows, f"table {table.title!r} has no rows"
    if expected_rows is not None:
        assert len(table.rows) == expected_rows
    rendered = table.format()
    assert table.title in rendered


class TestExperimentSmoke:
    def test_table1(self):
        table = experiments.table1_rtt()
        _assert_table(table, expected_rows=1)
        assert table.rows[0]["V"] == 61.0

    def test_figure4(self):
        latency, throughput = experiments.figure4_put_batch_size(
            batch_sizes=(50, 100), num_batches=2
        )
        _assert_table(latency, expected_rows=2)
        _assert_table(throughput, expected_rows=2)
        for row in latency.rows:
            assert row["WedgeChain"] < row["Cloud-only"]

    def test_figure5(self):
        table = experiments.figure5_multi_client(
            0.5, client_counts=(1, 2), operations_per_client=40, batch_size=20
        )
        _assert_table(table, expected_rows=2)
        assert table.rows[1]["WedgeChain"] >= table.rows[0]["WedgeChain"]

    def test_figure5d(self):
        table = experiments.figure5d_best_case_read(
            num_preload_batches=2, batch_size=20, num_reads=5
        )
        _assert_table(table, expected_rows=3)
        systems = {row["system"] for row in table.rows}
        assert systems == {"WedgeChain", "Cloud-only", "Edge-baseline"}

    def test_figure6(self):
        summary, series = experiments.figure6_commit_phases(
            batch_sizes=(50,), num_batches=10, time_bin_s=0.5
        )
        _assert_table(summary, expected_rows=1)
        _assert_table(series)
        assert summary.rows[0]["phase2_done_s"] >= summary.rows[0]["phase1_done_s"]

    def test_figure7a(self):
        table = experiments.figure7_vary_cloud_location(
            cloud_regions=(Region.OREGON, Region.MUMBAI), num_batches=2
        )
        _assert_table(table, expected_rows=2)
        assert table.rows[1]["Cloud-only"] > table.rows[0]["Cloud-only"]

    def test_figure7b(self):
        table = experiments.figure7_vary_edge_location(
            edge_regions=(Region.CALIFORNIA, Region.MUMBAI), num_batches=2
        )
        _assert_table(table, expected_rows=2)
        assert table.rows[1]["WedgeChain"] > table.rows[0]["WedgeChain"]

    def test_section6e(self):
        table = experiments.section6e_dataset_size(
            key_spaces=(1_000, 10_000), num_batches=2
        )
        _assert_table(table, expected_rows=2)

    def test_ablation_data_free(self):
        table = experiments.ablation_data_free_certification(
            batch_sizes=(50,), num_batches=3
        )
        _assert_table(table, expected_rows=2)
        data_free = table.rows_where(variant="data-free")[0]
        full_data = table.rows_where(variant="full-data")[0]
        assert full_data["wan_megabytes"] > data_free["wan_megabytes"]

    def test_ablation_gossip(self):
        table = experiments.ablation_gossip_interval(intervals_s=(0.5,), batch_size=5)
        _assert_table(table, expected_rows=1)
        assert table.rows[0]["edge_punished"] is True


class TestReportGeneration:
    def test_report_writes_markdown(self, tmp_path):
        from repro.bench.report import generate_report

        target = tmp_path / "experiments.md"
        with open(target, "w", encoding="utf-8") as handle:
            generate_report(handle, scale=0.3)
        text = target.read_text()
        assert "# EXPERIMENTS" in text
        assert "Figure 4" in text
        assert "Figure 7" in text
        assert "Ablation" in text
