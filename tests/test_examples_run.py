"""Smoke tests: every example script runs to completion and prints what it
promises.  The examples are part of the public deliverable, so regressions in
them should fail the test suite, not surprise a reader."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["Phase I", "Phase II", "get('sensor-003')"]),
    ("smart_traffic.py", ["Phase I", "bandwidth", "punishments recorded: 0"]),
    ("iot_fleet_logging.py", ["LSMerkle level page counts", "merges completed"]),
    ("malicious_edge_audit.py", ["punishments recorded", "Omission attack"]),
    ("baseline_comparison.py", ["WedgeChain", "Edge-baseline", "wan_megabytes"]),
    (
        "cross_shard_txn.py",
        [
            "committed (all participants prepared)",
            "verified reads after commit: 4/4",
            "orphaned writes visible: 0",
        ],
    ),
    (
        "observability_report.py",
        [
            "causal chain for the first Phase II certificate",
            "certify.absorb",
            "fault.delay",
            "=== WedgeChain fleet health report ===",
        ],
    ),
    (
        "replicated_fleet.py",
        [
            "replica shipments installed",
            "replica promotions: 2",
            "countersigned map v",
            "verified read from promoted replica",
            "punishments recorded: 0",
        ],
    ),
    (
        "durable_edge.py",
        [
            "crash -> recover -> verified get",
            "root verified: True",
            "get('sensor-003')",
        ],
    ),
    (
        "live_fleet.py",
        [
            "single put committed through phase_two",
            "verified read completed through phase_two",
            "p99=",
            "p999=",
            "clean shutdown",
        ],
    ),
]


@pytest.mark.parametrize("script,expected_fragments", CASES, ids=[c[0] for c in CASES])
def test_example_runs_and_reports(script, expected_fragments):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for fragment in expected_fragments:
        assert fragment in completed.stdout, (
            f"{script} output missing {fragment!r}\n--- stdout ---\n"
            f"{completed.stdout[-2000:]}"
        )
