"""Merging (compaction) of LSM levels.

When level ``i`` exceeds its page threshold, all of its pages are merged into
the pages of level ``i+1`` (Section V-B "Merging").  The merge removes
redundant versions — only the most recent version of each key survives — and
re-partitions the result into pages with disjoint, contiguous key fences so
that a single page per level can later prove (non-)existence of a key.

In WedgeChain the merge itself is executed by the *cloud node*, which also
recomputes the Merkle roots; the pure merge logic lives here so the cloud
node, the baselines, and the tests all share one implementation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from operator import attrgetter
from typing import Iterable, Sequence

from ..common.errors import ConfigurationError, ProtocolError
from .page import Page
from .records import KEY_MIN, KeyFence, KVRecord

#: Default number of records per merged page (one paper "page" holds the
#: updates of one block, i.e. roughly the batch size).
DEFAULT_PAGE_CAPACITY = 100


@dataclass(frozen=True)
class MergeResult:
    """Outcome of merging a source level into a target level."""

    pages: tuple[Page, ...]
    records_in: int
    records_out: int

    @property
    def redundancy_removed(self) -> int:
        """How many stale versions were dropped by the merge."""

        return self.records_in - self.records_out


def newest_versions(records: Iterable[KVRecord]) -> list[KVRecord]:
    """Collapse *records* to the single newest version per key, key-sorted."""

    newest: dict[str, KVRecord] = {}
    for record in records:
        current = newest.get(record.key)
        if current is None or record.is_newer_than(current):
            newest[record.key] = record
    return [newest[key] for key in sorted(newest)]


def merge_sorted_runs_heapq(runs: Sequence[Sequence[KVRecord]]) -> list[KVRecord]:
    """Textbook k-way merge of key-sorted runs via :func:`heapq.merge`.

    O(n log k) comparisons instead of the O(n log n) global re-sort; equal
    keys come out adjacent, so the newest version (highest sequence number)
    is selected in the same single pass.  Produces exactly what
    :func:`merge_sorted_runs` produces (property-tested equivalence).

    On CPython this loses to :func:`merge_sorted_runs`: ``heapq.merge`` is a
    pure-Python generator costing ~150 ns of interpreter overhead per yielded
    record, while the dict path's per-record work is a single C-level dict
    operation and its sort touches only the *unique* keys in C.  Measured on
    the tracked ``merge`` micro-benchmark the heap path is ~2.5x slower, so
    :func:`merge_levels` keeps the dict path; this implementation stays as
    the reference k-way merge (and the better choice on runtimes that
    compile the generator, e.g. PyPy).
    """

    merged = heapq.merge(*runs, key=attrgetter("key"))
    survivors: list[KVRecord] = []
    for record in merged:
        if survivors and survivors[-1].key == record.key:
            if record.is_newer_than(survivors[-1]):
                survivors[-1] = record
        else:
            survivors.append(record)
    return survivors


def merge_sorted_runs(runs: Sequence[Sequence[KVRecord]]) -> list[KVRecord]:
    """Merge key-sorted runs, collapsed to the newest version per key.

    Semantically ``newest_versions`` over the concatenated runs; the dict
    pass is inlined here rather than delegated because feeding
    :func:`newest_versions` through a flattening generator costs a measured
    ~11% of merge throughput, and materializing the concatenated list is
    what the old global re-sort did.  The equivalence (including
    tie-breaking via ``is_newer_than``) is pinned by a property test
    against ``newest_versions``; see :func:`merge_sorted_runs_heapq` for
    the measured comparison with the textbook heap merge.
    """

    newest: dict[str, KVRecord] = {}
    for run in runs:
        for record in run:
            current = newest.get(record.key)
            if current is None or record.is_newer_than(current):
                newest[record.key] = record
    return [newest[key] for key in sorted(newest)]


def partition_into_pages(
    records: Sequence[KVRecord],
    page_capacity: int,
    created_at: float,
    presorted: bool = False,
) -> tuple[Page, ...]:
    """Split key-sorted, key-unique records into pages with contiguous fences.

    The first page's fence starts at the minimum-key sentinel and the last
    page's fence is unbounded above; interior boundaries sit at the first key
    of the following page, so every key maps to exactly one page.

    ``presorted=True`` skips the strictly-increasing validation scan; it is
    reserved for callers whose input is sorted and key-unique by
    construction (the output of :func:`merge_sorted_runs` /
    :func:`newest_versions`).  Records received from another node must never
    be partitioned with it.
    """

    if page_capacity <= 0:
        raise ConfigurationError("page_capacity must be positive")
    if not records:
        return ()
    if not presorted:
        for left, right in zip(records, records[1:]):
            if left.key >= right.key:
                raise ProtocolError(
                    "partition_into_pages requires strictly key-sorted, "
                    f"key-unique records ({left.key!r} before {right.key!r})"
                )

    chunks: list[Sequence[KVRecord]] = [
        records[start : start + page_capacity]
        for start in range(0, len(records), page_capacity)
    ]
    pages: list[Page] = []
    # The strictly-increasing check above already proves every chunk is
    # sorted and inside its derived fence; skip the per-page re-validation.
    for position, chunk in enumerate(chunks):
        lower = KEY_MIN if position == 0 else chunks[position][0].key
        upper = None if position == len(chunks) - 1 else chunks[position + 1][0].key
        fence = KeyFence(lower=lower, upper=upper)
        pages.append(
            Page._trusted(records=tuple(chunk), fence=fence, created_at=created_at)
        )
    return tuple(pages)


def merge_levels(
    source_pages: Sequence[Page],
    target_pages: Sequence[Page],
    created_at: float,
    page_capacity: int = DEFAULT_PAGE_CAPACITY,
) -> MergeResult:
    """Merge the pages of level ``i`` into level ``i+1``.

    Both levels' records are combined, stale versions are dropped, and the
    survivors are re-partitioned into contiguous pages for the target level.
    """

    runs = [page.records for page in source_pages if page.records]
    runs.extend(page.records for page in target_pages if page.records)
    records_in = sum(len(run) for run in runs)

    survivors = merge_sorted_runs(runs)
    pages = partition_into_pages(
        survivors, page_capacity, created_at, presorted=True
    )
    return MergeResult(
        pages=pages,
        records_in=records_in,
        records_out=len(survivors),
    )
