"""Merging (compaction) of LSM levels.

When level ``i`` exceeds its page threshold, all of its pages are merged into
the pages of level ``i+1`` (Section V-B "Merging").  The merge removes
redundant versions — only the most recent version of each key survives — and
re-partitions the result into pages with disjoint, contiguous key fences so
that a single page per level can later prove (non-)existence of a key.

In WedgeChain the merge itself is executed by the *cloud node*, which also
recomputes the Merkle roots; the pure merge logic lives here so the cloud
node, the baselines, and the tests all share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..common.errors import ConfigurationError, ProtocolError
from .page import Page
from .records import KEY_MIN, KeyFence, KVRecord

#: Default number of records per merged page (one paper "page" holds the
#: updates of one block, i.e. roughly the batch size).
DEFAULT_PAGE_CAPACITY = 100


@dataclass(frozen=True)
class MergeResult:
    """Outcome of merging a source level into a target level."""

    pages: tuple[Page, ...]
    records_in: int
    records_out: int

    @property
    def redundancy_removed(self) -> int:
        """How many stale versions were dropped by the merge."""

        return self.records_in - self.records_out


def newest_versions(records: Iterable[KVRecord]) -> list[KVRecord]:
    """Collapse *records* to the single newest version per key, key-sorted."""

    newest: dict[str, KVRecord] = {}
    for record in records:
        current = newest.get(record.key)
        if current is None or record.is_newer_than(current):
            newest[record.key] = record
    return [newest[key] for key in sorted(newest)]


def partition_into_pages(
    records: Sequence[KVRecord],
    page_capacity: int,
    created_at: float,
) -> tuple[Page, ...]:
    """Split key-sorted, key-unique records into pages with contiguous fences.

    The first page's fence starts at the minimum-key sentinel and the last
    page's fence is unbounded above; interior boundaries sit at the first key
    of the following page, so every key maps to exactly one page.
    """

    if page_capacity <= 0:
        raise ConfigurationError("page_capacity must be positive")
    if not records:
        return ()
    for left, right in zip(records, records[1:]):
        if left.key >= right.key:
            raise ProtocolError(
                "partition_into_pages requires strictly key-sorted, "
                f"key-unique records ({left.key!r} before {right.key!r})"
            )

    chunks: list[Sequence[KVRecord]] = [
        records[start : start + page_capacity]
        for start in range(0, len(records), page_capacity)
    ]
    pages: list[Page] = []
    # The strictly-increasing check above already proves every chunk is
    # sorted and inside its derived fence; skip the per-page re-validation.
    for position, chunk in enumerate(chunks):
        lower = KEY_MIN if position == 0 else chunks[position][0].key
        upper = None if position == len(chunks) - 1 else chunks[position + 1][0].key
        fence = KeyFence(lower=lower, upper=upper)
        pages.append(
            Page._trusted(records=tuple(chunk), fence=fence, created_at=created_at)
        )
    return tuple(pages)


def merge_levels(
    source_pages: Sequence[Page],
    target_pages: Sequence[Page],
    created_at: float,
    page_capacity: int = DEFAULT_PAGE_CAPACITY,
) -> MergeResult:
    """Merge the pages of level ``i`` into level ``i+1``.

    Both levels' records are combined, stale versions are dropped, and the
    survivors are re-partitioned into contiguous pages for the target level.
    """

    all_records: list[KVRecord] = []
    for page in source_pages:
        all_records.extend(page.records)
    for page in target_pages:
        all_records.extend(page.records)

    survivors = newest_versions(all_records)
    pages = partition_into_pages(survivors, page_capacity, created_at)
    return MergeResult(
        pages=pages,
        records_in=len(all_records),
        records_out=len(survivors),
    )
