"""LSM tree substrate: records, pages, levels, compaction, and the tree."""

from .compaction import (
    DEFAULT_PAGE_CAPACITY,
    MergeResult,
    merge_levels,
    merge_sorted_runs,
    newest_versions,
    partition_into_pages,
)
from .level import Level
from .lsm_tree import LookupResult, LSMTree
from .page import Page, build_page
from .records import KEY_MIN, KeyFence, KVRecord, fences_are_contiguous

__all__ = [
    "DEFAULT_PAGE_CAPACITY",
    "KEY_MIN",
    "KVRecord",
    "KeyFence",
    "LSMTree",
    "Level",
    "LookupResult",
    "MergeResult",
    "Page",
    "build_page",
    "fences_are_contiguous",
    "merge_levels",
    "merge_sorted_runs",
    "newest_versions",
    "partition_into_pages",
]
