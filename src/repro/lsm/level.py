"""LSM levels: bounded collections of pages.

Level 0 is special: it holds the most recent pages in arrival order and may
contain overlapping key ranges and duplicate keys.  Levels 1 and above hold
pages with disjoint, contiguous key fences ("keys are sorted across pages",
Section V-B) and at most one version per key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..common.errors import ConfigurationError, ProtocolError
from .page import Page
from .records import KVRecord, fences_are_contiguous


@dataclass
class Level:
    """One level of the LSM structure."""

    index: int
    threshold: int
    pages: list[Page] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("level index must be non-negative")
        if self.threshold <= 0:
            raise ConfigurationError("level threshold must be positive")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_level_zero(self) -> bool:
        return self.index == 0

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def exceeds_threshold(self) -> bool:
        return len(self.pages) > self.threshold

    @property
    def total_records(self) -> int:
        return sum(page.num_records for page in self.pages)

    def page_digests(self) -> tuple[str, ...]:
        return tuple(page.digest() for page in self.pages)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append_page(self, page: Page) -> None:
        """Add a page to level 0 (arrival order)."""

        if not self.is_level_zero:
            raise ProtocolError(
                f"append_page is only valid on level 0, not level {self.index}"
            )
        self.pages.append(page)

    def replace_pages(self, pages: Iterable[Page]) -> None:
        """Replace the level's pages wholesale (after a merge).

        For levels above 0 the new pages must have disjoint, contiguous
        fences — the invariant clients rely on to check non-existence.
        """

        new_pages = list(pages)
        if not self.is_level_zero and new_pages:
            ordered = sorted(new_pages, key=lambda page: page.fence.lower)
            if not fences_are_contiguous([page.fence for page in ordered]):
                raise ProtocolError(
                    f"level {self.index} pages do not form a contiguous key range"
                )
            new_pages = ordered
        self.pages = new_pages

    def clear(self) -> None:
        self.pages = []

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def pages_newest_first(self) -> tuple[Page, ...]:
        """Level-0 pages from newest to oldest (recency order for reads)."""

        return tuple(reversed(self.pages))

    def intersecting_page(self, key: str) -> Optional[Page]:
        """The unique page of a sorted level whose fence covers *key*."""

        if self.is_level_zero:
            raise ProtocolError("level 0 has no unique intersecting page")
        for page in self.pages:
            if page.could_contain(key):
                return page
        return None

    def lookup(self, key: str) -> Optional[KVRecord]:
        """Most recent record for *key* within this level (or ``None``)."""

        if self.is_level_zero:
            best: Optional[KVRecord] = None
            for page in self.pages:
                candidate = page.lookup(key)
                if candidate is not None and (
                    best is None or candidate.is_newer_than(best)
                ):
                    best = candidate
            return best
        page = self.intersecting_page(key)
        return page.lookup(key) if page is not None else None
