"""Key-value records and key-range fences for the LSM substrate.

A record is one versioned ``put``: recency is determined by a global,
monotonically increasing sequence number assigned when the operation enters
the system (ties cannot happen because sequence numbers are unique).

Fences describe the key range a page is responsible for.  The paper phrases
the invariant with integer keys ("px.max = py.min − 1", first min is 0, last
max is infinity); we use the equivalent half-open formulation over string
keys: consecutive pages satisfy ``px.fence.upper == py.fence.lower``, the
first page's lower bound is the minimum key sentinel and the last page's
upper bound is +infinity (``None``).  A client can therefore verify that the
single returned page of a level is the only page that could contain the key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import ConfigurationError

#: Sentinel for the smallest possible key (the paper's "min of 0").
KEY_MIN = ""


@dataclass(frozen=True, order=True)
class KVRecord:
    """One versioned key-value pair."""

    key: str
    sequence: int
    value: bytes
    written_at: float = 0.0

    @property
    def wire_size(self) -> int:
        return len(self.key) + len(self.value) + 24

    def is_newer_than(self, other: "KVRecord") -> bool:
        """Recency comparison: higher sequence number wins."""

        return self.sequence > other.sequence


@dataclass(frozen=True)
class KeyFence:
    """Half-open key range ``[lower, upper)``; ``upper is None`` means +inf."""

    lower: str = KEY_MIN
    upper: Optional[str] = None

    def __post_init__(self) -> None:
        if self.upper is not None and self.upper < self.lower:
            raise ConfigurationError(
                f"fence upper bound {self.upper!r} below lower bound {self.lower!r}"
            )

    @property
    def is_unbounded_above(self) -> bool:
        return self.upper is None

    def contains(self, key: str) -> bool:
        """Whether *key* falls inside this fence."""

        if key < self.lower:
            return False
        return self.upper is None or key < self.upper

    def abuts(self, successor: "KeyFence") -> bool:
        """Whether *successor* starts exactly where this fence ends."""

        return self.upper is not None and self.upper == successor.lower

    def overlaps(self, other: "KeyFence") -> bool:
        """Whether the two half-open ranges intersect."""

        if self.upper is not None and self.upper <= other.lower:
            return False
        if other.upper is not None and other.upper <= self.lower:
            return False
        return True

    @classmethod
    def covering_everything(cls) -> "KeyFence":
        return cls(lower=KEY_MIN, upper=None)


def fences_are_contiguous(fences: list[KeyFence]) -> bool:
    """Check the paper's level invariant over an ordered list of fences.

    The first fence must start at the minimum key, the last must be unbounded
    above, and every consecutive pair must share a boundary.
    """

    if not fences:
        return True
    if fences[0].lower != KEY_MIN:
        return False
    if not fences[-1].is_unbounded_above:
        return False
    for left, right in zip(fences, fences[1:]):
        if not left.abuts(right):
            return False
    return True
