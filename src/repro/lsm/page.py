"""Pages: the immutable unit of storage in the LSM/LSMerkle structure.

A page holds a key-sorted batch of records plus meta information ("the range
of keys in the page and a timestamp of the time the page was created",
Section V-A).  Pages at level 0 come straight from WedgeChain blocks and may
contain several versions of the same key; pages at higher levels are produced
by merges and contain at most one version per key.

Because pages are immutable, lookup-relevant derived state (the key tuple,
the wire size, the content digest) is computed once and memoized on the
instance; lookups binary-search the sorted key tuple instead of scanning.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Iterable, Optional

from ..common.errors import ProtocolError
from ..common.identifiers import BlockId
from ..crypto.hashing import digest_value
from .records import KeyFence, KVRecord

_page_counter = itertools.count()


def _next_page_id() -> int:
    return next(_page_counter)


@dataclass(frozen=True)
class Page:
    """An immutable, key-sorted batch of records with a key fence."""

    records: tuple[KVRecord, ...]
    fence: KeyFence
    created_at: float
    page_id: int = field(default_factory=_next_page_id)
    #: The WedgeChain block this page was formed from (level-0 pages only).
    source_block_id: Optional[BlockId] = None

    def __post_init__(self) -> None:
        records = self.records
        for left, right in zip(records, records[1:]):
            if left.key > right.key:
                raise ProtocolError("page records must be sorted by key")
        # With sorted keys and an interval fence, checking the two endpoint
        # records covers every record in between.
        if records:
            for record in (records[0], records[-1]):
                if not self.fence.contains(record.key):
                    raise ProtocolError(
                        f"record key {record.key!r} outside page fence {self.fence}"
                    )

    @classmethod
    def _trusted(
        cls,
        records: tuple[KVRecord, ...],
        fence: KeyFence,
        created_at: float,
        source_block_id: Optional[BlockId] = None,
    ) -> "Page":
        """Construct without validation for provably well-formed inputs.

        Merge and codec paths build pages from records they just sorted and
        fences they just derived; re-validating each page costs an
        O(n log n) sort plus a fence scan on the hottest write path.  Pages
        received from other nodes must never be built through this
        constructor — trust is scoped to the exact call, with no global
        state, so no concurrent construction can bypass validation.
        """

        page = object.__new__(cls)
        object.__setattr__(page, "records", records)
        object.__setattr__(page, "fence", fence)
        object.__setattr__(page, "created_at", created_at)
        object.__setattr__(page, "page_id", _next_page_id())
        object.__setattr__(page, "source_block_id", source_block_id)
        return page

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def is_empty(self) -> bool:
        return not self.records

    @property
    def min_key(self) -> Optional[str]:
        return self.records[0].key if self.records else None

    @property
    def max_key(self) -> Optional[str]:
        return self.records[-1].key if self.records else None

    @property
    def wire_size(self) -> int:
        cached = self.__dict__.get("_wire_size_cache")
        if cached is None:
            cached = 64 + sum(record.wire_size for record in self.records)
            object.__setattr__(self, "_wire_size_cache", cached)
        return cached

    def digest(self) -> str:
        """Content digest of the page (what Merkle leaves are built from).

        Cached after the first computation — pages are immutable and their
        digests are recomputed frequently (Merkle rebuilds, merge checks).
        """

        cached = self.__dict__.get("_digest_cache")
        if cached is not None:
            return cached
        computed = digest_value(
            (
                tuple(self.records),
                self.fence.lower,
                self.fence.upper,
                self.created_at,
                self.source_block_id,
            )
        )
        object.__setattr__(self, "_digest_cache", computed)
        return computed

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[KVRecord]:
        """Return the most recent record for *key* within this page.

        Binary-searches the sorted key tuple; when a level-0 page carries
        several versions of the key, the newest one in the equal-key run
        wins.
        """

        keys = self.keys()
        start = bisect_left(keys, key)
        if start == len(keys) or keys[start] != key:
            return None
        stop = bisect_right(keys, key, lo=start)
        best = self.records[start]
        for record in self.records[start + 1 : stop]:
            if record.is_newer_than(best):
                best = record
        return best

    def keys(self) -> tuple[str, ...]:
        cached = self.__dict__.get("_keys_cache")
        if cached is None:
            cached = tuple(record.key for record in self.records)
            object.__setattr__(self, "_keys_cache", cached)
        return cached

    def could_contain(self, key: str) -> bool:
        """Whether this page's fence covers *key*."""

        return self.fence.contains(key)


def build_page(
    records: Iterable[KVRecord],
    created_at: float,
    fence: Optional[KeyFence] = None,
    source_block_id: Optional[BlockId] = None,
) -> Page:
    """Sort records by key (recency-stable) and wrap them in a page.

    If no fence is given, a tight fence covering exactly the page's keys is
    used (suitable for level-0 pages where fences are informational; merge
    code assigns contiguous fences explicitly for higher levels).
    """

    ordered = sorted(records, key=attrgetter("key", "sequence"))
    if fence is None:
        if ordered:
            fence = KeyFence(lower=ordered[0].key, upper=None)
            # A tight upper bound cannot be expressed exactly with half-open
            # string ranges; keep it unbounded above, which is always safe.
        else:
            fence = KeyFence.covering_everything()
    elif ordered and not (
        fence.contains(ordered[0].key) and fence.contains(ordered[-1].key)
    ):
        offending = ordered[0] if not fence.contains(ordered[0].key) else ordered[-1]
        raise ProtocolError(
            f"record key {offending.key!r} outside page fence {fence}"
        )
    return Page._trusted(
        records=tuple(ordered),
        fence=fence,
        created_at=created_at,
        source_block_id=source_block_id,
    )
