"""Pages: the immutable unit of storage in the LSM/LSMerkle structure.

A page holds a key-sorted batch of records plus meta information ("the range
of keys in the page and a timestamp of the time the page was created",
Section V-A).  Pages at level 0 come straight from WedgeChain blocks and may
contain several versions of the same key; pages at higher levels are produced
by merges and contain at most one version per key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..common.errors import ProtocolError
from ..common.identifiers import BlockId
from ..crypto.hashing import digest_value
from .records import KeyFence, KVRecord

_page_counter = itertools.count()


def _next_page_id() -> int:
    return next(_page_counter)


@dataclass(frozen=True)
class Page:
    """An immutable, key-sorted batch of records with a key fence."""

    records: tuple[KVRecord, ...]
    fence: KeyFence
    created_at: float
    page_id: int = field(default_factory=_next_page_id)
    #: The WedgeChain block this page was formed from (level-0 pages only).
    source_block_id: Optional[BlockId] = None

    def __post_init__(self) -> None:
        keys = [record.key for record in self.records]
        if keys != sorted(keys):
            raise ProtocolError("page records must be sorted by key")
        for record in self.records:
            if not self.fence.contains(record.key):
                raise ProtocolError(
                    f"record key {record.key!r} outside page fence {self.fence}"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def is_empty(self) -> bool:
        return not self.records

    @property
    def min_key(self) -> Optional[str]:
        return self.records[0].key if self.records else None

    @property
    def max_key(self) -> Optional[str]:
        return self.records[-1].key if self.records else None

    @property
    def wire_size(self) -> int:
        return 64 + sum(record.wire_size for record in self.records)

    def digest(self) -> str:
        """Content digest of the page (what Merkle leaves are built from).

        Cached after the first computation — pages are immutable and their
        digests are recomputed frequently (Merkle rebuilds, merge checks).
        """

        cached = self.__dict__.get("_digest_cache")
        if cached is not None:
            return cached
        computed = digest_value(
            (
                tuple(self.records),
                self.fence.lower,
                self.fence.upper,
                self.created_at,
                self.source_block_id,
            )
        )
        object.__setattr__(self, "_digest_cache", computed)
        return computed

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[KVRecord]:
        """Return the most recent record for *key* within this page."""

        best: Optional[KVRecord] = None
        for record in self.records:
            if record.key == key and (best is None or record.is_newer_than(best)):
                best = record
        return best

    def keys(self) -> tuple[str, ...]:
        return tuple(record.key for record in self.records)

    def could_contain(self, key: str) -> bool:
        """Whether this page's fence covers *key*."""

        return self.fence.contains(key)


def build_page(
    records: Iterable[KVRecord],
    created_at: float,
    fence: Optional[KeyFence] = None,
    source_block_id: Optional[BlockId] = None,
) -> Page:
    """Sort records by key (recency-stable) and wrap them in a page.

    If no fence is given, a tight fence covering exactly the page's keys is
    used (suitable for level-0 pages where fences are informational; merge
    code assigns contiguous fences explicitly for higher levels).
    """

    ordered = sorted(records, key=lambda record: (record.key, record.sequence))
    if fence is None:
        if ordered:
            fence = KeyFence(lower=ordered[0].key, upper=None)
            # A tight upper bound cannot be expressed exactly with half-open
            # string ranges; keep it unbounded above, which is always safe.
        else:
            fence = KeyFence.covering_everything()
    return Page(
        records=tuple(ordered),
        fence=fence,
        created_at=created_at,
        source_block_id=source_block_id,
    )
