"""The LSM tree: levels, lookups, and merge scheduling.

This substrate is deliberately independent of trust: it is a plain,
in-memory, multi-level structure with the shape described in Section II-B.1
(level 0 in memory, per-level page thresholds, merge into the next level when
a threshold is exceeded).  The trusted index (LSMerkle) layers Merkle trees
and cloud certification on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..common.config import LSMerkleConfig
from ..common.errors import ConfigurationError
from .compaction import DEFAULT_PAGE_CAPACITY, MergeResult, merge_levels
from .level import Level
from .page import Page
from .records import KVRecord


@dataclass(frozen=True)
class LookupResult:
    """Where a key's most recent version was found."""

    record: Optional[KVRecord]
    level_index: Optional[int] = None
    page: Optional[Page] = None

    @property
    def found(self) -> bool:
        return self.record is not None


class LSMTree:
    """A multi-level LSM tree over immutable pages."""

    def __init__(
        self,
        config: Optional[LSMerkleConfig] = None,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ) -> None:
        self._config = config if config is not None else LSMerkleConfig.paper_default()
        if page_capacity <= 0:
            raise ConfigurationError("page_capacity must be positive")
        self._page_capacity = page_capacity
        self.levels: list[Level] = [
            Level(index=index, threshold=threshold)
            for index, threshold in enumerate(self._config.level_thresholds)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> LSMerkleConfig:
        return self._config

    @property
    def page_capacity(self) -> int:
        return self._page_capacity

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def level_zero(self) -> Level:
        return self.levels[0]

    def total_records(self) -> int:
        return sum(level.total_records for level in self.levels)

    def total_pages(self) -> int:
        return sum(level.num_pages for level in self.levels)

    def level_page_counts(self) -> tuple[int, ...]:
        return tuple(level.num_pages for level in self.levels)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add_level_zero_page(self, page: Page) -> bool:
        """Append a fresh page to level 0; return whether a merge is due."""

        self.level_zero.append_page(page)
        return self.level_zero.exceeds_threshold

    def levels_needing_merge(self) -> tuple[int, ...]:
        """Indices of levels currently over their threshold (excluding the last)."""

        return tuple(
            level.index
            for level in self.levels[:-1]
            if level.exceeds_threshold
        )

    def plan_merge(self, level_index: int) -> tuple[Sequence[Page], Sequence[Page]]:
        """Return (source pages, target pages) for merging level ``i`` into ``i+1``."""

        if not 0 <= level_index < self.num_levels - 1:
            raise ConfigurationError(
                f"cannot merge level {level_index} of {self.num_levels}"
            )
        return (
            tuple(self.levels[level_index].pages),
            tuple(self.levels[level_index + 1].pages),
        )

    def merge_level(self, level_index: int, created_at: float) -> MergeResult:
        """Merge level ``i`` into ``i+1`` locally and apply the result.

        WedgeChain proper delegates the merge computation to the cloud node;
        this local variant is used by the untrusted-free baselines and tests.
        """

        source, target = self.plan_merge(level_index)
        result = merge_levels(source, target, created_at, self._page_capacity)
        self.apply_merge(level_index, result.pages)
        return result

    def apply_merge(self, level_index: int, merged_pages: Sequence[Page]) -> None:
        """Install externally computed merge results (e.g. from the cloud)."""

        if not 0 <= level_index < self.num_levels - 1:
            raise ConfigurationError(
                f"cannot merge level {level_index} of {self.num_levels}"
            )
        self.levels[level_index].clear()
        self.levels[level_index + 1].replace_pages(merged_pages)

    def compact_all(self, created_at: float) -> list[MergeResult]:
        """Run local merges until no level (except the last) is over threshold."""

        results: list[MergeResult] = []
        pending = self.levels_needing_merge()
        while pending:
            results.append(self.merge_level(pending[0], created_at))
            pending = self.levels_needing_merge()
        return results

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: str) -> LookupResult:
        """Find the most recent version of *key* across all levels.

        Level 0 is searched first (it always holds the newest data); lower
        levels are searched in order and the first hit wins because levels
        below never contain fresher versions than levels above.
        """

        level_zero_hit = self.level_zero.lookup(key)
        if level_zero_hit is not None:
            page = self._containing_page(self.level_zero, key, level_zero_hit)
            return LookupResult(record=level_zero_hit, level_index=0, page=page)

        for level in self.levels[1:]:
            page = level.intersecting_page(key)
            if page is None:
                continue
            record = page.lookup(key)
            if record is not None:
                return LookupResult(record=record, level_index=level.index, page=page)
        return LookupResult(record=None)

    @staticmethod
    def _containing_page(level: Level, key: str, record: KVRecord) -> Optional[Page]:
        for page in level.pages_newest_first():
            candidate = page.lookup(key)
            if candidate is not None and candidate.sequence == record.sequence:
                return page
        return None
