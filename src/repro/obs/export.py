"""Exports: JSONL trace dumps, Prometheus-style text, snapshot diffs.

Everything here renders from sorted keys and sequential ids, so a seeded
run exports byte-identical artifacts (the determinism tests compare the
raw strings, not parsed structures).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import Observability
    from .tracing import Tracer

SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------
def trace_records(tracer: Optional["Tracer"]) -> List[dict]:
    """All spans (in span-id order) followed by all events (in time order)."""

    if tracer is None:
        return []
    records = []
    for span in sorted(tracer.spans, key=lambda item: item.span_id):
        records.append(
            {
                "kind": "span",
                "name": span.name,
                "trace": span.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "links": [list(link) for link in span.links],
                "node": span.node,
                "start": round(span.start, 9),
                "end": round(span.end, 9) if span.end is not None else None,
                "attrs": {key: span.attrs[key] for key in sorted(span.attrs)},
            }
        )
    records.extend(tracer.events)
    return records


def trace_jsonl(tracer: Optional["Tracer"]) -> str:
    """One JSON object per line; byte-identical across same-seed runs."""

    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in trace_records(tracer)
    )


# ----------------------------------------------------------------------
# Metrics export
# ----------------------------------------------------------------------
def metrics_snapshot(observability: "Observability") -> Dict[str, dict]:
    """``{registry name: registry.snapshot()}`` with sorted registry names."""

    return {
        name: registry.snapshot()
        for name, registry in sorted(observability.registries.items())
    }


def prometheus_text(observability: "Observability") -> str:
    """A Prometheus-exposition-style text snapshot of every registry.

    Registry names become a ``node`` label so one scrape covers the fleet.
    Histograms are rendered as the conventional ``_bucket``/``_sum``/
    ``_count`` triplet plus exact ``_p50``/``_p90``/``_p99`` gauges (which
    a real Prometheus cannot provide — the sim can, so it does).
    """

    lines: List[str] = []
    for name, registry in sorted(observability.registries.items()):
        snapshot = registry.snapshot()
        for metric, value in snapshot["counters"].items():
            lines.append(f'{_merge_label(metric, name)} {_fmt(value)}')
        for metric, value in snapshot["gauges"].items():
            lines.append(f'{_merge_label(metric, name)} {_fmt(value)}')
        for metric, summary in snapshot["histograms"].items():
            base, labels = _split_metric(metric)
            for suffix in ("count", "sum", "p50", "p90", "p99"):
                rendered = _render_metric(f"{base}_{suffix}", labels, name)
                lines.append(f"{rendered} {_fmt(summary[suffix])}")
    return "\n".join(lines) + "\n" if lines else ""


def diff_snapshots(before: Dict[str, dict], after: Dict[str, dict]) -> Dict[str, dict]:
    """Numeric deltas between two :func:`metrics_snapshot` results.

    Returns only what changed — new instruments appear at full value,
    untouched ones are omitted.  Histograms diff on their ``count``/``sum``
    (percentiles are not subtractable).
    """

    delta: Dict[str, dict] = {}
    for registry_name in sorted(after):
        after_reg = after[registry_name]
        before_reg = before.get(registry_name, {})
        reg_delta: Dict[str, dict] = {}
        for family in ("counters", "gauges"):
            family_delta = {}
            previous = before_reg.get(family, {})
            for metric, value in after_reg.get(family, {}).items():
                change = value - previous.get(metric, 0)
                if change:
                    family_delta[metric] = change
            if family_delta:
                reg_delta[family] = family_delta
        hist_delta = {}
        previous = before_reg.get("histograms", {})
        for metric, summary in after_reg.get("histograms", {}).items():
            old = previous.get(metric, {"count": 0, "sum": 0.0})
            change = {
                "count": summary["count"] - old["count"],
                "sum": summary["sum"] - old["sum"],
            }
            if change["count"] or change["sum"]:
                hist_delta[metric] = change
        if hist_delta:
            reg_delta["histograms"] = hist_delta
        if reg_delta:
            delta[registry_name] = reg_delta
    return delta


# ----------------------------------------------------------------------
# Recordings (what `python -m repro.obs.report` consumes)
# ----------------------------------------------------------------------
def recording(observability: "Observability") -> dict:
    """A self-contained, JSON-serialisable capture of one run."""

    return {
        "schema": SCHEMA_VERSION,
        "metrics": metrics_snapshot(observability),
        "trace": trace_records(observability.tracer),
    }


def write_recording(observability: "Observability", path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(recording(observability), handle, sort_keys=True, indent=1)
        handle.write("\n")


def load_recording(path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported recording schema {data.get('schema')!r}; "
            f"this build reads schema {SCHEMA_VERSION}"
        )
    return data


# ----------------------------------------------------------------------
# Rendering helpers
# ----------------------------------------------------------------------
def _fmt(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(round(value, 9))
    return str(int(value))


def _split_metric(metric: str):
    if "{" not in metric:
        return metric, ""
    base, _, labels = metric.partition("{")
    return base, labels[:-1]


def _render_metric(base: str, labels: str, registry_name: str) -> str:
    node_label = f'node="{registry_name}"'
    merged = f"{node_label},{labels}" if labels else node_label
    return f"{base}{{{merged}}}"


def _merge_label(metric: str, registry_name: str) -> str:
    base, labels = _split_metric(metric)
    return _render_metric(base, labels, registry_name)
