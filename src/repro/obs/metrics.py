"""Deterministic per-node metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the unified home for the telemetry that used
to live in ~25 ad-hoc stat dicts.  Design constraints, in order:

* **Determinism.**  Every value is driven by protocol events and simulated
  time — never the wall clock — so two runs of the same seed produce
  byte-identical snapshots (pinned by ``tests/test_observability.py``).
  Snapshot iteration sorts keys; nothing depends on insertion order or
  ``PYTHONHASHSEED``.
* **Cheap when off.**  Nothing here is constructed unless
  :class:`~repro.common.config.ObservabilityConfig` enables observability;
  the instrumented hot paths then guard on a single attribute check.
* **Exact percentiles.**  Histograms keep fixed bucket counts for the
  Prometheus-style view *and* the raw observations, so percentile
  extraction is exact (nearest-rank over the sorted sample), not a bucket
  interpolation.  The simulator's event counts are small enough that
  retaining the sample is free in practice.

Instruments are keyed by ``(name, labels)`` where labels are an ordered
tuple of ``(key, value)`` string pairs — the same identity Prometheus uses.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

_NO_LABELS: LabelKey = ()


def label_key(labels: dict) -> LabelKey:
    """Canonical, hash-order-independent identity of a label set."""

    if not labels:
        return _NO_LABELS
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically growing count (with :meth:`set` for legacy mirrors)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        """Overwrite the value.

        Exists for the legacy stat-dict mirrors (:class:`StatsDict`): the
        old dicts are assigned absolute values, so the mirrored counter
        tracks the dict rather than re-deriving increments.
        """

        self.value = value


class Gauge:
    """A point-in-time value (queue depth, window occupancy, backlog)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


#: Default histogram bounds (seconds): spans sub-millisecond LAN hops to
#: tens of seconds of outage-widened certification latency.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


class Histogram:
    """Fixed-bucket histogram with exact percentile extraction."""

    __slots__ = ("bounds", "bucket_counts", "_values", "_dirty")

    def __init__(self, bounds: Optional[Iterable[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = tuple(
            bounds if bounds is not None else DEFAULT_BOUNDS
        )
        if any(b >= a for b, a in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        #: One count per bound plus the overflow bucket (``+Inf``).
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self._values: list[float] = []
        self._dirty = False

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self._values.append(value)
        self._dirty = True

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    def _sorted(self) -> list[float]:
        if self._dirty:
            self._values.sort()
            self._dirty = False
        return self._values

    def percentile(self, fraction: float) -> float:
        """Exact nearest-rank percentile of everything observed so far."""

        ordered = self._sorted()
        if not ordered:
            return 0.0
        index = min(int(fraction * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def summary(self) -> dict:
        ordered = self._sorted()
        return {
            "count": len(ordered),
            "sum": sum(ordered),
            "min": ordered[0] if ordered else 0.0,
            "max": ordered[-1] if ordered else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


def _metric_name(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """All instruments of one node (or one subsystem, e.g. the network)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A sorted, JSON-friendly view of every instrument."""

        return {
            "counters": {
                _metric_name(name, labels): counter.value
                for (name, labels), counter in sorted(self._counters.items())
            },
            "gauges": {
                _metric_name(name, labels): gauge.value
                for (name, labels), gauge in sorted(self._gauges.items())
            },
            "histograms": {
                _metric_name(name, labels): histogram.summary()
                for (name, labels), histogram in sorted(self._histograms.items())
            },
        }


class StatsDict(dict):
    """A ``stats`` dict that mirrors every assignment into a registry.

    The migration shim behind the "existing accessor names keep working"
    contract: node code (and every test asserting on ``node.stats[...]``)
    keeps reading and writing the plain dict interface, while each
    ``stats[key] = value`` also lands in ``registry.counter(prefix + key)``.
    ``setdefault`` and ``update`` are routed through ``__setitem__``
    explicitly because their C implementations on ``dict`` would bypass the
    override (they are only used to seed zeros, but the mirror should hold
    regardless).

    Only installed when observability is enabled — the default deployment
    keeps a plain ``dict`` and pays nothing.
    """

    def __init__(self, registry: MetricsRegistry, initial=None, prefix: str = "") -> None:
        super().__init__()
        self._registry = registry
        self._prefix = prefix
        #: key -> mirrored Counter, so steady-state writes skip the
        #: registry's (name, labels) resolution — this runs on every
        #: hot-path stat bump when observability is enabled.
        self._mirrors: Dict[object, Counter] = {}
        if initial:
            self.update(initial)

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        if isinstance(value, (int, float)):
            mirror = self._mirrors.get(key)
            if mirror is None:
                mirror = self._mirrors[key] = self._registry.counter(
                    self._prefix + str(key)
                )
            mirror.value = value

    def setdefault(self, key, default=None):
        if key not in self:
            self[key] = default
        return super().__getitem__(key)

    def update(self, *args, **kwargs) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def __deepcopy__(self, memo):
        # Snapshotting code may deep-copy node state; the mirror target is
        # observability plumbing, not state — copy the numbers only.
        return dict(self)
