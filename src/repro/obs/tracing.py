"""Causal tracing for protocol phases, propagated outside the payloads.

A :class:`Tracer` records :class:`Span` trees covering the full WedgeChain
round trip — Phase I commit, certify dispatch, cloud verification, edge
absorption, LSMerkle merge, 2PC prepare/decide, shard handoff — plus point
events (fault injections) that attach to whichever span was active when
they fired.

Two properties matter more than feature count:

* **Wire neutrality.**  Trace context never travels inside a message.  The
  network layer carries the sender's active :class:`SpanContext` as a
  sidecar next to each scheduled delivery and re-activates it around the
  receiver's handler, so signed payloads, encoded sizes, wire digests and
  the figure-4/5 metrics are byte-identical with tracing on or off.
* **Determinism.**  Trace and span ids are sequential (``t000001`` /
  ``s000001``), timestamps come from the simulated clock, and the exported
  records are sorted — a seeded run always produces the same JSONL bytes.

The simulator is single-threaded, so "the active span" is a plain stack —
no contextvars or thread locals needed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence


class SpanContext(NamedTuple):
    """The propagatable identity of a span (what crosses the network)."""

    trace_id: str
    span_id: str


class Span:
    """One timed protocol phase, with a causal parent and optional links.

    ``parent`` is the synchronous/causal ancestor (e.g. the cloud's
    ``certify.cloud`` span parents the edge's ``certify.absorb`` span via
    the delivered reply).  ``links`` are cross-trace references — a batched
    certify dispatch links every Phase I span whose block it carries.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "node", "start", "end", "links", "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        node: Optional[str],
        start: float,
        links: Sequence[SpanContext],
        attrs: dict,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.links = tuple(links)
        self.attrs = attrs

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start


#: Sentinel meaning "inherit whatever span is currently active".
CURRENT = object()


class Tracer:
    """Records spans and events against the simulated clock."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._next_trace = 0
        self._next_span = 0
        self._stack: List[SpanContext] = []
        self.spans: List[Span] = []
        self.events: List[dict] = []
        self._by_span_id: Dict[str, Span] = {}

    # ------------------------------------------------------------------
    # Context management
    # ------------------------------------------------------------------
    def current_context(self) -> Optional[SpanContext]:
        return self._stack[-1] if self._stack else None

    def push(self, ctx: SpanContext) -> None:
        """Activate a remote context (used by the network delivery hop)."""

        self._stack.append(ctx)

    def pop(self) -> None:
        self._stack.pop()

    @contextmanager
    def activate(self, ctx: SpanContext):
        self._stack.append(ctx)
        try:
            yield
        finally:
            self._stack.pop()

    # ------------------------------------------------------------------
    # Spans and events
    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: object = CURRENT,
        node: Optional[str] = None,
        links: Sequence[SpanContext] = (),
        **attrs: object,
    ) -> Span:
        if parent is CURRENT:
            parent = self.current_context()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            self._next_trace += 1
            trace_id = f"t{self._next_trace:06d}"
            parent_id = None
        self._next_span += 1
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{self._next_span:06d}",
            parent_id=parent_id,
            node=node,
            start=self._clock(),
            links=links,
            attrs=attrs,
        )
        self.spans.append(span)
        self._by_span_id[span.span_id] = span
        return span

    @contextmanager
    def span(
        self,
        name: str,
        parent: object = CURRENT,
        node: Optional[str] = None,
        links: Sequence[SpanContext] = (),
        **attrs: object,
    ):
        """Start a span, make it the active context, finish it on exit."""

        record = self.start_span(name, parent=parent, node=node, links=links, **attrs)
        self._stack.append(record.context)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = self._clock()

    def event(self, name: str, **attrs: object) -> None:
        """A point-in-time occurrence attributed to the active span (if any).

        Fault injections use this: the injector's send hook runs while the
        sender's span is active, so a dropped or delayed certify request
        shows up *inside* the certify trace it perturbed.
        """

        ctx = self.current_context()
        self.events.append(
            {
                "kind": "event",
                "name": name,
                "time": round(self._clock(), 9),
                "trace": ctx.trace_id if ctx is not None else None,
                "span": ctx.span_id if ctx is not None else None,
                "attrs": {key: attrs[key] for key in sorted(attrs)},
            }
        )

    # ------------------------------------------------------------------
    # Lookup helpers (used by tests and the report)
    # ------------------------------------------------------------------
    def find(self, span_id: str) -> Optional[Span]:
        return self._by_span_id.get(span_id)

    def spans_named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]
