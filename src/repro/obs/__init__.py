"""Unified observability: metrics registries, protocol tracing, reports.

One :class:`Observability` bundle serves an entire simulated deployment.
It is created lazily by :meth:`repro.sim.environment.Environment.\
ensure_observability` the first time a node is built with an enabled
:class:`~repro.common.config.ObservabilityConfig`, and shared by every
node, the network, and the fault injector from then on.

Everything is opt-in.  With the paper-default config nothing in this
package is imported at runtime, ``env.obs`` stays ``None``, and the
instrumented hot paths cost one attribute check — the simulation's event
stream, wire digests, and figure-4/5 metrics are untouched (asserted by
``tests/test_observability.py`` and the chaos overhead scenario).

Submodules:

* :mod:`repro.obs.metrics` — counters/gauges/histograms with exact
  percentiles, plus the :class:`~repro.obs.metrics.StatsDict` shim that
  keeps legacy ``node.stats`` accessors working.
* :mod:`repro.obs.tracing` — causal spans across Phase I/Phase II, 2PC,
  handoff; context rides the network as a sidecar, never in payloads.
* :mod:`repro.obs.export` — deterministic JSONL / Prometheus-text /
  snapshot-diff exports and run recordings.
* :mod:`repro.obs.report` — the fleet health report
  (``python -m repro.obs.report recording.json``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .metrics import MetricsRegistry, StatsDict
from .tracing import SpanContext, Tracer
from . import export as _export

__all__ = [
    "Observability",
    "MetricsRegistry",
    "StatsDict",
    "Tracer",
    "SpanContext",
]


class Observability:
    """Shared tracer + per-subsystem metrics registries for one deployment."""

    def __init__(self, config, clock: Callable[[], float]) -> None:
        self.config = config
        self.clock = clock
        self.tracer: Optional[Tracer] = Tracer(clock) if config.trace else None
        self._registries: Dict[str, MetricsRegistry] = {}

    @property
    def registries(self) -> Dict[str, MetricsRegistry]:
        return self._registries

    def registry_for(self, name: str) -> Optional[MetricsRegistry]:
        """The named registry, created on first use; ``None`` if metrics off."""

        if not self.config.metrics:
            return None
        registry = self._registries.get(name)
        if registry is None:
            registry = self._registries[name] = MetricsRegistry(name)
        return registry

    # ------------------------------------------------------------------
    # Export conveniences (thin wrappers over :mod:`repro.obs.export`)
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        return _export.metrics_snapshot(self)

    def prometheus_text(self) -> str:
        return _export.prometheus_text(self)

    def trace_jsonl(self) -> str:
        return _export.trace_jsonl(self.tracer)

    def recording(self) -> dict:
        return _export.recording(self)

    def write_recording(self, path) -> None:
        _export.write_recording(self, path)
