"""Fleet health report: one readable summary of a recorded run.

Renders per-node throughput, per-shard occupancy, certify-pipeline state,
degraded/quarantined partitions, WAN traffic by message type, storage
timings, and a span/fault digest of the trace.  Consumes the recording
format produced by :meth:`repro.obs.Observability.write_recording`.

Run over a recorded run::

    python -m repro.obs.report recording.json

or with no argument to run a small seeded demo deployment and report on it.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence

from .export import load_recording

#: Counters surfaced in the throughput table when present (per node).
_THROUGHPUT_KEYS = (
    "entries_logged",
    "blocks_formed",
    "certified_blocks",
    "certificates_absorbed",
    "certifications",
    "reads_served",
    "gets_served",
)


def _section(lines: List[str], title: str) -> None:
    if lines and lines[-1] != "":
        lines.append("")
    lines.append(title)
    lines.append("-" * len(title))


def _counters(registry: dict) -> Dict[str, float]:
    return registry.get("counters", {})


def _gauges(registry: dict) -> Dict[str, float]:
    return registry.get("gauges", {})


def _label_of(metric: str) -> str:
    """``'x{shard="3"}'`` -> ``'3'`` (first label value)."""

    if "{" not in metric:
        return ""
    inside = metric[metric.index("{") + 1 : -1]
    first = inside.split(",", 1)[0]
    return first.split("=", 1)[1].strip('"') if "=" in first else inside


def fleet_health_report(recording: dict) -> str:
    metrics: Dict[str, dict] = recording.get("metrics", {})
    trace: Sequence[dict] = recording.get("trace", [])
    node_names = sorted(name for name in metrics if name != "network")
    lines: List[str] = ["=== WedgeChain fleet health report ==="]

    # ------------------------------------------------------------------
    # Per-node throughput
    # ------------------------------------------------------------------
    _section(lines, "Throughput by node")
    for node in node_names:
        counters = _counters(metrics[node])
        parts = [
            f"{key}={int(counters[key])}"
            for key in _THROUGHPUT_KEYS
            if key in counters
        ]
        if parts:
            lines.append(f"  {node:<12} " + "  ".join(parts))
    if lines[-1].startswith("Throughput") or lines[-1].startswith("---"):
        lines.append("  (no throughput counters recorded)")

    # ------------------------------------------------------------------
    # Per-shard state (sharded deployments only)
    # ------------------------------------------------------------------
    shard_lines: List[str] = []
    for node in node_names:
        gauges = _gauges(metrics[node])
        entries = {
            _label_of(metric): value
            for metric, value in gauges.items()
            if metric.startswith("shard_entries{")
        }
        if entries:
            rendered = "  ".join(
                f"shard {shard}: {int(count)}" for shard, count in sorted(entries.items())
            )
            shard_lines.append(f"  {node:<12} {rendered}")
    if shard_lines:
        _section(lines, "Entries by shard")
        lines.extend(shard_lines)

    # ------------------------------------------------------------------
    # Certify pipeline occupancy
    # ------------------------------------------------------------------
    pipeline_lines: List[str] = []
    for node in node_names:
        counters = _counters(metrics[node])
        gauges = _gauges(metrics[node])
        in_flight = sum(
            value for metric, value in gauges.items()
            if metric.startswith("certify_in_flight")
        )
        queued = sum(
            value for metric, value in gauges.items()
            if metric.startswith("certify_queued")
        )
        certify_counters = {
            metric: value
            for metric, value in counters.items()
            if metric.startswith("certify") or metric.startswith("shard_certify")
        }
        if certify_counters or in_flight or queued:
            rendered = "  ".join(
                f"{metric}={int(value)}" for metric, value in sorted(certify_counters.items())
            )
            pipeline_lines.append(
                f"  {node:<12} in_flight={int(in_flight)}  queued={int(queued)}"
                + (f"  {rendered}" if rendered else "")
            )
    if pipeline_lines:
        _section(lines, "Certify pipeline")
        lines.extend(pipeline_lines)

    # ------------------------------------------------------------------
    # Degraded durability / quarantined partitions
    # ------------------------------------------------------------------
    degraded_lines: List[str] = []
    for node in node_names:
        counters = _counters(metrics[node])
        flagged = {
            metric: value
            for metric, value in counters.items()
            if ("degraded" in metric or "quarantin" in metric or "write_error" in metric)
            and value
        }
        if flagged:
            rendered = "  ".join(
                f"{metric}={int(value)}" for metric, value in sorted(flagged.items())
            )
            degraded_lines.append(f"  {node:<12} {rendered}")
    _section(lines, "Degraded / quarantined")
    if degraded_lines:
        lines.extend(degraded_lines)
    else:
        lines.append("  none — every partition at full durability")

    # ------------------------------------------------------------------
    # WAN bytes by message type
    # ------------------------------------------------------------------
    network = metrics.get("network", {})
    wan = {
        _type_label(metric): value
        for metric, value in _counters(network).items()
        if metric.startswith("net_bytes{") and 'link="wan"' in metric
    }
    if wan:
        _section(lines, "WAN bytes by message type")
        total = sum(wan.values())
        for mtype, value in sorted(wan.items(), key=lambda item: (-item[1], item[0])):
            share = 100.0 * value / total if total else 0.0
            lines.append(f"  {mtype:<28} {int(value):>10} B  ({share:4.1f}%)")
        lines.append(f"  {'total':<28} {int(total):>10} B")

    # ------------------------------------------------------------------
    # Storage timings
    # ------------------------------------------------------------------
    storage_lines: List[str] = []
    for node in node_names:
        counters = _counters(metrics[node])
        hists = metrics[node].get("histograms", {})
        flagged = {
            metric: value
            for metric, value in counters.items()
            if metric.startswith("storage_") and value
        }
        timings = {
            metric: summary
            for metric, summary in hists.items()
            if metric.startswith("storage_")
        }
        if flagged or timings:
            rendered = "  ".join(
                f"{metric}={int(value)}" for metric, value in sorted(flagged.items())
            )
            storage_lines.append(f"  {node:<12} {rendered}")
            for metric, summary in sorted(timings.items()):
                storage_lines.append(
                    f"    {metric}: n={summary['count']}  "
                    f"p50={summary['p50'] * 1000:.3f}ms  p99={summary['p99'] * 1000:.3f}ms"
                )
    if storage_lines:
        _section(lines, "Storage (durable log)")
        lines.extend(storage_lines)

    # ------------------------------------------------------------------
    # Trace digest
    # ------------------------------------------------------------------
    spans = [record for record in trace if record.get("kind") == "span"]
    events = [record for record in trace if record.get("kind") == "event"]
    if spans or events:
        _section(lines, "Trace digest")
        by_name: Dict[str, List[float]] = {}
        for span in spans:
            end = span.get("end")
            duration = (end - span["start"]) if end is not None else 0.0
            by_name.setdefault(span["name"], []).append(duration)
        for name in sorted(by_name):
            durations = sorted(by_name[name])
            count = len(durations)
            p50 = durations[min(count // 2, count - 1)]
            p99 = durations[min(int(count * 0.99), count - 1)]
            lines.append(
                f"  {name:<20} n={count:<5} p50={p50 * 1000:8.3f}ms  p99={p99 * 1000:8.3f}ms"
            )
        if events:
            fault_counts: Dict[str, int] = {}
            for event in events:
                fault_counts[event["name"]] = fault_counts.get(event["name"], 0) + 1
            linked = sum(1 for event in events if event.get("span"))
            lines.append(
                f"  events: {len(events)} total, {linked} linked to an active span"
            )
            for name, count in sorted(fault_counts.items()):
                lines.append(f"    {name:<20} x{count}")

    lines.append("")
    return "\n".join(lines)


def _type_label(metric: str) -> str:
    inside = metric[metric.index("{") + 1 : -1]
    for part in inside.split(","):
        key, _, value = part.partition("=")
        if key == "type":
            return value.strip('"')
    return inside


def _demo_recording() -> dict:
    """A tiny seeded deployment with observability on, for `--demo` runs."""

    from ..common.config import LoggingConfig, ObservabilityConfig, SystemConfig
    from ..core.system import WedgeChainSystem
    from ..log.proofs import CommitPhase

    config = SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=4),
        observability=ObservabilityConfig(enabled=True),
    )
    system = WedgeChainSystem.build(config=config, num_clients=1, seed=11)
    client = system.client()
    operations = [
        client.put(f"demo-{index:03d}", f"value-{index}".encode()) for index in range(12)
    ]
    system.wait_for_all([(client, op) for op in operations], CommitPhase.PHASE_TWO)
    return system.env.obs.recording()


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if argv:
        recording = load_recording(argv[0])
    else:
        print("(no recording given — running a small seeded demo deployment)\n")
        recording = _demo_recording()
    print(fleet_health_report(recording), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
