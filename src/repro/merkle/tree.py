"""A Merkle tree over an ordered sequence of leaf digests.

Merkle trees let an untrusted node prove that a piece of data belongs to a
collection whose root was signed by a trusted party (Section II-B.2).  In
LSMerkle, each LSM level above L0 maintains one Merkle tree whose leaves are
the digests of that level's pages; the cloud node signs the per-level roots
and the global root during merges.

The implementation hashes pairs of siblings level by level; odd nodes are
promoted unchanged (a common, proof-friendly convention).  Inclusion proofs
carry the sibling digest and the side at each step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..common.errors import ProofVerificationError
from ..crypto.hashing import EMPTY_DIGEST, digest_leaf, digest_pair


@dataclass(frozen=True)
class ProofStep:
    """One step of a Merkle inclusion proof."""

    sibling: str
    #: "left" if the sibling is the left child at this level, else "right".
    side: str

    def __post_init__(self) -> None:
        if self.side not in ("left", "right"):
            raise ProofVerificationError(f"invalid proof side {self.side!r}")


@dataclass(frozen=True)
class InclusionProof:
    """Proof that a leaf digest is included under a Merkle root."""

    leaf_index: int
    leaf_digest: str
    steps: tuple[ProofStep, ...]

    @property
    def wire_size(self) -> int:
        return 72 + 72 * len(self.steps)

    def compute_root(self) -> str:
        """Fold the proof steps into the root this proof commits to."""

        current = self.leaf_digest
        for step in self.steps:
            if step.side == "left":
                current = digest_pair(step.sibling, current)
            else:
                current = digest_pair(current, step.sibling)
        return current

    def verifies_against(self, root: str) -> bool:
        return self.compute_root() == root


class MerkleTree:
    """An immutable Merkle tree built over leaf digests."""

    def __init__(self, leaf_digests: Sequence[str]) -> None:
        self._leaves: tuple[str, ...] = tuple(leaf_digests)
        self._levels: list[list[str]] = self._build_levels(self._leaves)

    @staticmethod
    def _build_levels(leaves: Sequence[str]) -> list[list[str]]:
        if not leaves:
            return [[EMPTY_DIGEST]]
        levels = [list(leaves)]
        current = list(leaves)
        while len(current) > 1:
            parent: list[str] = []
            for index in range(0, len(current), 2):
                if index + 1 < len(current):
                    parent.append(digest_pair(current[index], current[index + 1]))
                else:
                    # Odd node: promote unchanged.
                    parent.append(current[index])
            levels.append(parent)
            current = parent
        return levels

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_leaf_data(cls, items: Iterable[bytes]) -> "MerkleTree":
        """Build a tree whose leaves are the digests of raw byte strings."""

        return cls([digest_leaf(item) for item in items])

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        return len(self._leaves)

    @property
    def leaves(self) -> tuple[str, ...]:
        return self._leaves

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    @property
    def height(self) -> int:
        """Number of hashing levels above the leaves."""

        return max(len(self._levels) - 1, 0)

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------
    def prove(self, leaf_index: int) -> InclusionProof:
        """Produce an inclusion proof for the leaf at *leaf_index*."""

        if not 0 <= leaf_index < len(self._leaves):
            raise ProofVerificationError(
                f"leaf index {leaf_index} out of range (0..{len(self._leaves) - 1})"
            )
        steps: list[ProofStep] = []
        index = leaf_index
        for level in self._levels[:-1]:
            sibling_index = index ^ 1
            if sibling_index < len(level):
                side = "left" if sibling_index < index else "right"
                steps.append(ProofStep(sibling=level[sibling_index], side=side))
            # If there is no sibling the node was promoted unchanged: no step.
            index //= 2
        return InclusionProof(
            leaf_index=leaf_index,
            leaf_digest=self._leaves[leaf_index],
            steps=tuple(steps),
        )

    def verify(self, proof: InclusionProof) -> bool:
        """Verify a proof against this tree's root."""

        return proof.verifies_against(self.root)


def verify_inclusion(root: str, proof: InclusionProof) -> bool:
    """Verify an inclusion proof against an externally obtained root."""

    return proof.verifies_against(root)
