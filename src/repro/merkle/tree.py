"""A Merkle tree over an ordered sequence of leaf digests.

Merkle trees let an untrusted node prove that a piece of data belongs to a
collection whose root was signed by a trusted party (Section II-B.2).  In
LSMerkle, each LSM level above L0 maintains one Merkle tree whose leaves are
the digests of that level's pages; the cloud node signs the per-level roots
and the global root during merges.

The implementation hashes pairs of siblings level by level; odd nodes are
promoted unchanged (a common, proof-friendly convention).  Inclusion proofs
carry the sibling digest and the side at each step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..common.errors import ProofVerificationError
from ..crypto.hashing import EMPTY_DIGEST, digest_leaf, digest_pair


@dataclass(frozen=True)
class ProofStep:
    """One step of a Merkle inclusion proof."""

    sibling: str
    #: "left" if the sibling is the left child at this level, else "right".
    side: str

    def __post_init__(self) -> None:
        if self.side not in ("left", "right"):
            raise ProofVerificationError(f"invalid proof side {self.side!r}")


@dataclass(frozen=True)
class InclusionProof:
    """Proof that a leaf digest is included under a Merkle root."""

    leaf_index: int
    leaf_digest: str
    steps: tuple[ProofStep, ...]

    @property
    def wire_size(self) -> int:
        return 72 + 72 * len(self.steps)

    def compute_root(self) -> str:
        """Fold the proof steps into the root this proof commits to."""

        current = self.leaf_digest
        for step in self.steps:
            if step.side == "left":
                current = digest_pair(step.sibling, current)
            else:
                current = digest_pair(current, step.sibling)
        return current

    def verifies_against(self, root: str) -> bool:
        return self.compute_root() == root


class MerkleTree:
    """A Merkle tree over leaf digests with incremental update support.

    The tree is cheap to keep in sync with a changing leaf set: single-leaf
    :meth:`replace_leaf` and :meth:`append_leaf` touch only the O(log n)
    interior nodes on the affected root path instead of rebuilding every
    level, and :meth:`update_leaves` diffs a whole new leaf sequence against
    the current one, choosing incremental repair or a full rebuild, whichever
    is cheaper.  All update paths produce levels identical to a from-scratch
    construction (property-tested against :meth:`_build_levels`).
    """

    def __init__(self, leaf_digests: Sequence[str]) -> None:
        self._leaves: list[str] = list(leaf_digests)
        self._levels: list[list[str]] = self._build_levels(self._leaves)

    @staticmethod
    def _build_levels(leaves: Sequence[str]) -> list[list[str]]:
        if not leaves:
            return [[EMPTY_DIGEST]]
        levels = [list(leaves)]
        current = list(leaves)
        while len(current) > 1:
            parent: list[str] = []
            for index in range(0, len(current), 2):
                if index + 1 < len(current):
                    parent.append(digest_pair(current[index], current[index + 1]))
                else:
                    # Odd node: promote unchanged.
                    parent.append(current[index])
            levels.append(parent)
            current = parent
        return levels

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_leaf_data(cls, items: Iterable[bytes]) -> "MerkleTree":
        """Build a tree whose leaves are the digests of raw byte strings."""

        return cls([digest_leaf(item) for item in items])

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def _refresh_parent(self, level: int, parent_index: int) -> None:
        """Recompute one interior node from its children, growing the level
        list when the appended node opens a new hashing level."""

        children = self._levels[level]
        if level + 1 == len(self._levels):
            self._levels.append([])
        parents = self._levels[level + 1]
        left = 2 * parent_index
        if left + 1 < len(children):
            node = digest_pair(children[left], children[left + 1])
        else:
            node = children[left]
        if parent_index == len(parents):
            parents.append(node)
        else:
            parents[parent_index] = node

    def _bubble_up(self, leaf_index: int) -> None:
        """Refresh every interior node on the root path of *leaf_index*."""

        level = 0
        index = leaf_index
        while len(self._levels[level]) > 1:
            index //= 2
            self._refresh_parent(level, index)
            level += 1

    def replace_leaf(self, leaf_index: int, digest: str) -> None:
        """Replace one leaf digest, updating only its root path."""

        if not 0 <= leaf_index < len(self._leaves):
            raise ProofVerificationError(
                f"leaf index {leaf_index} out of range (0..{len(self._leaves) - 1})"
            )
        self._leaves[leaf_index] = digest
        self._levels[0][leaf_index] = digest
        self._bubble_up(leaf_index)

    def append_leaf(self, digest: str) -> None:
        """Append one leaf digest, updating only its root path."""

        if not self._leaves:
            self._leaves = [digest]
            self._levels = [[digest]]
            return
        self._leaves.append(digest)
        self._levels[0].append(digest)
        self._bubble_up(len(self._leaves) - 1)

    def update_leaves(self, leaf_digests: Sequence[str]) -> None:
        """Make the tree's leaves equal *leaf_digests* with minimal hashing.

        Leaves that changed in place are repaired via :meth:`replace_leaf`
        and extra trailing leaves via :meth:`append_leaf`; when the new
        sequence is shorter or mostly different, a full rebuild is cheaper
        and is used instead.
        """

        new_leaves = list(leaf_digests)
        current = self._leaves
        if len(new_leaves) < len(current) or not current:
            self._leaves = new_leaves
            self._levels = self._build_levels(new_leaves)
            return
        changed = [
            index
            for index in range(len(current))
            if current[index] != new_leaves[index]
        ]
        appended = len(new_leaves) - len(current)
        if 2 * (len(changed) + appended) >= len(new_leaves):
            self._leaves = new_leaves
            self._levels = self._build_levels(new_leaves)
            return
        for index in changed:
            self.replace_leaf(index, new_leaves[index])
        for digest in new_leaves[len(current):]:
            self.append_leaf(digest)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        return len(self._leaves)

    @property
    def leaves(self) -> tuple[str, ...]:
        return tuple(self._leaves)

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    @property
    def height(self) -> int:
        """Number of hashing levels above the leaves."""

        return max(len(self._levels) - 1, 0)

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------
    def prove(self, leaf_index: int) -> InclusionProof:
        """Produce an inclusion proof for the leaf at *leaf_index*."""

        if not 0 <= leaf_index < len(self._leaves):
            raise ProofVerificationError(
                f"leaf index {leaf_index} out of range (0..{len(self._leaves) - 1})"
            )
        steps: list[ProofStep] = []
        index = leaf_index
        for level in self._levels[:-1]:
            sibling_index = index ^ 1
            if sibling_index < len(level):
                side = "left" if sibling_index < index else "right"
                steps.append(ProofStep(sibling=level[sibling_index], side=side))
            # If there is no sibling the node was promoted unchanged: no step.
            index //= 2
        return InclusionProof(
            leaf_index=leaf_index,
            leaf_digest=self._leaves[leaf_index],
            steps=tuple(steps),
        )

    def verify(self, proof: InclusionProof) -> bool:
        """Verify a proof against this tree's root."""

        return proof.verifies_against(self.root)


def verify_inclusion(root: str, proof: InclusionProof) -> bool:
    """Verify an inclusion proof against an externally obtained root."""

    return proof.verifies_against(root)
