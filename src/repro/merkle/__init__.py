"""Merkle tree substrate used by LSMerkle's authenticated levels."""

from .tree import InclusionProof, MerkleTree, ProofStep, verify_inclusion

__all__ = ["InclusionProof", "MerkleTree", "ProofStep", "verify_inclusion"]
