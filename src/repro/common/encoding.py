"""Canonical, deterministic encoding of protocol values.

Digests and signatures are only meaningful if every node encodes the same
logical value to the same bytes.  This module provides a small canonical
encoder: values are converted to a JSON-compatible tree (dataclasses become
``{"__type__": ..., fields...}`` objects, byte strings become hex) and then
serialized with sorted keys and no whitespace.  The encoding is intentionally
simple and human-inspectable; it is a stand-in for the protobuf/CBOR encoding
a production deployment would use.

The encoder has two implementations that produce byte-identical output:

* :func:`to_jsonable` + ``json.dumps`` — the reference path, kept for
  decoding, debugging, and as the oracle in equivalence tests;
* a fragment encoder that serializes each value directly to its canonical
  JSON text through a **per-class precompiled template** (one C-level ``%``
  interpolation per dataclass instead of per-field joins) and **memoizes the
  fragment on frozen dataclass instances**.
  Records, pages, blocks, and messages are frozen and deeply immutable, but
  their encodings are requested over and over (digests, signatures,
  ``wire_size`` accounting), so the memo turns repeated full-tree walks into
  a dictionary lookup.  A fragment is only cached when everything beneath it
  is immutable (scalars, bytes, tuples, enums, other frozen dataclasses);
  values containing lists, dicts, sets, or non-frozen dataclasses are
  re-encoded on every call, exactly like the reference path.

Because ``json.dumps`` is used with ``ensure_ascii=True``, canonical text is
pure ASCII and the encoded byte length equals the fragment string length —
which makes :func:`encoded_size` O(1) for memoized values.

Trust-model note: the simulator delivers messages by reference, so an
instance memo is technically state the sender could have attached (this has
always been true of ``Block.digest()``'s cache, which verifiers consult).
The modeled adversaries (:mod:`repro.nodes.malicious`) tamper with *content*,
never with caches — a real deployment would deserialize received bytes and
no attached memo would survive the wire.  Code that must not rely on this
simulation artifact (e.g. forensic tooling) should use
:func:`reference_encode`, which ignores all memos.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from typing import Any

from .errors import SerializationError

#: Attribute name used to memoize canonical fragments on frozen dataclass
#: instances (set via ``object.__setattr__``; invisible to ``fields()``,
#: equality, and the encoding itself).
_FRAGMENT_ATTR = "_canonical_fragment"

#: Canonical JSON text of scalars: identical to how ``json.dumps`` renders
#: them inside a larger document (separators only affect containers).
_scalar_text = json.dumps

#: Per-dataclass precompiled encoder: a single ``%``-template whose literal
#: segments (braces, sorted keys, the ``__type__`` tag) were assembled once,
#: plus the field names feeding its ``%s`` slots in canonical order.  One
#: C-level interpolation replaces the per-field prefix concatenations and
#: the final join of the naive plan — the "single precompiled fast path" of
#: the canonical block-digest encoding.
_CLASS_TEMPLATES: dict[type, tuple[str, tuple[str, ...]]] = {}

#: Canonical fragments of enum members (enum members are singletons).
_ENUM_FRAGMENTS: dict[Enum, str] = {}


def _class_template(cls: type) -> tuple[str, tuple[str, ...]]:
    compiled = _CLASS_TEMPLATES.get(cls)
    if compiled is None:
        entries: list[tuple[str, Any]] = [
            (field.name, field.name) for field in dataclasses.fields(cls)
        ]
        entries.append(("__type__", None))
        entries.sort(key=lambda entry: entry[0])
        parts: list[str] = []
        field_names: list[str] = []
        for name, field_name in entries:
            if field_name is None:
                literal = _scalar_text(name) + ":" + _scalar_text(cls.__name__)
                parts.append(literal.replace("%", "%%"))
            else:
                parts.append(_scalar_text(name).replace("%", "%%") + ":%s")
                field_names.append(field_name)
        template = "{" + ",".join(parts) + "}"
        compiled = (template, tuple(field_names))
        _CLASS_TEMPLATES[cls] = compiled
    return compiled


def _fragment(value: Any) -> tuple[str, bool]:
    """Return ``(canonical JSON text, cacheable)`` for *value*.

    ``cacheable`` is ``True`` only when the value (and everything beneath
    it) is immutable, i.e. when memoizing the fragment can never observe a
    stale encoding.
    """

    if value is None or isinstance(value, (bool, int, float, str)):
        return _scalar_text(value), True
    if isinstance(value, bytes):
        return '{"__bytes__":' + _scalar_text(value.hex()) + "}", True
    if isinstance(value, Enum):
        cached = _ENUM_FRAGMENTS.get(value)
        if cached is not None:
            return cached, True
        inner, inner_cacheable = _fragment(value.value)
        text = (
            '{"__enum__":'
            + _scalar_text(type(value).__name__)
            + ',"value":'
            + inner
            + "}"
        )
        if inner_cacheable:
            _ENUM_FRAGMENTS[value] = text
        return text, inner_cacheable
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        frozen = type(value).__dataclass_params__.frozen
        if frozen:
            cached = getattr(value, _FRAGMENT_ATTR, None)
            if cached is not None:
                return cached, True
        template, field_names = _class_template(type(value))
        cacheable = frozen
        fragments: list[str] = []
        for field_name in field_names:
            child_text, child_cacheable = _fragment(getattr(value, field_name))
            cacheable = cacheable and child_cacheable
            fragments.append(child_text)
        text = template % tuple(fragments)
        if cacheable:
            try:
                object.__setattr__(value, _FRAGMENT_ATTR, text)
            except AttributeError:
                # Slotted dataclasses have nowhere to stash the memo.
                cacheable = False
        return text, cacheable
    if isinstance(value, (list, tuple)):
        parts = []
        cacheable = isinstance(value, tuple)
        for item in value:
            text, child_cacheable = _fragment(item)
            cacheable = cacheable and child_cacheable
            parts.append(text)
        return "[" + ",".join(parts) + "]", cacheable
    if isinstance(value, frozenset):
        # Matches the reference path: items become jsonable trees, are sorted,
        # and serialize as a list (mixed/unorderable items raise TypeError,
        # which canonical_encode rewraps, exactly like the reference).
        items = sorted(to_jsonable(item) for item in value)
        parts = [
            json.dumps(item, sort_keys=True, separators=(",", ":"))
            for item in items
        ]
        cacheable = all(
            item is None or isinstance(item, (bool, int, float, str))
            for item in items
        )
        return "[" + ",".join(parts) + "]", cacheable
    if isinstance(value, dict):
        # Coercing through a dict mirrors the reference path's key-collision
        # semantics (later duplicates of a coerced key win).
        coerced: dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, (str, int, float, bool)):
                key = str(key)
            coerced[str(key)] = item
        parts = [
            _scalar_text(key) + ":" + _fragment(coerced[key])[0]
            for key in sorted(coerced)
        ]
        return "{" + ",".join(parts) + "}", False
    raise SerializationError(f"cannot canonically encode value of type {type(value)!r}")


def to_jsonable(value: Any) -> Any:
    """Convert *value* to a tree of JSON-compatible primitives.

    Supports dataclasses, enums, ``bytes``, ``tuple``/``list``, ``dict`` with
    string-convertible keys, and the usual scalars.  Unknown types raise
    :class:`~repro.common.errors.SerializationError` rather than silently
    producing unstable encodings.
    """

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, Enum):
        return {"__enum__": type(value).__name__, "value": value.value}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload = {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        payload["__type__"] = type(value).__name__
        return payload
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, frozenset):
        return sorted(to_jsonable(item) for item in value)
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, (str, int, float, bool)):
                key = str(key)
            encoded[str(key)] = to_jsonable(item)
        return encoded
    raise SerializationError(f"cannot canonically encode value of type {type(value)!r}")


def canonical_encode(value: Any) -> bytes:
    """Encode *value* into canonical bytes suitable for hashing and signing."""

    try:
        text, _ = _fragment(value)
    except (TypeError, ValueError) as exc:
        raise SerializationError(str(exc)) from exc
    return text.encode("utf-8")


def reference_encode(value: Any) -> bytes:
    """Encode via the memo-free reference path (``to_jsonable`` + dumps).

    Used by tests to assert that the fragment encoder is byte-identical to
    the original implementation, and available to callers that must not
    trust any cached state attached to a received object.
    """

    try:
        tree = to_jsonable(value)
        return json.dumps(tree, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerializationError(str(exc)) from exc


def canonical_decode(data: bytes) -> Any:
    """Decode canonical bytes back into the JSON-compatible tree.

    The decoder does not reconstruct dataclass instances; it is primarily
    used by tests and debugging tools to inspect what was signed.
    """

    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(str(exc)) from exc


def encoded_size(value: Any) -> int:
    """Return the canonical encoded size of *value* in bytes.

    The simulator uses this to charge bandwidth for messages; it is the
    single place where "message size" is defined so that data-free
    certification (sending digests) and full-data transfer (sending blocks)
    are compared consistently.  Canonical text is pure ASCII, so the byte
    size equals the fragment length — O(1) for memoized values.
    """

    try:
        text, _ = _fragment(value)
    except (TypeError, ValueError) as exc:
        raise SerializationError(str(exc)) from exc
    return len(text)
