"""Canonical, deterministic encoding of protocol values.

Digests and signatures are only meaningful if every node encodes the same
logical value to the same bytes.  This module provides a small canonical
encoder: values are converted to a JSON-compatible tree (dataclasses become
``{"__type__": ..., fields...}`` objects, byte strings become hex) and then
serialized with sorted keys and no whitespace.  The encoding is intentionally
simple and human-inspectable; it is a stand-in for the protobuf/CBOR encoding
a production deployment would use.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from typing import Any

from .errors import SerializationError


def to_jsonable(value: Any) -> Any:
    """Convert *value* to a tree of JSON-compatible primitives.

    Supports dataclasses, enums, ``bytes``, ``tuple``/``list``, ``dict`` with
    string-convertible keys, and the usual scalars.  Unknown types raise
    :class:`~repro.common.errors.SerializationError` rather than silently
    producing unstable encodings.
    """

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, Enum):
        return {"__enum__": type(value).__name__, "value": value.value}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload = {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        payload["__type__"] = type(value).__name__
        return payload
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, frozenset):
        return sorted(to_jsonable(item) for item in value)
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, (str, int, float, bool)):
                key = str(key)
            encoded[str(key)] = to_jsonable(item)
        return encoded
    raise SerializationError(f"cannot canonically encode value of type {type(value)!r}")


def canonical_encode(value: Any) -> bytes:
    """Encode *value* into canonical bytes suitable for hashing and signing."""

    try:
        tree = to_jsonable(value)
        return json.dumps(tree, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerializationError(str(exc)) from exc


def canonical_decode(data: bytes) -> Any:
    """Decode canonical bytes back into the JSON-compatible tree.

    The decoder does not reconstruct dataclass instances; it is primarily
    used by tests and debugging tools to inspect what was signed.
    """

    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(str(exc)) from exc


def encoded_size(value: Any) -> int:
    """Return the canonical encoded size of *value* in bytes.

    The simulator uses this to charge bandwidth for messages; it is the
    single place where "message size" is defined so that data-free
    certification (sending digests) and full-data transfer (sending blocks)
    are compared consistently.
    """

    return len(canonical_encode(value))
