"""Geographic regions used in the paper's evaluation.

The evaluation (Section VI) places edge and cloud nodes in five Amazon AWS
regions: California (C), Oregon (O), Virginia (V), Ireland (I) and
Mumbai (M).  Table I reports the round-trip times from California to each of
the other regions.  The :mod:`repro.sim.topology` module turns these regions
into a full latency matrix.
"""

from __future__ import annotations

from enum import Enum


class Region(str, Enum):
    """An AWS-style geographic region hosting a node."""

    CALIFORNIA = "california"
    OREGON = "oregon"
    VIRGINIA = "virginia"
    IRELAND = "ireland"
    MUMBAI = "mumbai"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def short_code(self) -> str:
        """Return the single-letter code used in the paper (C, O, V, I, M)."""

        return _SHORT_CODES[self]

    @classmethod
    def from_short_code(cls, code: str) -> "Region":
        """Resolve a single-letter paper code (case-insensitive) to a region."""

        upper = code.strip().upper()
        for region, short in _SHORT_CODES.items():
            if short == upper:
                return region
        raise ValueError(f"unknown region code: {code!r}")


_SHORT_CODES = {
    Region.CALIFORNIA: "C",
    Region.OREGON: "O",
    Region.VIRGINIA: "V",
    Region.IRELAND: "I",
    Region.MUMBAI: "M",
}

#: The ordering used by the paper's tables and figures.
PAPER_REGION_ORDER = (
    Region.CALIFORNIA,
    Region.OREGON,
    Region.VIRGINIA,
    Region.IRELAND,
    Region.MUMBAI,
)
