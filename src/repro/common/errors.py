"""Exception hierarchy shared across the WedgeChain reproduction.

Every error raised by the library derives from :class:`WedgeChainError` so
that callers can distinguish library failures from programming errors with a
single ``except`` clause.  The sub-classes mirror the failure domains of the
paper: cryptographic verification, protocol violations by untrusted edge
nodes, certification conflicts detected at the cloud, and configuration
problems in the simulator or workloads.
"""

from __future__ import annotations


class WedgeChainError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(WedgeChainError):
    """A configuration object is inconsistent or out of range."""


class SerializationError(WedgeChainError):
    """A value could not be canonically encoded or decoded."""


class CryptoError(WedgeChainError):
    """Base class for failures in the cryptographic substrate."""


class SignatureError(CryptoError):
    """A signature failed to verify or could not be produced."""


class UnknownSignerError(CryptoError):
    """A signature referenced a key that is not in the registry."""


class DigestMismatchError(CryptoError):
    """A recomputed digest does not match the digest carried in a message."""


class ProtocolError(WedgeChainError):
    """Base class for violations of the WedgeChain protocols."""


class InvalidMessageError(ProtocolError):
    """A message is malformed, unsigned, or signed by the wrong party."""


class CertificationConflictError(ProtocolError):
    """The cloud node observed two different digests for the same block id.

    This is the event that flags an edge node as malicious (Section IV-D of
    the paper): an edge node may never certify two different blocks under the
    same block id.
    """


class MaliciousBehaviourDetected(ProtocolError):
    """Raised (or recorded) when a client or the cloud proves an edge lied."""


class BlockNotFoundError(ProtocolError):
    """A read referenced a block id the edge node does not have."""


class KeyNotFoundError(ProtocolError):
    """A get referenced a key that is not present in the LSMerkle index."""


class FreshnessViolationError(ProtocolError):
    """A read response is older than the configured freshness window."""


class ProofVerificationError(ProtocolError):
    """A Merkle/read/commit proof failed verification at the client."""


class MergeProtocolError(ProtocolError):
    """The cloud rejected a merge request (bad proofs, stale pages, ...)."""


class DisputeRejectedError(ProtocolError):
    """A dispute was judged to be unfounded by the cloud node."""


class StorageError(WedgeChainError):
    """Base class for failures in the durable storage backend."""


class StorageCorruptionError(StorageError):
    """On-disk state failed a checksum, digest, or root verification.

    Raised by segment replay (a sealed segment with a CRC mismatch), manifest
    loading (manifest checksum or page-digest mismatch), and recovery (the
    rebuilt Merkle roots disagree with the last durable signed root).  The
    partition that raised it must be quarantined, never served: the store can
    no longer prove its contents match what was signed.
    """


class StorageFullError(StorageError):
    """The store refused an append because the device is out of space."""


class PartitionQuarantinedError(StorageError):
    """An operation targeted a partition whose store failed verification.

    A quarantined partition refuses all service — serving unverifiable data
    would turn an edge's own disk fault into a convictable protocol lie.
    """


class SimulationError(WedgeChainError):
    """Base class for errors raised by the discrete-event simulator."""


class SimulationDeadlockError(SimulationError):
    """The simulator ran out of events before the experiment finished."""


class TransportError(WedgeChainError):
    """A message was addressed to a node unknown to the transport."""
