"""Node, client, block, and operation identifiers.

WedgeChain distinguishes three kinds of participants (Section III of the
paper): trusted *cloud* nodes, untrusted *edge* nodes, and authenticated
*clients*.  Block ids are monotonic integers scoped to a single edge node.
Operation ids let the client-side commit tracker correlate Phase I and
Phase II events for the same logical request.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum


class NodeRole(str, Enum):
    """The trust role a node plays in the system."""

    CLOUD = "cloud"
    EDGE = "edge"
    CLIENT = "client"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class NodeId:
    """A globally unique node identifier.

    Parameters
    ----------
    role:
        Whether the node is a cloud node, an edge node, or a client.
    name:
        A human readable, unique name (e.g. ``"edge-0"`` or ``"sensor-17"``).
    """

    role: NodeRole
    name: str

    def __str__(self) -> str:
        return f"{self.role.value}:{self.name}"

    @property
    def is_cloud(self) -> bool:
        return self.role is NodeRole.CLOUD

    @property
    def is_edge(self) -> bool:
        return self.role is NodeRole.EDGE

    @property
    def is_client(self) -> bool:
        return self.role is NodeRole.CLIENT


def cloud_id(name: str = "cloud-0") -> NodeId:
    """Convenience constructor for a cloud node identifier."""

    return NodeId(NodeRole.CLOUD, name)


def edge_id(name: str) -> NodeId:
    """Convenience constructor for an edge node identifier."""

    return NodeId(NodeRole.EDGE, name)


def client_id(name: str) -> NodeId:
    """Convenience constructor for a client identifier."""

    return NodeId(NodeRole.CLIENT, name)


#: Block ids are monotonic non-negative integers local to one edge node
#: (Section III: "Block ids are unique monotonic numbers assigned by the
#: edge node ... unique relative to an edge node").
BlockId = int

#: Shard ids index the key-space partitions of a sharded edge fleet
#: (``repro.sharding``); the cloud-signed shard map assigns each shard to
#: exactly one owning edge node.
ShardId = int


@dataclass(frozen=True, order=True)
class OperationId:
    """Identifies one logical client operation (add/read/put/get).

    The pair ``(client, sequence)`` is unique because every client numbers
    its own operations with a local counter.
    """

    client: NodeId
    sequence: int

    def __str__(self) -> str:
        return f"{self.client.name}#{self.sequence}"


class OperationKind(str, Enum):
    """The four public operations exposed by WedgeChain."""

    ADD = "add"
    READ = "read"
    PUT = "put"
    GET = "get"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SequenceGenerator:
    """A small monotonic counter used for operation and message sequencing."""

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)

    def next(self) -> int:
        """Return the next value in the sequence."""

        return next(self._counter)


@dataclass
class OperationRef:
    """A mutable reference handle returned to callers issuing operations."""

    operation_id: OperationId
    kind: OperationKind
    issued_at: float = 0.0
    metadata: dict = field(default_factory=dict)
