"""Configuration objects for the WedgeChain system and its simulator.

The defaults follow the paper's evaluation setup (Section VI): batches of
100 put operations with 100-byte values, an LSMerkle tree with four levels
whose thresholds are 10/10/100/1000 pages, the edge node in California and
the cloud node in Virginia.

**Default stance (settled in PR 7): paper-exact by default, fast by
config.**  Every throughput feature added since the seed — batch
certification (``certify_batch_size``), gossip batching (``gossip_batch``),
pipelined Phase II (``certify_pipeline_depth``), durable storage
(``StorageConfig``), observability (``ObservabilityConfig``) — defaults OFF
so that the figure-4/5 metrics stay byte-identical to the paper-calibrated
protocol under ``PYTHONHASHSEED=0``.
Deployments opt in per knob.  The stance is pinned by
``tests/test_paper_default_stance.py``; changing any of these defaults is a
figure recalibration, not a tweak.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .errors import ConfigurationError
from .regions import Region


@dataclass(frozen=True)
class LSMerkleConfig:
    """Structural parameters of the LSMerkle index.

    Parameters
    ----------
    level_thresholds:
        Maximum number of pages per level.  ``level_thresholds[0]`` is the
        in-memory WedgeChain buffer (L0); once it fills up its pages are
        merged into L1, and so on.  The paper's evaluation uses
        ``(10, 10, 100, 1000)``.
    """

    level_thresholds: tuple[int, ...] = (10, 10, 100, 1000)

    def __post_init__(self) -> None:
        if len(self.level_thresholds) < 2:
            raise ConfigurationError("LSMerkle needs at least two levels")
        if any(threshold <= 0 for threshold in self.level_thresholds):
            raise ConfigurationError("level thresholds must be positive")

    @property
    def num_levels(self) -> int:
        return len(self.level_thresholds)

    @classmethod
    def paper_default(cls) -> "LSMerkleConfig":
        """The four-level configuration used in Section VI."""

        return cls(level_thresholds=(10, 10, 100, 1000))

    @classmethod
    def exposition_example(cls) -> "LSMerkleConfig":
        """The small three-level configuration of Figure 3 (2, 2, 4 pages)."""

        return cls(level_thresholds=(2, 2, 4))


@dataclass(frozen=True)
class LoggingConfig:
    """Parameters of the WedgeChain logging layer."""

    #: Number of entries batched into one block (the paper's default is 100).
    block_size: int = 100
    #: Maximum simulated time (seconds) an incomplete block may wait before
    #: being flushed anyway; keeps latency bounded under light load.
    block_timeout_s: float = 0.050
    #: Whether add responses include the full block (the ``add`` interface's
    #: optional ``block`` output).
    return_block_on_add: bool = True
    #: How many block digests the edge accumulates before shipping one
    #: :class:`~repro.messages.log_messages.CertifyBatchRequest` (one edge
    #: signature and one cloud signature amortized over the whole batch).
    #: ``1`` preserves the per-block wire format and simulated metrics of
    #: the unbatched protocol exactly.
    certify_batch_size: int = 1
    #: Maximum simulated time (seconds) a queued digest may wait for its
    #: batch to fill before the partial batch is flushed anyway; bounds the
    #: extra Phase II latency batching can introduce.
    certify_flush_timeout_s: float = 0.050
    #: Certification pipeline depth: how many
    #: :class:`~repro.messages.log_messages.CertifyBatchRequest`\\ s may be
    #: in flight per (edge, shard) at once.  ``1`` (the default) means one
    #: outstanding batch — under batched certification this is a *bound*
    #: the pre-pipeline dispatch did not have, so a batched deployment
    #: whose blocks form faster than one certification round-trip should
    #: raise the depth (Phase II drains serially otherwise; nothing
    #: client-visible ever waits either way).  The committed figures use
    #: ``certify_batch_size = 1``, which bypasses the window entirely and
    #: keeps their wire format and metrics byte-exact.  Deeper windows
    #: overlap certification WAN round-trips — lazy certification never
    #: blocks anything client-visible, so the pipeline can be arbitrarily
    #: deep.
    certify_pipeline_depth: int = 1
    #: Degraded-mode threshold: when more than this many Phase-I-committed
    #: blocks await certification on one partition (a cloud outage, a
    #: partitioned WAN), the edge keeps serving commits but flags itself
    #: degraded, sending a
    #: :class:`~repro.messages.log_messages.DegradedModeNotice` to every
    #: client it answers so they can throttle or widen dispute timers.
    #: Recovery (backlog back at or below half the threshold) is announced
    #: to the same clients.  ``None`` (the default) disables the signal
    #: entirely — the committed figures never see it.
    max_uncertified_backlog: int | None = None

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        if self.block_timeout_s < 0:
            raise ConfigurationError("block_timeout_s must be non-negative")
        if self.certify_batch_size <= 0:
            raise ConfigurationError("certify_batch_size must be positive")
        if self.certify_flush_timeout_s < 0:
            raise ConfigurationError("certify_flush_timeout_s must be non-negative")
        if self.certify_pipeline_depth <= 0:
            raise ConfigurationError("certify_pipeline_depth must be positive")
        if self.max_uncertified_backlog is not None and self.max_uncertified_backlog <= 0:
            raise ConfigurationError("max_uncertified_backlog must be positive when set")


@dataclass(frozen=True)
class SecurityConfig:
    """Knobs controlling signatures, disputes, gossip, and freshness."""

    #: Which signature scheme the nodes use ("hmac" is fast and used for the
    #: large simulated experiments; "schnorr" is genuinely asymmetric).
    signature_scheme: str = "hmac"
    #: How long (seconds of simulated time) a client waits for a block-proof
    #: before raising a dispute with the cloud node.
    dispute_timeout_s: float = 5.0
    #: Interval between signed gossip messages from the cloud (used to bound
    #: omission attacks, Section IV-E).
    gossip_interval_s: float = 1.0
    #: When ``True`` the cloud emits one signed multi-edge
    #: :class:`~repro.messages.log_messages.GossipBatchMessage` per interval
    #: instead of one signed message per edge (one signature on the WAN path
    #: per interval, however many edges exist).
    gossip_batch: bool = False
    #: Freshness window for LSMerkle reads (Section V-D); ``None`` disables
    #: freshness checking.
    freshness_window_s: float | None = None
    #: Penalty score applied when a malicious act is proven.
    punishment_score: float = 1000.0

    def __post_init__(self) -> None:
        if self.signature_scheme not in ("hmac", "schnorr"):
            raise ConfigurationError(
                f"unknown signature scheme {self.signature_scheme!r}"
            )
        if self.dispute_timeout_s <= 0:
            raise ConfigurationError("dispute_timeout_s must be positive")
        if self.gossip_interval_s <= 0:
            raise ConfigurationError("gossip_interval_s must be positive")
        if self.freshness_window_s is not None and self.freshness_window_s <= 0:
            raise ConfigurationError("freshness_window_s must be positive")


@dataclass(frozen=True)
class PlacementConfig:
    """Where the clients, edge node, and cloud node live."""

    client_region: Region = Region.CALIFORNIA
    edge_region: Region = Region.CALIFORNIA
    cloud_region: Region = Region.VIRGINIA


@dataclass(frozen=True)
class ShardingConfig:
    """Key-space partitioning for a multi-edge fleet (``repro.sharding``).

    When attached to a :class:`SystemConfig`, the deployment becomes a
    sharded edge fleet: keys map to shards through the configured
    partitioner, shards map to owning edge nodes through a cloud-signed
    shard map, and shards can be rebalanced between edges through the
    certified handoff protocol.  ``None`` (the default on
    :class:`SystemConfig`) keeps the single-partition deployment of the
    paper byte-for-byte.
    """

    #: Number of shards the key space is divided into.  More shards than
    #: edges lets rebalancing move load at sub-edge granularity.
    num_shards: int = 8
    #: Which partitioner maps keys to shards: ``"hash-ring"`` (uniform,
    #: placement-stable) or ``"range"`` (ordered, hotspot-prone — the case
    #: rebalancing exists for).
    partitioner: str = "hash-ring"
    #: Size of the key universe the range partitioner splits into contiguous
    #: slices (must match the workload's ``key_space`` for balanced ranges;
    #: ignored by the hash ring).
    key_space: int = 100_000
    #: An edge whose logged-entry share exceeds ``rebalance_hot_factor``
    #: times the fleet mean is eligible for a shard handoff when the
    #: fleet's ``maybe_rebalance`` trigger runs.
    rebalance_hot_factor: float = 1.5
    #: Maximum times a client re-routes one operation after signed
    #: ``NotOwnerRedirect`` responses before failing it.
    max_redirects: int = 3
    #: Per-shard certification pipeline depth override.  ``None`` inherits
    #: :attr:`LoggingConfig.certify_pipeline_depth`; a value applies to
    #: shard partitions only (the default partition keeps the logging-level
    #: depth), letting a fleet run deep per-shard windows while a
    #: single-partition deployment stays paper-exact.
    certify_pipeline_depth: "int | None" = None
    #: How long (simulated seconds) a transaction coordinator waits for the
    #: participants' prepare receipts before deciding abort.
    txn_receipt_timeout_s: float = 1.0
    #: How long (simulated seconds) a participant edge keeps a staged
    #: prepare before presuming abort (the receipt's signed ``expires_at``
    #: horizon).  Must comfortably exceed the receipt timeout: the
    #: coordinator only commits while every receipt is unexpired, so the
    #: gap between the two is the decision's safe delivery window.
    txn_prepare_timeout_s: float = 5.0
    #: Total copies of each shard: one certifying writer plus
    #: ``replication_factor - 1`` read replicas receiving the certified log
    #: by shipping.  ``1`` (the default) is the unreplicated deployment —
    #: no leases, no shipping, no failover machinery is ever built, keeping
    #: the paper's metrics byte-identical (pinned by
    #: ``tests/test_paper_default_stance.py``).
    replication_factor: int = 1
    #: Validity (simulated seconds) of one cloud-signed serving lease on a
    #: replicated shard.  Writers and replicas of replicated shards may
    #: only answer clients while holding an unexpired lease; an honest node
    #: parks requests once its lease lapses, which is what makes failover
    #: promotions safe to judge offline (a deposed-but-honest node can
    #: never have served past its last lease).
    replica_lease_s: float = 2.0
    #: How long (simulated seconds) the cloud waits without hearing from a
    #: replicated shard's writer before treating it as lost and starting
    #: failover (promotion still waits for the writer's last lease to
    #: expire).
    failover_timeout_s: float = 3.0

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if self.partitioner not in ("hash-ring", "range"):
            raise ConfigurationError(
                f"unknown partitioner {self.partitioner!r}; "
                "use 'hash-ring' or 'range'"
            )
        if self.key_space < self.num_shards:
            raise ConfigurationError("key_space must be at least num_shards")
        if self.rebalance_hot_factor <= 1.0:
            raise ConfigurationError("rebalance_hot_factor must exceed 1.0")
        if self.max_redirects < 0:
            raise ConfigurationError("max_redirects must be non-negative")
        if self.certify_pipeline_depth is not None and self.certify_pipeline_depth <= 0:
            raise ConfigurationError("certify_pipeline_depth must be positive")
        if self.txn_receipt_timeout_s <= 0:
            raise ConfigurationError("txn_receipt_timeout_s must be positive")
        if self.txn_prepare_timeout_s <= self.txn_receipt_timeout_s:
            raise ConfigurationError(
                "txn_prepare_timeout_s must exceed txn_receipt_timeout_s "
                "(the gap is the decision's safe delivery window)"
            )
        if self.replication_factor <= 0:
            raise ConfigurationError("replication_factor must be positive")
        if self.replica_lease_s <= 0:
            raise ConfigurationError("replica_lease_s must be positive")
        if self.failover_timeout_s <= 0:
            raise ConfigurationError("failover_timeout_s must be positive")


@dataclass(frozen=True)
class StorageConfig:
    """Durable storage backend for edge partitions (``repro.storage``).

    The default backend is ``"memory"``: every partition lives purely in
    Python objects, exactly as the paper's simulation does, and nothing is
    written anywhere — the committed figures depend on this (paper-exact by
    default, fast/durable by config).  Switching to ``"disk"`` gives every
    :class:`~repro.nodes.edge.PartitionState` a
    :class:`~repro.storage.store.PartitionStore` under ``root_dir``: an
    append-only checksummed segment log for blocks, receipts, and
    certification proofs, plus page files and an atomically-swapped manifest
    for the LSMerkle levels and the last cloud-signed root.  A restart then
    rebuilds the partition from disk through
    :func:`~repro.storage.recovery.recover_partition` instead of trusting
    preserved objects.
    """

    #: ``"memory"`` (the default; nothing persisted) or ``"disk"``.
    backend: str = "memory"
    #: Directory the disk backend stores partitions under (one subdirectory
    #: per edge node, one per partition).  Required when ``backend="disk"``.
    root_dir: str | None = None
    #: When the segment log calls ``fsync``: ``"never"`` (OS decides),
    #: ``"on_seal"`` (once per sealed segment — the benchmarked default), or
    #: ``"always"`` (every append; the only policy under which a crash loses
    #: no acknowledged write).
    fsync: str = "on_seal"
    #: Size at which the active segment is sealed and a new one started.
    segment_max_bytes: int = 1 << 20
    #: Whether writing a manifest also deletes sealed segments made fully
    #: redundant by it (every block below the snapshot floor is certified
    #: and merged into manifest pages), keeping storage bounded.
    truncate_on_snapshot: bool = True

    def __post_init__(self) -> None:
        if self.backend not in ("memory", "disk"):
            raise ConfigurationError(
                f"unknown storage backend {self.backend!r}; use 'memory' or 'disk'"
            )
        if self.backend == "disk" and not self.root_dir:
            raise ConfigurationError("disk storage backend requires root_dir")
        if self.fsync not in ("never", "on_seal", "always"):
            raise ConfigurationError(
                f"unknown fsync policy {self.fsync!r}; "
                "use 'never', 'on_seal', or 'always'"
            )
        if self.segment_max_bytes <= 0:
            raise ConfigurationError("segment_max_bytes must be positive")

    @property
    def is_durable(self) -> bool:
        return self.backend == "disk"


@dataclass(frozen=True)
class ObservabilityConfig:
    """Unified observability layer (``repro.obs``).

    ``enabled=False`` (the default) builds nothing: ``env.obs`` stays
    ``None``, node stat dicts remain plain dicts, the network carries no
    trace sidecar, and the instrumented hot paths cost one attribute
    check — the simulation's event stream and wire digests are untouched,
    preserving the paper-exact default stance.

    ``enabled=True`` attaches one shared :class:`repro.obs.Observability`
    bundle to the environment: per-node :class:`~repro.obs.metrics.\
    MetricsRegistry` instances (counters/gauges/histograms with exact
    percentiles, driven by simulated time), and a
    :class:`~repro.obs.tracing.Tracer` whose span contexts propagate as a
    network-layer sidecar — never inside signed or encoded payloads — so
    enabling observability changes no simulated metric.
    """

    #: Master switch; ``False`` means no observability object is ever built.
    enabled: bool = False
    #: Record protocol-phase spans and fault events (when ``enabled``).
    trace: bool = True
    #: Record metrics registries and mirror legacy stat dicts (when
    #: ``enabled``).
    metrics: bool = True

    def __post_init__(self) -> None:
        if self.enabled and not (self.trace or self.metrics):
            raise ConfigurationError(
                "observability enabled but both trace and metrics are off"
            )


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload shape used by the benchmark harness."""

    num_clients: int = 1
    #: Operations per batch/block (the paper sweeps 100..2000).
    batch_size: int = 100
    #: Size of each value in bytes (100 in the paper).
    value_size: int = 100
    #: Fraction of operations that are reads (0.0 = all writes).
    read_fraction: float = 0.0
    #: Number of distinct keys in the partition (100,000 in the paper).
    key_space: int = 100_000
    #: Key popularity distribution: "uniform" or "zipfian".
    key_distribution: str = "uniform"
    #: Zipfian skew parameter (only used when key_distribution == "zipfian").
    zipf_theta: float = 0.99
    #: When ``True``, Zipfian popularity ranks are spread over the key space
    #: through a deterministic permutation instead of clustering at the low
    #: indices.  Matters for *range*-partitioned fleets: unshuffled Zipfian
    #: load piles onto the first shard (the rebalancing hotspot case), while
    #: shuffled load exercises every shard.  ``False`` preserves the exact
    #: key streams of the paper's experiments.
    zipf_rank_shuffle: bool = False
    #: Total number of operations each client issues.
    operations_per_client: int = 1_000
    #: Seed for deterministic workload generation.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.value_size <= 0:
            raise ConfigurationError("value_size must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")
        if self.key_space <= 0:
            raise ConfigurationError("key_space must be positive")
        if self.key_distribution not in ("uniform", "zipfian"):
            raise ConfigurationError(
                f"unknown key distribution {self.key_distribution!r}"
            )
        if self.operations_per_client <= 0:
            raise ConfigurationError("operations_per_client must be positive")

    def with_overrides(self, **changes) -> "WorkloadConfig":
        """Return a copy of the config with the given fields replaced."""

        return replace(self, **changes)


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration for a WedgeChain deployment."""

    logging: LoggingConfig = field(default_factory=LoggingConfig)
    lsmerkle: LSMerkleConfig = field(default_factory=LSMerkleConfig.paper_default)
    security: SecurityConfig = field(default_factory=SecurityConfig)
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    #: Number of edge nodes (each owns one partition; the paper reports the
    #: performance of a single partition).
    num_edge_nodes: int = 1
    #: Key-space sharding for multi-edge fleets (``None`` = the paper's
    #: single-partition deployment; see :class:`ShardingConfig`).
    sharding: "ShardingConfig | None" = None
    #: Durable storage backend (default in-memory = nothing persisted; see
    #: :class:`StorageConfig` and the module docstring's default stance).
    storage: StorageConfig = field(default_factory=StorageConfig)
    #: Metrics + tracing (default off = nothing recorded, no overhead; see
    #: :class:`ObservabilityConfig`).
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)

    def __post_init__(self) -> None:
        if self.num_edge_nodes <= 0:
            raise ConfigurationError("num_edge_nodes must be positive")

    def with_overrides(self, **changes) -> "SystemConfig":
        """Return a copy of the config with the given fields replaced."""

        return replace(self, **changes)

    def sharding_or_default(self) -> ShardingConfig:
        """The attached sharding config, or the ShardingConfig field defaults.

        The single source of truth for knobs (redirect cap, transaction
        timers) that must behave identically whether or not the deployment
        is sharded — callers never re-spell a field default as a literal.
        """

        return self.sharding if self.sharding is not None else ShardingConfig()

    @classmethod
    def paper_default(cls) -> "SystemConfig":
        """Configuration matching the paper's Section VI setup."""

        return cls()


def validate_regions(regions: Sequence[Region]) -> None:
    """Raise :class:`ConfigurationError` if *regions* contains duplicates."""

    if len(set(regions)) != len(regions):
        raise ConfigurationError(f"duplicate regions in {regions!r}")
