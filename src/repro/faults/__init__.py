"""Deterministic fault injection for the simulated edge-cloud fleet.

The subsystem has four pieces:

* :mod:`~repro.faults.plan` — declarative :class:`FaultPlan` describing
  message faults (drop / duplicate / delay / reorder), region-scoped WAN
  partitions, node crash/restart events, and disk faults (torn writes,
  bit flips, ENOSPC) against durable partition stores;
* :mod:`~repro.faults.injector` — the :class:`FaultInjector` that executes
  a plan against an :class:`~repro.sim.environment.Environment` through
  the network's public send-hook and offline surfaces, producing a
  reproducible fault trace;
* :mod:`~repro.faults.retry` — the shared :class:`RetryPolicy` (capped
  exponential backoff, seeded jitter, bounded attempts) behind every
  retransmission timer in the protocol stack;
* :mod:`~repro.faults.invariants` — the convictable-invariant checks the
  chaos suite asserts once faults heal.

Everything is a strict no-op unless a plan is installed; the figure
pipelines never import this package.
"""

from .injector import FaultInjector, TraceEntry
from .invariants import (
    InvariantViolation,
    assert_convicted,
    assert_full_certification,
    assert_monotone,
    assert_no_false_convictions,
    assert_no_lost_atomicity,
    assert_no_quarantines,
    assert_replicated_reads_served,
    txn_decisions,
)
from .plan import (
    CrashEvent,
    DiskFaultRule,
    FaultPlan,
    FaultRule,
    NodeSelector,
    RegionPartitionRule,
)
from .retry import RetryPolicy

__all__ = [
    "CrashEvent",
    "DiskFaultRule",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InvariantViolation",
    "NodeSelector",
    "RegionPartitionRule",
    "RetryPolicy",
    "TraceEntry",
    "assert_convicted",
    "assert_full_certification",
    "assert_monotone",
    "assert_no_false_convictions",
    "assert_no_lost_atomicity",
    "assert_no_quarantines",
    "assert_replicated_reads_served",
    "txn_decisions",
]
