"""Convictable-invariant checks the chaos suite asserts after every scenario.

Each check inspects only artifacts the paper's trust model treats as
evidence — certified logs, signed decision records, the cloud's punishment
ledger — never transient in-memory protocol state, so a passing check means
the property holds in the auditable record, not merely in this process.

The three pass criteria from ROADMAP direction 5:

* **No lost atomicity** (:func:`assert_no_lost_atomicity`): scanning every
  edge's logs (live partitions *and* records archived by shard handoffs)
  for 2PC decision records, no transaction has both a COMMIT and an ABORT
  applied anywhere in the fleet.
* **Eventual full certification** (:func:`assert_full_certification`):
  once faults heal and retries drain, every block in every log carries a
  cloud proof — lazy certification catches up completely.
* **Every planted fault convicted** (:func:`assert_convicted`): each edge
  the scenario made misbehave is punished in the cloud's ledger, and
  (:func:`assert_no_false_convictions`) no honest edge is.

:func:`assert_monotone` is the recovery-shape helper: sampled progress
series (certified counts, committed transactions) must never move
backwards through crash, partition, and heal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..common.identifiers import NodeId
from ..sharding.transactions import decode_txn_decision, is_txn_decision_payload


class InvariantViolation(AssertionError):
    """A chaos-scenario invariant failed; the message names the evidence."""


def _iter_partition_records(edge) -> Iterable:
    for state in edge._partition_states():
        yield from state.log
    # Shard handoffs archive the source's records; decisions recorded there
    # still count toward fleet-wide atomicity.
    archived = getattr(edge, "_archived_records", None)
    if archived:
        for block_id in sorted(archived):
            yield archived[block_id]


def txn_decisions(edges: Sequence) -> Dict[Tuple[str, int], List[Tuple[str, str]]]:
    """All 2PC decision records across the fleet's certified logs.

    Returns ``{(coordinator, sequence): [(edge, decision), ...]}``.
    """

    decisions: Dict[Tuple[str, int], List[Tuple[str, str]]] = {}
    for edge in edges:
        for record in _iter_partition_records(edge):
            for entry in record.block.entries:
                if not is_txn_decision_payload(entry.payload):
                    continue
                decision, coordinator, sequence, _reason = decode_txn_decision(
                    entry.payload
                )
                decisions.setdefault((coordinator, sequence), []).append(
                    (str(edge.node_id), decision)
                )
    return decisions


def assert_no_lost_atomicity(edges: Sequence) -> Dict[Tuple[str, int], List[Tuple[str, str]]]:
    """No transaction committed on one shard and aborted on another."""

    decisions = txn_decisions(edges)
    for txn_key, applied in decisions.items():
        outcomes = {decision for _edge, decision in applied}
        if len(outcomes) > 1:
            raise InvariantViolation(
                f"transaction {txn_key} lost atomicity: decisions {applied}"
            )
    return decisions


def assert_full_certification(edges: Sequence) -> int:
    """Every block of every (live) partition log is certified; returns the
    total number of certified blocks as a sanity count."""

    total = 0
    for edge in edges:
        for state in edge._partition_states():
            if getattr(state, "quarantined", None) is not None:
                # A quarantined partition serves nothing — "fully
                # certified" is unprovable there, and a scenario that did
                # not expect the quarantine must fail loudly, not skip it.
                raise InvariantViolation(
                    f"{edge.node_id} partition shard={state.shard_id} is "
                    f"quarantined: {state.quarantined}"
                )
            missing = state.log.uncertified_block_ids()
            if missing:
                raise InvariantViolation(
                    f"{edge.node_id} partition shard={state.shard_id} has "
                    f"uncertified blocks {missing} after faults healed"
                )
            total += len(state.log)
    return total


def assert_convicted(cloud, guilty: Iterable[NodeId]) -> None:
    """Each planted misbehaving edge appears in the punishment ledger."""

    for edge_id in guilty:
        if not cloud.ledger.is_punished(edge_id):
            raise InvariantViolation(
                f"planted misbehavior by {edge_id} was never convicted"
            )


def assert_no_false_convictions(cloud, honest: Iterable[NodeId]) -> None:
    """Faults alone (drops, crashes, partitions) must never convict an
    honest edge — convictions require signed contradictory artifacts."""

    for edge_id in honest:
        if cloud.ledger.is_punished(edge_id):
            raise InvariantViolation(
                f"honest edge {edge_id} was convicted during a fault-only run"
            )


def assert_no_quarantines(edges: Sequence) -> None:
    """No partition on any edge refused service after durable recovery.

    Chaos scenarios that crash and restart disk-backed edges *without*
    planting corruption assert this: clean segments and a verified signed
    root must always recover, so a quarantine there is a storage-layer bug,
    not an acceptable outcome.
    """

    for edge in edges:
        reports = getattr(edge, "quarantine_reports", None)
        if reports is None:
            continue
        found = reports()
        if found:
            raise InvariantViolation(
                f"{edge.node_id} quarantined partitions after recovery: {found}"
            )


def assert_replicated_reads_served(
    samples: Sequence[Tuple[float, int, bool]],
    label: str = "replicated reads",
) -> None:
    """Every sampled read probe against a replicated shard was served.

    Chaos scenarios that take down a replicated shard's writer feed this
    the ``(time_s, shard_id, served)`` probe results they collected while
    the fault was live (probes go directly to surviving replica-set
    members, since a request routed at the dead writer just vanishes).
    Replication's promise is that losing any single edge never stops
    reads — one unserved probe falsifies it, and an empty sample set
    means the scenario never actually exercised the promise.
    """

    if not samples:
        raise InvariantViolation(f"{label}: no probes were collected")
    failed = [(when, shard) for (when, shard, served) in samples if not served]
    if failed:
        raise InvariantViolation(
            f"{label}: probes went unserved at (time_s, shard): {failed}"
        )


def assert_monotone(series: Sequence[float], label: str = "progress") -> None:
    """A sampled progress series never decreases (monotone recovery)."""

    for earlier, later in zip(series, series[1:]):
        if later < earlier:
            raise InvariantViolation(
                f"{label} regressed from {earlier} to {later}: series={list(series)}"
            )
