"""Declarative fault plans: *what* goes wrong, *when*, and to *whom*.

A :class:`FaultPlan` is a pure description — it touches no network and
schedules nothing.  Handing it to a :class:`~repro.faults.injector.
FaultInjector` turns it into behavior.  Keeping description and execution
apart makes scenarios reproducible (a plan plus a seed fully determines the
fault trace) and lets the chaos suite print or diff plans as data.

The taxonomy mirrors the failure modes the paper's trust model must
survive:

* **Message faults** (:class:`FaultRule`): drop, duplicate, delay, or
  reorder individual messages, selected by endpoint, role, message type,
  and a seeded probability, inside an activity window.
* **Partitions** (:class:`RegionPartitionRule`): region-scoped WAN splits —
  traffic between the two sides is dropped for the window's duration, in
  both directions.  This is how "the edge loses the cloud" is spelled.
* **Crashes** (:class:`CrashEvent`): a node goes offline at a set time and
  optionally restarts later.  Per the trust model an edge restart keeps
  the certified log (durable) but loses buffers, in-flight certification
  windows, and staged 2PC prepares (volatile).
* **Disk faults** (:class:`DiskFaultRule`): storage-level damage against a
  node's durable partition stores — torn writes, bit flips, and a full
  disk — exercising the checksum, torn-tail repair, and quarantine paths
  of :mod:`repro.storage`.  A no-op against the in-memory default backend.

Selectors accept ``None`` (match anything), a concrete
:class:`~repro.common.identifiers.NodeId`, a
:class:`~repro.common.identifiers.NodeRole`, or an arbitrary predicate on
the node id — predicates must be deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Tuple, Union

from ..common.errors import ConfigurationError
from ..common.identifiers import NodeId, NodeRole
from ..common.regions import Region

#: Endpoint selector: ``None`` matches every node, a ``NodeId`` matches that
#: node, a ``NodeRole`` matches every node of the role, and a callable is a
#: deterministic predicate over the node id.
NodeSelector = Union[None, NodeId, NodeRole, Callable[[NodeId], bool]]


def _matches(selector: NodeSelector, node_id: NodeId) -> bool:
    if selector is None:
        return True
    if isinstance(selector, NodeId):
        return node_id == selector
    if isinstance(selector, NodeRole):
        return node_id.role == selector
    return bool(selector(node_id))


@dataclass(frozen=True)
class FaultRule:
    """One message-fault clause: which messages, what happens, how often.

    ``action`` is one of ``"drop"``, ``"duplicate"``, ``"delay"``,
    ``"reorder"``.  ``delay_s`` is the added latency for *delay*;
    ``spread_s`` is the window within which *reorder* scatters deliveries
    (and the lag after the original at which a *duplicate* lands).
    ``probability`` is evaluated against the plan's seeded stream per
    matching message; ``max_count`` caps how many times the rule fires.
    """

    action: str
    src: NodeSelector = None
    dst: NodeSelector = None
    message_type: Optional[str] = None
    probability: float = 1.0
    start_s: float = 0.0
    until_s: Optional[float] = None
    max_count: Optional[int] = None
    delay_s: float = 0.0
    spread_s: float = 0.0

    _ACTIONS = ("drop", "duplicate", "delay", "reorder")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; expected one of {self._ACTIONS}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError("fault probability must be in (0, 1]")
        if self.until_s is not None and self.until_s < self.start_s:
            raise ConfigurationError("fault window must not end before it starts")
        if self.delay_s < 0 or self.spread_s < 0:
            raise ConfigurationError("fault delays must be non-negative")
        if self.max_count is not None and self.max_count < 1:
            raise ConfigurationError("max_count must be positive when set")

    def active_at(self, now: float) -> bool:
        return now >= self.start_s and (self.until_s is None or now < self.until_s)

    def matches(self, src: NodeId, dst: NodeId, message: object) -> bool:
        if self.message_type is not None and type(message).__name__ != self.message_type:
            return False
        return _matches(self.src, src) and _matches(self.dst, dst)


@dataclass(frozen=True)
class RegionPartitionRule:
    """A WAN split: all traffic between ``side_a`` and ``side_b`` regions is
    dropped (both directions) while the window is open."""

    side_a: frozenset
    side_b: frozenset
    start_s: float
    until_s: float

    def __post_init__(self) -> None:
        if not self.side_a or not self.side_b:
            raise ConfigurationError("both partition sides need at least one region")
        if self.side_a & self.side_b:
            raise ConfigurationError("partition sides must be disjoint")
        if self.until_s <= self.start_s:
            raise ConfigurationError("partition window must have positive duration")

    def severs(self, src_region: Region, dst_region: Region, now: float) -> bool:
        if not self.start_s <= now < self.until_s:
            return False
        return (src_region in self.side_a and dst_region in self.side_b) or (
            src_region in self.side_b and dst_region in self.side_a
        )


@dataclass(frozen=True)
class CrashEvent:
    """Crash *node* at ``at_s``; restart at ``restart_at_s`` (or never)."""

    node: NodeId
    at_s: float
    restart_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigurationError("crash time must be non-negative")
        if self.restart_at_s is not None and self.restart_at_s <= self.at_s:
            raise ConfigurationError("restart must come after the crash")


@dataclass(frozen=True)
class DiskFaultRule:
    """Arm a storage fault against a node's durable partition store(s).

    At ``at_s`` the injector arms every matching store: the next ``count``
    segment appends there suffer *kind* —

    * ``"torn_write"``: only the first half of the record frame reaches
      disk (recovery repairs it as a torn tail);
    * ``"bit_flip"``: one payload byte is corrupted after the checksum was
      computed (recovery detects it and quarantines the partition);
    * ``"enospc"``: the append raises
      :class:`~repro.common.errors.StorageFullError` (the edge degrades
      durability but keeps serving).

    ``shard_id`` narrows the target to one partition; ``None`` arms every
    durable partition of every matching node.  Arming a node on the
    in-memory default backend is a no-op.
    """

    node: NodeSelector = None
    kind: str = "torn_write"
    at_s: float = 0.0
    count: int = 1
    shard_id: Optional[int] = None

    def __post_init__(self) -> None:
        from ..storage.segments import FAULT_KINDS

        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown disk fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at_s < 0:
            raise ConfigurationError("disk fault time must be non-negative")
        if self.count < 1:
            raise ConfigurationError("disk fault count must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable bundle of fault clauses plus the seed that drives them.

    The chainable ``with_*`` builders return new plans, so scenarios read
    as a single declarative expression::

        plan = (
            FaultPlan(seed=7)
            .with_rule(FaultRule("drop", dst=NodeRole.CLOUD,
                                 probability=0.5, until_s=2.0))
            .with_partition(RegionPartitionRule(
                frozenset({Region.US_EAST}), frozenset({Region.EU_WEST}),
                start_s=1.0, until_s=3.0))
            .with_crash(CrashEvent(edge_id, at_s=0.5, restart_at_s=1.5))
        )
    """

    seed: int = 0
    name: str = "faults"
    rules: Tuple[FaultRule, ...] = ()
    partitions: Tuple[RegionPartitionRule, ...] = ()
    crashes: Tuple[CrashEvent, ...] = field(default_factory=tuple)
    disk_faults: Tuple[DiskFaultRule, ...] = ()

    def with_rule(self, rule: FaultRule) -> "FaultPlan":
        return replace(self, rules=self.rules + (rule,))

    def with_partition(self, partition: RegionPartitionRule) -> "FaultPlan":
        return replace(self, partitions=self.partitions + (partition,))

    def with_crash(self, crash: CrashEvent) -> "FaultPlan":
        return replace(self, crashes=self.crashes + (crash,))

    def with_disk_fault(self, rule: DiskFaultRule) -> "FaultPlan":
        return replace(self, disk_faults=self.disk_faults + (rule,))

    def is_empty(self) -> bool:
        return not (
            self.rules or self.partitions or self.crashes or self.disk_faults
        )
