"""The executor that turns a :class:`~repro.faults.plan.FaultPlan` into
live network faults.

The injector composes on the two public fault surfaces of
:class:`~repro.sim.network.SimNetwork`:

* it registers one named **send hook** that evaluates the plan's partition
  and message-fault rules against every send, and
* it schedules the plan's **crash/restart** events on the simulator clock,
  flipping the network's offline gate and calling the node's
  ``on_crash``/``on_restart`` lifecycle methods (when the node defines
  them) so volatile protocol state is lost while durable state survives.
  For edges on the disk backend this routes through real storage: the
  crash truncates unsynced segment bytes, and the restart rebuilds every
  partition from its store via :mod:`repro.storage.recovery` — verified
  against the durable signed root, quarantined on corruption.
* it schedules the plan's **disk-fault** rules, arming torn-write /
  bit-flip / ENOSPC faults on the matching nodes' partition stores.

Delay, reorder, and duplicate are implemented by vetoing the original send
and re-materializing the delivery through
:meth:`~repro.sim.network.SimNetwork.inject_delivery` at a chosen time —
injected deliveries bypass hooks, so a deferred message is not
re-intercepted by the rule that deferred it.

Determinism: the injector seeds its own :class:`~repro.sim.rng.
DeterministicRng` **directly** from ``plan.seed`` (not via ``fork``, whose
label hashing depends on ``PYTHONHASHSEED``), and consumes draws only for
probabilistic rules and reorder spreads, in rule order.  Same plan + same
workload ⇒ byte-identical fault trace, which the chaos suite asserts.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..common.errors import SimulationError
from ..common.identifiers import NodeId
from ..sim.environment import Environment
from ..sim.rng import DeterministicRng
from .plan import FaultPlan

#: One fault-trace record: ``(time, action, src, dst, message_type)``.
TraceEntry = Tuple[float, str, str, str, str]


class FaultInjector:
    """Applies a :class:`FaultPlan` to a simulation :class:`Environment`."""

    def __init__(self, env: Environment, plan: FaultPlan) -> None:
        self._env = env
        self._plan = plan
        self._rng = DeterministicRng(plan.seed)
        self._hook_name = f"fault-injector:{plan.name}"
        self._rule_fired: List[int] = [0] * len(plan.rules)
        self._installed = False
        #: Chronological record of every fault action taken; the chaos
        #: suite compares traces across runs to prove determinism.
        self.trace: List[TraceEntry] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Register the send hook and schedule the plan's crash events."""

        if self._installed:
            raise SimulationError("fault injector already installed")
        self._env.network.add_send_hook(self._hook_name, self._on_send)
        now = self._env.now()
        for crash in self._plan.crashes:
            self._env.scheduler.schedule_at(
                max(crash.at_s, now),
                lambda c=crash: self._crash(c.node),
                label=f"fault:crash:{crash.node}",
            )
            if crash.restart_at_s is not None:
                self._env.scheduler.schedule_at(
                    max(crash.restart_at_s, now),
                    lambda c=crash: self._restart(c.node),
                    label=f"fault:restart:{crash.node}",
                )
        for disk in self._plan.disk_faults:
            self._env.scheduler.schedule_at(
                max(disk.at_s, now),
                lambda d=disk: self._arm_disk_fault(d),
                label=f"fault:disk:{disk.kind}",
            )
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Stop intercepting sends (scheduled crashes still fire)."""

        self._env.network.remove_send_hook(self._hook_name)
        self._installed = False

    def rule_fire_counts(self) -> Tuple[int, ...]:
        return tuple(self._rule_fired)

    def faults_quiet_after(self) -> float:
        """Earliest time by which every windowed fault clause has expired.

        Unbounded rules (no ``until_s``) are ignored — scenarios using them
        must uninstall explicitly before asserting recovery.
        """

        horizon = 0.0
        for rule in self._plan.rules:
            if rule.until_s is not None:
                horizon = max(horizon, rule.until_s + rule.delay_s + rule.spread_s)
        for part in self._plan.partitions:
            horizon = max(horizon, part.until_s)
        for crash in self._plan.crashes:
            horizon = max(horizon, crash.restart_at_s or crash.at_s)
        for disk in self._plan.disk_faults:
            horizon = max(horizon, disk.at_s)
        return horizon

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def _crash(self, node_id: NodeId) -> None:
        self._env.network.set_offline(node_id, True)
        node = self._env.node(node_id)
        on_crash = getattr(node, "on_crash", None)
        if on_crash is not None:
            on_crash()
        self._record("crash", node_id, node_id, "")

    def _restart(self, node_id: NodeId) -> None:
        self._env.network.set_offline(node_id, False)
        node = self._env.node(node_id)
        on_restart = getattr(node, "on_restart", None)
        if on_restart is not None:
            on_restart()
        self._record("restart", node_id, node_id, "")

    def _arm_disk_fault(self, rule) -> None:
        """Arm *rule* on every matching node's durable partition store(s).

        Matching uses the same selector semantics as message rules.  Nodes
        without partitions (clients, the cloud) and partitions without a
        store (the in-memory default backend) are silently skipped — the
        trace records exactly which stores were armed.
        """

        from .plan import _matches

        for node_id in self._env.node_ids():
            if not _matches(rule.node, node_id):
                continue
            node = self._env.node(node_id)
            partition_states = getattr(node, "_partition_states", None)
            if partition_states is None:
                continue
            for state in partition_states():
                if state.store is None:
                    continue
                if rule.shard_id is not None and state.shard_id != rule.shard_id:
                    continue
                state.store.arm_fault(rule.kind, rule.count)
                self._record(f"disk:{rule.kind}", node_id, node_id, "")

    # ------------------------------------------------------------------
    # The send hook
    # ------------------------------------------------------------------
    def _on_send(self, src: NodeId, dst: NodeId, message: Any) -> bool:
        now = self._env.now()

        if self._plan.partitions:
            src_region = self._env.network.node(src).region
            dst_region = self._env.network.node(dst).region
            for part in self._plan.partitions:
                if part.severs(src_region, dst_region, now):
                    self._record("partition-drop", src, dst, type(message).__name__)
                    return False

        extra_delay = 0.0
        for index, rule in enumerate(self._plan.rules):
            if not rule.active_at(now) or not rule.matches(src, dst, message):
                continue
            if rule.max_count is not None and self._rule_fired[index] >= rule.max_count:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            self._rule_fired[index] += 1
            if rule.action == "drop":
                self._record("drop", src, dst, type(message).__name__)
                return False
            if rule.action == "delay":
                extra_delay += rule.delay_s
                self._record("delay", src, dst, type(message).__name__)
            elif rule.action == "reorder":
                extra_delay += self._rng.uniform(0.0, rule.spread_s)
                self._record("reorder", src, dst, type(message).__name__)
            elif rule.action == "duplicate":
                lag = rule.spread_s or self._env.network.one_way_delay_estimate(src, dst)
                copy_at = now + self._env.network.one_way_delay_estimate(src, dst) + lag
                self._env.network.inject_delivery(src, dst, message, copy_at)
                self._record("duplicate", src, dst, type(message).__name__)

        if extra_delay > 0.0:
            # Take over the delivery: the original send is vetoed and the
            # message re-enters at the estimated arrival plus the penalty.
            arrive = now + self._env.network.one_way_delay_estimate(src, dst) + extra_delay
            self._env.network.inject_delivery(src, dst, message, arrive)
            return False
        return True

    def _record(self, action: str, src: NodeId, dst: NodeId, message_type: str) -> None:
        self.trace.append(
            (round(self._env.now(), 9), action, str(src), str(dst), message_type)
        )
        # Mirror the fault into the trace (when observability is on).  The
        # send hook runs while the sender's span is still active, so a
        # dropped or delayed message shows up *inside* the protocol span it
        # perturbed; crash/restart/disk events fire from timers and attach
        # to no span.  The tuple trace above is the determinism contract
        # and stays exactly as it was.
        obs = self._env.obs
        if obs is not None and obs.tracer is not None:
            obs.tracer.event(
                f"fault.{action}",
                src=str(src),
                dst=str(dst),
                message_type=message_type,
            )
