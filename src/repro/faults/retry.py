"""The shared retry/backoff policy behind every retransmission timer.

Before this module, each subsystem grew its own ad-hoc timer: the edge's
overdue-certification rescan used one flat timeout however often a batch
had already been re-sent, the wall-clock :class:`~repro.core.certify_pipeline.
EdgeCertifyPipeline` mirrored that flat timeout, the 2PC coordinator spread
its decision retries at a fixed interval, and the shard-handoff drain had no
retransmission at all (a lost offer or transfer wedged the handoff forever).
:class:`RetryPolicy` unifies them: capped exponential backoff with optional
seeded jitter and a bounded attempt budget.

The policy itself is *clockless* — it maps an attempt number to a delay (or
an already-recorded retry count to the timeout guarding the next attempt);
callers measure elapsed time on whatever clock they already trust.  The
simulator measures on simulated time and the wall-clock pipeline measures on
``time.monotonic()`` — never ``time.time()``, so a system-clock step cannot
mass-trigger or suppress retries.

Jitter draws come from an explicitly seeded
:class:`~repro.sim.rng.DeterministicRng`, so a jittered schedule is exactly
reproducible under a fixed seed.  Every default in the code base uses
``jitter_fraction=0`` — the unification is behavior-preserving until a
caller opts into backoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..common.errors import ConfigurationError
from ..sim.rng import DeterministicRng


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with bounded attempts and seeded jitter.

    ``base_s`` is the delay before the first retry; each further retry
    multiplies it by ``factor`` up to ``cap_s``.  ``max_attempts`` bounds how
    many retries are sent in total (``None`` = unbounded).  With
    ``factor=1.0`` the policy degenerates to the fixed-interval schedules it
    replaced, which is exactly how the behavior-preserving defaults are
    built.
    """

    base_s: float
    factor: float = 2.0
    cap_s: Optional[float] = None
    max_attempts: Optional[int] = None
    jitter_fraction: float = 0.0
    rng: Optional[DeterministicRng] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ConfigurationError("retry base delay must be positive")
        if self.factor < 1.0:
            raise ConfigurationError("retry factor must be >= 1 (backoff never shrinks)")
        if self.cap_s is not None and self.cap_s < self.base_s:
            raise ConfigurationError("retry cap must be >= the base delay")
        if self.max_attempts is not None and self.max_attempts < 0:
            raise ConfigurationError("max_attempts must be non-negative")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter fraction must be in [0, 1)")
        if self.jitter_fraction > 0 and self.rng is None:
            raise ConfigurationError("jittered policies need a seeded rng")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def constant(
        cls, interval_s: float, max_attempts: Optional[int] = None
    ) -> "RetryPolicy":
        """A fixed-interval schedule (the pre-unification behavior)."""

        return cls(base_s=interval_s, factor=1.0, max_attempts=max_attempts)

    @classmethod
    def fixed_timeout(cls, timeout_s: float) -> "RetryPolicy":
        """A flat, uncapped, unbounded timeout — the legacy overdue scan."""

        return cls(base_s=timeout_s, factor=1.0)

    # ------------------------------------------------------------------
    # The schedule
    # ------------------------------------------------------------------
    def allows(self, attempt: int) -> bool:
        """Whether the *attempt*-th retry (1-based) is within the budget."""

        return self.max_attempts is None or attempt <= self.max_attempts

    def delay(self, attempt: int) -> float:
        """Delay before the *attempt*-th retry (1-based), capped and jittered."""

        if attempt < 1:
            raise ConfigurationError("retry attempts are numbered from 1")
        raw = self.base_s * (self.factor ** (attempt - 1))
        if self.cap_s is not None:
            raw = min(raw, self.cap_s)
        if self.jitter_fraction > 0 and self.rng is not None:
            raw = self.rng.jitter(raw, self.jitter_fraction)
        return raw

    def timeout_for(self, retries: int) -> float:
        """Overdue horizon guarding the *next* retry after ``retries`` sent.

        This is the shape the certification overdue scan consumes: a task or
        batch already re-sent ``retries`` times is not overdue again until
        the (``retries + 1``)-th backoff step elapses, so an unreachable
        cloud sees exponentially thinning retransmissions instead of one
        flat-interval hammer.
        """

        return self.delay(retries + 1)

    def exhausted(self, retries: int) -> bool:
        """Whether ``retries`` already spent the whole attempt budget."""

        return self.max_attempts is not None and retries >= self.max_attempts
