"""The WedgeChain logging layer: entries, blocks, buffers, proofs, and logs."""

from .block import Block, BlockSummary, build_block, compute_block_digest
from .buffer import BlockBuffer, BufferedEntry, PendingBatch
from .entry import EntryBody, LogEntry, make_entry, require_valid_entry
from .proofs import (
    AnyBlockProof,
    BatchCertificate,
    BatchedBlockProof,
    BlockProof,
    BlockProofStatement,
    CommitPhase,
    PhaseOneReceipt,
    PhaseOneStatement,
    ReadProof,
    build_certify_batch_tree,
    certify_batch_leaf,
    derive_batched_proofs,
    issue_batch_certificate,
    issue_block_proof,
    issue_phase_one_receipt,
)
from .wedge_log import LogRecord, WedgeLog

__all__ = [
    "AnyBlockProof",
    "BatchCertificate",
    "BatchedBlockProof",
    "Block",
    "BlockBuffer",
    "BlockProof",
    "BlockProofStatement",
    "BlockSummary",
    "BufferedEntry",
    "CommitPhase",
    "EntryBody",
    "LogEntry",
    "LogRecord",
    "PendingBatch",
    "PhaseOneReceipt",
    "PhaseOneStatement",
    "ReadProof",
    "WedgeLog",
    "build_block",
    "build_certify_batch_tree",
    "certify_batch_leaf",
    "compute_block_digest",
    "derive_batched_proofs",
    "issue_batch_certificate",
    "issue_block_proof",
    "issue_phase_one_receipt",
    "make_entry",
    "require_valid_entry",
]
