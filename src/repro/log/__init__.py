"""The WedgeChain logging layer: entries, blocks, buffers, proofs, and logs."""

from .block import Block, BlockSummary, build_block, compute_block_digest
from .buffer import BlockBuffer, BufferedEntry, PendingBatch
from .entry import EntryBody, LogEntry, make_entry, require_valid_entry
from .proofs import (
    BlockProof,
    BlockProofStatement,
    CommitPhase,
    PhaseOneReceipt,
    PhaseOneStatement,
    ReadProof,
    issue_block_proof,
    issue_phase_one_receipt,
)
from .wedge_log import LogRecord, WedgeLog

__all__ = [
    "Block",
    "BlockBuffer",
    "BlockProof",
    "BlockProofStatement",
    "BlockSummary",
    "BufferedEntry",
    "CommitPhase",
    "EntryBody",
    "LogEntry",
    "LogRecord",
    "PendingBatch",
    "PhaseOneReceipt",
    "PhaseOneStatement",
    "ReadProof",
    "WedgeLog",
    "build_block",
    "compute_block_digest",
    "issue_block_proof",
    "issue_phase_one_receipt",
    "make_entry",
    "require_valid_entry",
]
