"""Blocks: batches of log entries identified by a monotonic block id.

A block is the unit of certification.  The cloud node never needs the block's
contents — only its *digest* — which is what makes certification data-free
(Section IV-B).  The digest covers the block id, the owning edge node, and
every entry, so agreement on the digest implies agreement on the content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..common.identifiers import BlockId, NodeId
from ..crypto.hashing import digest_value
from .entry import LogEntry


@dataclass(frozen=True)
class Block:
    """An immutable batch of entries appended to one edge node's log."""

    edge: NodeId
    block_id: BlockId
    entries: tuple[LogEntry, ...]
    created_at: float

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    @property
    def wire_size(self) -> int:
        """Approximate on-the-wire size of the full block in bytes."""

        return 48 + sum(entry.wire_size for entry in self.entries)

    def digest(self) -> str:
        """The block digest the cloud certifies (a one-way hash).

        The digest of an immutable block is cached after the first
        computation; recomputation from scratch is available through
        :func:`compute_block_digest` (used by verifiers that must not trust
        any cached state attached to a received object).
        """

        cached = self.__dict__.get("_digest_cache")
        if cached is None:
            cached = compute_block_digest(self.edge, self.block_id, self.entries)
            object.__setattr__(self, "_digest_cache", cached)
        return cached

    def contains_entry(self, producer: NodeId, sequence: int) -> bool:
        """Whether an entry from *producer* with *sequence* is in the block."""

        return any(
            entry.producer == producer and entry.sequence == sequence
            for entry in self.entries
        )

    def entries_for(self, producer: NodeId) -> tuple[LogEntry, ...]:
        """All entries contributed by one client."""

        return tuple(entry for entry in self.entries if entry.producer == producer)

    def producers(self) -> frozenset[NodeId]:
        """The set of clients with at least one entry in this block."""

        return frozenset(entry.producer for entry in self.entries)


def compute_block_digest(
    edge: NodeId, block_id: BlockId, entries: Sequence[LogEntry]
) -> str:
    """Digest of a block's identity and content.

    Defined as a module-level function (not only a method) so that clients
    and the cloud can recompute the digest from a received block without
    trusting any digest field the edge node may have attached.
    """

    entry_digests = tuple(
        digest_value((entry.body, entry.signature)) for entry in entries
    )
    return digest_value((str(edge), block_id, entry_digests))


def build_block(
    edge: NodeId,
    block_id: BlockId,
    entries: Iterable[LogEntry],
    created_at: float,
) -> Block:
    """Construct a block from buffered entries."""

    return Block(
        edge=edge,
        block_id=block_id,
        entries=tuple(entries),
        created_at=created_at,
    )


@dataclass(frozen=True)
class BlockSummary:
    """A lightweight, digest-only view of a block (what the cloud stores)."""

    edge: NodeId
    block_id: BlockId
    digest: str
    num_entries: int
    created_at: float
    certified_at: Optional[float] = None

    @classmethod
    def of(cls, block: Block, certified_at: Optional[float] = None) -> "BlockSummary":
        return cls(
            edge=block.edge,
            block_id=block.block_id,
            digest=block.digest(),
            num_entries=block.num_entries,
            created_at=block.created_at,
            certified_at=certified_at,
        )
