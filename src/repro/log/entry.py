"""Log entries: the unit of data produced by clients.

Clients are authenticated data sources (IoT sensors, edge devices).  Every
entry carries the producing client's identity, a client-local sequence
number, the opaque payload bytes, and the client's signature over all of the
above (Section III / IV-A: "The generated data is signed and sent to edge
nodes for processing").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import InvalidMessageError
from ..common.identifiers import NodeId
from ..crypto.signatures import KeyRegistry, Signature


@dataclass(frozen=True)
class EntryBody:
    """The signed portion of a log entry (everything except the signature)."""

    producer: NodeId
    sequence: int
    payload: bytes
    produced_at: float

    @property
    def wire_size(self) -> int:
        # payload + producer name + fixed header fields
        return len(self.payload) + len(self.producer.name) + 24


@dataclass(frozen=True)
class LogEntry:
    """A client-produced entry together with the client's signature."""

    body: EntryBody
    signature: Optional[Signature] = None

    @property
    def producer(self) -> NodeId:
        return self.body.producer

    @property
    def sequence(self) -> int:
        return self.body.sequence

    @property
    def payload(self) -> bytes:
        return self.body.payload

    @property
    def produced_at(self) -> float:
        return self.body.produced_at

    @property
    def wire_size(self) -> int:
        return self.body.wire_size + (64 if self.signature is not None else 0)

    def verify(self, registry: KeyRegistry) -> bool:
        """Check the producer's signature over the entry body."""

        if self.signature is None:
            return False
        if self.signature.signer != self.body.producer:
            return False
        return registry.verify(self.signature, self.body)


def make_entry(
    registry: KeyRegistry,
    producer: NodeId,
    sequence: int,
    payload: bytes,
    produced_at: float,
) -> LogEntry:
    """Build and sign a log entry on behalf of *producer*."""

    body = EntryBody(
        producer=producer, sequence=sequence, payload=payload, produced_at=produced_at
    )
    signature = registry.sign(producer, body)
    return LogEntry(body=body, signature=signature)


def require_valid_entry(registry: KeyRegistry, entry: LogEntry) -> None:
    """Raise :class:`InvalidMessageError` unless the entry verifies."""

    if not entry.verify(registry):
        raise InvalidMessageError(
            f"entry {entry.sequence} from {entry.producer} failed verification"
        )
