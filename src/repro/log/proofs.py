"""Commit proofs: the artifacts behind Phase I and Phase II commitment.

*Phase I* — the edge node's signed response.  It does not prove the data is
durable or agreed upon; it proves the edge node *promised* this block content
for this block id, which is enough to punish the edge node later if the
promise is broken (Definition 1 in the paper).

*Phase II* — the cloud node's signed ``block-proof`` over ``(edge, block id,
digest)``.  Because the cloud signs at most one digest per block id, two
clients can never both hold Phase II proofs for conflicting contents
(Definition 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Union

from ..common.errors import ProofVerificationError
from ..common.identifiers import BlockId, NodeId
from ..crypto.signatures import (
    BatchRootStatement,
    KeyRegistry,
    Signature,
    batch_item_leaf,
    sign_batch_root,
    verify_batch_root,
)
from ..merkle.tree import InclusionProof, MerkleTree
from .block import Block


class CommitPhase(Enum):
    """Lifecycle of an operation under lazy certification."""

    PENDING = "pending"
    PHASE_ONE = "phase_one"
    PHASE_TWO = "phase_two"
    FAILED = "failed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_committed(self) -> bool:
        """Phase I already allows the client to make progress."""

        return self in (CommitPhase.PHASE_ONE, CommitPhase.PHASE_TWO)


@dataclass(frozen=True)
class PhaseOneStatement:
    """The content an edge node signs when it acknowledges an operation."""

    edge: NodeId
    block_id: BlockId
    block_digest: str
    issued_at: float


@dataclass(frozen=True)
class PhaseOneReceipt:
    """A signed Phase I acknowledgement (the client's evidence of a promise)."""

    statement: PhaseOneStatement
    signature: Signature

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def block_id(self) -> BlockId:
        return self.statement.block_id

    @property
    def block_digest(self) -> str:
        return self.statement.block_digest

    @property
    def wire_size(self) -> int:
        return 64 + 64 + 16

    def verify(self, registry: KeyRegistry) -> bool:
        """Check that the receipt was signed by the edge node it names."""

        if self.signature.signer != self.statement.edge:
            return False
        return registry.verify(self.signature, self.statement)

    def matches_block(self, block: Block) -> bool:
        """Whether this receipt's digest matches *block*'s content digest."""

        recomputed = block.digest()
        return (
            block.edge == self.statement.edge
            and block.block_id == self.statement.block_id
            and recomputed == self.statement.block_digest
        )


def issue_phase_one_receipt(
    registry: KeyRegistry, edge: NodeId, block: Block, issued_at: float
) -> PhaseOneReceipt:
    """Create an edge-signed Phase I receipt for *block*."""

    statement = PhaseOneStatement(
        edge=edge,
        block_id=block.block_id,
        block_digest=block.digest(),
        issued_at=issued_at,
    )
    return PhaseOneReceipt(statement=statement, signature=registry.sign(edge, statement))


@dataclass(frozen=True)
class BlockProofStatement:
    """The content the cloud signs when certifying a block digest."""

    cloud: NodeId
    edge: NodeId
    block_id: BlockId
    block_digest: str
    certified_at: float


@dataclass(frozen=True)
class BlockProof:
    """The cloud-signed certification of a block digest (Phase II evidence)."""

    statement: BlockProofStatement
    signature: Signature

    @property
    def cloud(self) -> NodeId:
        return self.statement.cloud

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def block_id(self) -> BlockId:
        return self.statement.block_id

    @property
    def block_digest(self) -> str:
        return self.statement.block_digest

    @property
    def certified_at(self) -> float:
        return self.statement.certified_at

    @property
    def wire_size(self) -> int:
        return 64 + 64 + 24

    def verify(self, registry: KeyRegistry) -> bool:
        """Check that the proof was signed by the cloud node it names."""

        if self.signature.signer != self.statement.cloud:
            return False
        return registry.verify(self.signature, self.statement)

    def verify_cached(self, registry: KeyRegistry) -> bool:
        """Like :meth:`verify`, memoized on the verifier's registry.

        Read proofs re-present the same block proofs on every get until the
        underlying blocks are merged away; proofs and registry keys are
        immutable, so the verification outcome can be reused within one
        simulation.  The verdict lives in the registry's cache, never on
        this (sender-constructed) object, so a malicious edge cannot attach
        a forged verdict.
        """

        memo = registry.verdict_memo(self)
        verdict = memo.get("proof")
        if verdict is None:
            verdict = self.verify(registry)
            memo["proof"] = verdict
        return verdict

    def certifies(self, block: Block) -> bool:
        """Whether this proof certifies exactly *block* (content digest)."""

        recomputed = block.digest()
        return (
            block.edge == self.statement.edge
            and block.block_id == self.statement.block_id
            and recomputed == self.statement.block_digest
        )


def issue_block_proof(
    registry: KeyRegistry,
    cloud: NodeId,
    edge: NodeId,
    block_id: BlockId,
    block_digest: str,
    certified_at: float,
) -> BlockProof:
    """Create a cloud-signed block proof over a digest."""

    statement = BlockProofStatement(
        cloud=cloud,
        edge=edge,
        block_id=block_id,
        block_digest=block_digest,
        certified_at=certified_at,
    )
    return BlockProof(statement=statement, signature=registry.sign(cloud, statement))


# ----------------------------------------------------------------------
# Batch certification: one cloud signature covering N block digests
# ----------------------------------------------------------------------
#: Domain-separation context for batch certification roots (Section IV-E:
#: certification is asynchronous, so nothing client-visible needs a
#: per-block signature — only a per-block proof).
CERTIFY_BATCH_CONTEXT = "certify-batch"


def certify_batch_leaf(block_id: BlockId, block_digest: str) -> str:
    """The Merkle leaf a batch certificate commits to for one block.

    The leaf binds the *pair* (block id, digest): a proof derived from the
    batch can never attest a certified digest under a different block id.
    """

    return batch_item_leaf((block_id, block_digest))


@dataclass(frozen=True)
class BatchCertificate:
    """The cloud's signature over one batch root covering N block digests.

    One Schnorr/HMAC signature certifies every block in the batch on both
    the sign and the verify side; per-block :class:`BatchedBlockProof`\\ s are
    derived locally from the ordered ``(block id, digest)`` list the root
    was built over.
    """

    statement: BatchRootStatement
    signature: Signature

    def __post_init__(self) -> None:
        if self.statement.context != CERTIFY_BATCH_CONTEXT:
            raise ProofVerificationError(
                f"batch certificate context {self.statement.context!r} is not "
                f"{CERTIFY_BATCH_CONTEXT!r}"
            )
        if self.statement.about is None:
            raise ProofVerificationError("batch certificate names no edge")

    @property
    def cloud(self) -> NodeId:
        return self.statement.signer

    @property
    def edge(self) -> NodeId:
        return self.statement.about

    @property
    def batch_root(self) -> str:
        return self.statement.root

    @property
    def num_blocks(self) -> int:
        return self.statement.count

    @property
    def certified_at(self) -> float:
        return self.statement.issued_at

    @property
    def wire_size(self) -> int:
        return 64 + 64 + 32

    def verify(self, registry: KeyRegistry) -> bool:
        """Check the cloud's root signature (memoized on the registry)."""

        return verify_batch_root(
            registry,
            self.statement,
            self.signature,
            expected_context=CERTIFY_BATCH_CONTEXT,
        )


def issue_batch_certificate(
    registry: KeyRegistry,
    cloud: NodeId,
    edge: NodeId,
    batch_root: str,
    num_blocks: int,
    certified_at: float,
) -> BatchCertificate:
    """Create the cloud's single-signature certificate over a batch root."""

    statement, signature = sign_batch_root(
        registry,
        signer=cloud,
        context=CERTIFY_BATCH_CONTEXT,
        root=batch_root,
        count=num_blocks,
        issued_at=certified_at,
        about=edge,
    )
    return BatchCertificate(statement=statement, signature=signature)


@dataclass(frozen=True)
class BatchedBlockProof:
    """Phase II evidence anchored in a batch root instead of a per-block
    signature: batch-root membership path + the signed root.

    Interchangeable with :class:`BlockProof` everywhere a proof travels
    (log attachment, read responses, client commit tracking): it exposes the
    same ``block_id``/``block_digest``/``verify``/``certifies`` surface, but
    verification costs one leaf digest plus an O(log N) path fold — the
    certificate signature itself is checked once per batch and memoized.
    """

    certificate: BatchCertificate
    block_id: BlockId
    block_digest: str
    membership: InclusionProof

    @property
    def cloud(self) -> NodeId:
        return self.certificate.cloud

    @property
    def edge(self) -> NodeId:
        return self.certificate.edge

    @property
    def certified_at(self) -> float:
        return self.certificate.certified_at

    @property
    def wire_size(self) -> int:
        return self.certificate.wire_size + self.membership.wire_size + 24

    def verify(self, registry: KeyRegistry) -> bool:
        """Leaf binding + membership path + (amortized) root signature."""

        if self.membership.leaf_digest != certify_batch_leaf(
            self.block_id, self.block_digest
        ):
            return False
        if not self.membership.verifies_against(self.certificate.batch_root):
            return False
        return self.certificate.verify(registry)

    def verify_cached(self, registry: KeyRegistry) -> bool:
        """Like :meth:`verify`, memoized on the verifier's registry."""

        memo = registry.verdict_memo(self)
        verdict = memo.get("proof")
        if verdict is None:
            verdict = self.verify(registry)
            memo["proof"] = verdict
        return verdict

    def certifies(self, block: Block) -> bool:
        """Whether this proof certifies exactly *block* (content digest)."""

        recomputed = block.digest()
        return (
            block.edge == self.certificate.edge
            and block.block_id == self.block_id
            and recomputed == self.block_digest
        )


#: Either certification artifact: the per-block signature form or the
#: batch-anchored form.  Protocol code treats them interchangeably.
AnyBlockProof = Union[BlockProof, BatchedBlockProof]


def verify_batch_certificates(
    registry: KeyRegistry,
    certificates: Sequence[BatchCertificate],
    expected_cloud: Optional[NodeId] = None,
) -> list[bool]:
    """Verify a burst of batch certificates with one amortized crypto pass.

    A pipelined edge absorbing a deep in-flight window receives several
    :class:`BatchCertificate`\\ s back to back, all signed by the same cloud.
    This helper verifies their root signatures together through
    :meth:`~repro.crypto.signatures.KeyRegistry.verify_many` (same-signer
    Schnorr groups cost ~2 exponentiations total) and seeds the per-
    certificate verdict memos, so the subsequent per-block
    :meth:`BatchedBlockProof.verify` calls cost only hashing.  Verdict order
    matches the input order; a certificate naming the wrong cloud fails
    without touching the crypto.
    """

    verdicts: list[Optional[bool]] = []
    pending: list[tuple[int, BatchRootStatement, Signature]] = []
    for certificate in certificates:
        statement, signature = certificate.statement, certificate.signature
        if signature.signer != statement.signer or (
            expected_cloud is not None and statement.signer != expected_cloud
        ):
            verdicts.append(False)
            continue
        memo = registry.verdict_memo(statement)
        verdict = memo.get(signature)
        if verdict is None:
            verdicts.append(None)
            pending.append((len(verdicts) - 1, statement, signature))
        else:
            verdicts.append(verdict)
    if pending:
        outcomes = registry.verify_many(
            [(signature, statement) for _, statement, signature in pending]
        )
        for (index, statement, signature), outcome in zip(pending, outcomes):
            registry.verdict_memo(statement)[signature] = outcome
            verdicts[index] = outcome
    return [bool(verdict) for verdict in verdicts]


def build_certify_batch_tree(
    blocks: Sequence[tuple[BlockId, str]]
) -> MerkleTree:
    """The Merkle tree a batch certificate's root is computed over."""

    return MerkleTree(
        [certify_batch_leaf(block_id, digest) for block_id, digest in blocks]
    )


def derive_batched_proofs(
    certificate: BatchCertificate,
    blocks: Sequence[tuple[BlockId, str]],
    tree: Optional[MerkleTree] = None,
) -> tuple[BatchedBlockProof, ...]:
    """Derive per-block proofs locally from a certificate and its leaf list.

    Raises :class:`ProofVerificationError` when *blocks* is not the exact
    ordered list the certificate's root was built over — the caller is
    holding a certificate for a different batch (or a tampered list).

    ``tree`` lets a caller that already built the batch tree (the cloud,
    which built it to compute the root it just signed) skip rebuilding it;
    callers receiving the certificate over the wire must omit it so the
    tree is rebuilt from the untrusted ``blocks`` list.
    """

    if tree is None:
        tree = build_certify_batch_tree(blocks)
    if len(blocks) != certificate.num_blocks or tree.root != certificate.batch_root:
        raise ProofVerificationError(
            f"batch of {len(blocks)} blocks does not match certificate root "
            f"(expected {certificate.num_blocks} blocks under "
            f"{certificate.batch_root[:12]}…)"
        )
    return tuple(
        BatchedBlockProof(
            certificate=certificate,
            block_id=block_id,
            block_digest=digest,
            membership=tree.prove(index),
        )
        for index, (block_id, digest) in enumerate(blocks)
    )


@dataclass(frozen=True)
class ReadProof:
    """Proof attached to a log read response.

    A read can be answered in Phase II (``block_proof`` present) or in
    Phase I (``block_proof`` is ``None`` and the client must wait for the
    cloud certification; the signed response itself is the client's evidence
    in case of a dispute).
    """

    phase: CommitPhase
    block_proof: Optional[AnyBlockProof] = None

    @property
    def is_final(self) -> bool:
        return self.phase is CommitPhase.PHASE_TWO and self.block_proof is not None
