"""Commit proofs: the artifacts behind Phase I and Phase II commitment.

*Phase I* — the edge node's signed response.  It does not prove the data is
durable or agreed upon; it proves the edge node *promised* this block content
for this block id, which is enough to punish the edge node later if the
promise is broken (Definition 1 in the paper).

*Phase II* — the cloud node's signed ``block-proof`` over ``(edge, block id,
digest)``.  Because the cloud signs at most one digest per block id, two
clients can never both hold Phase II proofs for conflicting contents
(Definition 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..common.identifiers import BlockId, NodeId
from ..crypto.signatures import KeyRegistry, Signature
from .block import Block


class CommitPhase(Enum):
    """Lifecycle of an operation under lazy certification."""

    PENDING = "pending"
    PHASE_ONE = "phase_one"
    PHASE_TWO = "phase_two"
    FAILED = "failed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_committed(self) -> bool:
        """Phase I already allows the client to make progress."""

        return self in (CommitPhase.PHASE_ONE, CommitPhase.PHASE_TWO)


@dataclass(frozen=True)
class PhaseOneStatement:
    """The content an edge node signs when it acknowledges an operation."""

    edge: NodeId
    block_id: BlockId
    block_digest: str
    issued_at: float


@dataclass(frozen=True)
class PhaseOneReceipt:
    """A signed Phase I acknowledgement (the client's evidence of a promise)."""

    statement: PhaseOneStatement
    signature: Signature

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def block_id(self) -> BlockId:
        return self.statement.block_id

    @property
    def block_digest(self) -> str:
        return self.statement.block_digest

    @property
    def wire_size(self) -> int:
        return 64 + 64 + 16

    def verify(self, registry: KeyRegistry) -> bool:
        """Check that the receipt was signed by the edge node it names."""

        if self.signature.signer != self.statement.edge:
            return False
        return registry.verify(self.signature, self.statement)

    def matches_block(self, block: Block) -> bool:
        """Whether this receipt's digest matches *block*'s content digest."""

        recomputed = block.digest()
        return (
            block.edge == self.statement.edge
            and block.block_id == self.statement.block_id
            and recomputed == self.statement.block_digest
        )


def issue_phase_one_receipt(
    registry: KeyRegistry, edge: NodeId, block: Block, issued_at: float
) -> PhaseOneReceipt:
    """Create an edge-signed Phase I receipt for *block*."""

    statement = PhaseOneStatement(
        edge=edge,
        block_id=block.block_id,
        block_digest=block.digest(),
        issued_at=issued_at,
    )
    return PhaseOneReceipt(statement=statement, signature=registry.sign(edge, statement))


@dataclass(frozen=True)
class BlockProofStatement:
    """The content the cloud signs when certifying a block digest."""

    cloud: NodeId
    edge: NodeId
    block_id: BlockId
    block_digest: str
    certified_at: float


@dataclass(frozen=True)
class BlockProof:
    """The cloud-signed certification of a block digest (Phase II evidence)."""

    statement: BlockProofStatement
    signature: Signature

    @property
    def cloud(self) -> NodeId:
        return self.statement.cloud

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def block_id(self) -> BlockId:
        return self.statement.block_id

    @property
    def block_digest(self) -> str:
        return self.statement.block_digest

    @property
    def certified_at(self) -> float:
        return self.statement.certified_at

    @property
    def wire_size(self) -> int:
        return 64 + 64 + 24

    def verify(self, registry: KeyRegistry) -> bool:
        """Check that the proof was signed by the cloud node it names."""

        if self.signature.signer != self.statement.cloud:
            return False
        return registry.verify(self.signature, self.statement)

    def verify_cached(self, registry: KeyRegistry) -> bool:
        """Like :meth:`verify`, memoized on the verifier's registry.

        Read proofs re-present the same block proofs on every get until the
        underlying blocks are merged away; proofs and registry keys are
        immutable, so the verification outcome can be reused within one
        simulation.  The verdict lives in the registry's cache, never on
        this (sender-constructed) object, so a malicious edge cannot attach
        a forged verdict.
        """

        memo = registry.verdict_memo(self)
        verdict = memo.get("proof")
        if verdict is None:
            verdict = self.verify(registry)
            memo["proof"] = verdict
        return verdict

    def certifies(self, block: Block) -> bool:
        """Whether this proof certifies exactly *block* (content digest)."""

        recomputed = block.digest()
        return (
            block.edge == self.statement.edge
            and block.block_id == self.statement.block_id
            and recomputed == self.statement.block_digest
        )


def issue_block_proof(
    registry: KeyRegistry,
    cloud: NodeId,
    edge: NodeId,
    block_id: BlockId,
    block_digest: str,
    certified_at: float,
) -> BlockProof:
    """Create a cloud-signed block proof over a digest."""

    statement = BlockProofStatement(
        cloud=cloud,
        edge=edge,
        block_id=block_id,
        block_digest=block_digest,
        certified_at=certified_at,
    )
    return BlockProof(statement=statement, signature=registry.sign(cloud, statement))


@dataclass(frozen=True)
class ReadProof:
    """Proof attached to a log read response.

    A read can be answered in Phase II (``block_proof`` present) or in
    Phase I (``block_proof`` is ``None`` and the client must wait for the
    cloud certification; the signed response itself is the client's evidence
    in case of a dispute).
    """

    phase: CommitPhase
    block_proof: Optional[BlockProof] = None

    @property
    def is_final(self) -> bool:
        return self.phase is CommitPhase.PHASE_TWO and self.block_proof is not None
