"""The edge node's entry buffer.

Incoming ``add``/``put`` entries are batched until ``block_size`` entries are
available (or a flush is forced by the block timeout); the batch then becomes
the next block.  The buffer also remembers which pending operation each entry
belongs to so that the edge node can route add-responses back to the right
clients once the block forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..common.errors import ConfigurationError
from ..common.identifiers import NodeId, OperationId
from .entry import LogEntry


@dataclass
class BufferedEntry:
    """An entry waiting in the buffer plus bookkeeping for its response."""

    entry: LogEntry
    operation_id: Optional[OperationId]
    requester: Optional[NodeId]
    buffered_at: float


@dataclass
class PendingBatch:
    """A batch of buffered entries that is ready to become a block."""

    entries: list[BufferedEntry] = field(default_factory=list)

    @property
    def log_entries(self) -> tuple[LogEntry, ...]:
        return tuple(item.entry for item in self.entries)

    @property
    def requesters(self) -> tuple[NodeId, ...]:
        seen: list[NodeId] = []
        for item in self.entries:
            if item.requester is not None and item.requester not in seen:
                seen.append(item.requester)
        return tuple(seen)


class BlockBuffer:
    """Accumulates entries and emits full batches."""

    def __init__(self, block_size: int) -> None:
        if block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        self._block_size = block_size
        self._pending: list[BufferedEntry] = []
        self._pending_keys: set[tuple[NodeId, int]] = set()
        self._total_buffered = 0

    @property
    def block_size(self) -> int:
        return self._block_size

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def is_empty(self) -> bool:
        return not self._pending

    @property
    def total_buffered(self) -> int:
        """Total number of entries ever buffered (monotonic counter)."""

        return self._total_buffered

    def append(
        self,
        entry: LogEntry,
        now: float,
        operation_id: Optional[OperationId] = None,
        requester: Optional[NodeId] = None,
    ) -> Optional[PendingBatch]:
        """Add an entry; return a full batch once ``block_size`` is reached."""

        self._pending.append(
            BufferedEntry(
                entry=entry,
                operation_id=operation_id,
                requester=requester,
                buffered_at=now,
            )
        )
        self._pending_keys.add((entry.producer, entry.sequence))
        self._total_buffered += 1
        if len(self._pending) >= self._block_size:
            return self.flush()
        return None

    def contains(self, producer: NodeId, sequence: int) -> bool:
        """Whether an entry with this (producer, sequence) is buffered.

        Replay protection for entries that have not formed a block yet:
        ``entry_locations`` only covers formed blocks, so a duplicated
        append arriving before the block timeout would otherwise be
        buffered — and applied — twice.
        """

        return (producer, sequence) in self._pending_keys

    def flush(self) -> Optional[PendingBatch]:
        """Force the current contents out as a batch (None if empty)."""

        if not self._pending:
            return None
        batch = PendingBatch(entries=self._pending)
        self._pending = []
        self._pending_keys = set()
        return batch

    def oldest_age(self, now: float) -> Optional[float]:
        """Age in seconds of the oldest buffered entry, if any."""

        if not self._pending:
            return None
        return now - self._pending[0].buffered_at
