"""The append-only block log stored at each edge node.

The log maps monotonic block ids to blocks and remembers, per block, whether
the cloud has certified it (and with which proof).  It is deliberately a
plain in-memory structure: durability at the edge is outside the paper's
threat model (a malicious edge can destroy data regardless; the cloud's
digests plus gossip bound the damage).  Deployments that want restarts to
keep the log pair it with a :mod:`repro.storage` segment log and rebuild it
through :mod:`repro.storage.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..common.errors import BlockNotFoundError, ProtocolError
from ..common.identifiers import BlockId, NodeId
from .block import Block, BlockSummary
from .proofs import AnyBlockProof

NodeIds = tuple[NodeId, ...]


@dataclass
class LogRecord:
    """A block plus its certification state."""

    block: Block
    proof: Optional[AnyBlockProof] = None
    certify_requested_at: Optional[float] = None

    @property
    def is_certified(self) -> bool:
        return self.proof is not None


class WedgeLog:
    """Append-only, digest-tracked block log for one edge partition."""

    def __init__(self, owner: NodeId, co_owners: NodeIds = ()) -> None:
        self._owner = owner
        #: Additional edges whose blocks this log may legitimately hold.  A
        #: promoted replica inherits the certified prefix written by the
        #: deposed writer; those blocks keep their original ``edge`` field
        #: (their certificates bind it), so the promoted log accepts the
        #: provenance chain alongside its own appends.  Empty by default —
        #: a single-writer log rejects foreign blocks exactly as before.
        self._co_owners: frozenset[NodeId] = frozenset(co_owners)
        self._records: dict[BlockId, LogRecord] = {}
        self._next_block_id: BlockId = 0
        #: Block ids below this were snapshot-truncated from durable storage
        #: (their contents live on as merged, manifest-covered pages).
        self.truncated_below: BlockId = 0

    @property
    def owner(self) -> NodeId:
        return self._owner

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._records

    def __iter__(self) -> Iterator[LogRecord]:
        for block_id in sorted(self._records):
            yield self._records[block_id]

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def allocate_block_id(self) -> BlockId:
        """Reserve the next monotonic block id (ids are edge-local)."""

        block_id = self._next_block_id
        self._next_block_id += 1
        return block_id

    @property
    def next_block_id(self) -> BlockId:
        return self._next_block_id

    def mark_truncated(self, before_block_id: BlockId) -> None:
        """Record that ids below *before_block_id* were durably truncated.

        Advances the allocator past the truncation point: a recovered log
        must never re-issue a block id the cloud may already hold a
        certificate for, even when the blocks themselves no longer replay
        (they were merged into manifest pages and their segments deleted).
        """

        if before_block_id > self.truncated_below:
            self.truncated_below = before_block_id
        if before_block_id > self._next_block_id:
            self._next_block_id = before_block_id

    def append(self, block: Block) -> LogRecord:
        """Append a formed block to the log."""

        if block.edge != self._owner and block.edge not in self._co_owners:
            raise ProtocolError(
                f"block owned by {block.edge} appended to log of {self._owner}"
            )
        if block.block_id in self._records:
            raise ProtocolError(f"block id {block.block_id} already in log")
        if block.block_id >= self._next_block_id:
            # Allow callers that assign ids themselves, but keep monotonicity.
            self._next_block_id = block.block_id + 1
        record = LogRecord(block=block)
        self._records[block.block_id] = record
        return record

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, block_id: BlockId) -> LogRecord:
        try:
            return self._records[block_id]
        except KeyError as exc:
            raise BlockNotFoundError(
                f"block {block_id} not found in log of {self._owner}"
            ) from exc

    def try_get(self, block_id: BlockId) -> Optional[LogRecord]:
        return self._records.get(block_id)

    def block(self, block_id: BlockId) -> Block:
        return self.get(block_id).block

    def proof_for(self, block_id: BlockId) -> Optional[AnyBlockProof]:
        record = self.try_get(block_id)
        return record.proof if record is not None else None

    # ------------------------------------------------------------------
    # Certification bookkeeping
    # ------------------------------------------------------------------
    def mark_certify_requested(self, block_id: BlockId, at: float) -> None:
        self.get(block_id).certify_requested_at = at

    def attach_proof(self, proof: AnyBlockProof) -> LogRecord:
        """Store the cloud's block proof next to the block it certifies."""

        record = self.get(proof.block_id)
        if record.block.digest() != proof.block_digest:
            raise ProtocolError(
                f"proof digest mismatch for block {proof.block_id} at {self._owner}"
            )
        record.proof = proof
        return record

    def uncertified_block_ids(self) -> tuple[BlockId, ...]:
        return tuple(
            block_id
            for block_id in sorted(self._records)
            if self._records[block_id].proof is None
        )

    def certified_count(self) -> int:
        return sum(1 for record in self._records.values() if record.is_certified)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summaries(self) -> tuple[BlockSummary, ...]:
        """Digest-only summaries of every block, in block-id order."""

        result = []
        for block_id in sorted(self._records):
            record = self._records[block_id]
            certified_at = (
                record.proof.certified_at if record.proof is not None else None
            )
            result.append(BlockSummary.of(record.block, certified_at))
        return tuple(result)

    def total_entries(self) -> int:
        return sum(record.block.num_entries for record in self._records.values())
