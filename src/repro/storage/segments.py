"""Append-only checksummed segment log.

The wedge log's durable form: a directory of numbered segment files, each a
sequence of length-prefixed, CRC-checked records::

    [4-byte big-endian payload length][4-byte CRC32 of payload][payload]

The highest-numbered segment is *active* (appends go there); every lower
number is *sealed* and immutable.  The distinction drives replay semantics:

* a sealed segment must replay perfectly — any CRC mismatch, bad length, or
  truncated record is :class:`~repro.common.errors.StorageCorruptionError`
  (the segment was fully written and synced once; damage means the disk or
  an adversary altered it);
* the active segment may legitimately end mid-record after a crash (a torn
  tail).  Replay stops at the first invalid or incomplete record, truncates
  the file back to the last valid boundary, and counts the event — torn
  tails are expected crash debris, not corruption.

Durability is governed by the fsync policy: ``"always"`` syncs after every
append (no acknowledged record can be lost), ``"on_seal"`` syncs once per
sealed segment, ``"never"`` leaves it to the OS.  The log tracks how many
bytes of the active segment are known synced so that
:meth:`SegmentLog.simulate_crash` can model a kill realistically: synced
bytes survive, unsynced bytes survive only partially (deterministically half
— which is exactly how torn tails arise).

Disk faults for the chaos suite are armed with :meth:`SegmentLog.arm_fault`:
``"torn_write"`` makes the next append write only a prefix of its frame,
``"bit_flip"`` flips one payload bit after the CRC was computed, and
``"enospc"`` refuses the append with
:class:`~repro.common.errors.StorageFullError`.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator, Optional

from ..common.errors import StorageCorruptionError, StorageFullError

_HEADER = struct.Struct(">II")

#: Disk-fault kinds :meth:`SegmentLog.arm_fault` understands.
FAULT_KINDS = ("torn_write", "bit_flip", "enospc")


def _segment_name(index: int) -> str:
    return f"seg-{index:08d}.log"


def frame_record(payload: bytes) -> bytes:
    """The on-disk frame for one payload."""

    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class SegmentLog:
    """An append-only log over rotating, checksummed segment files."""

    def __init__(
        self,
        directory: str,
        fsync: str = "on_seal",
        segment_max_bytes: int = 1 << 20,
    ) -> None:
        self.directory = directory
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self.torn_records_dropped = 0
        self._armed: dict[str, int] = {}
        os.makedirs(directory, exist_ok=True)
        indices = self._scan_indices()
        self._active_index = indices[-1] if indices else 0
        self._repair_active_tail()
        self._file = open(self._segment_path(self._active_index), "ab")
        self._active_size = self._file.tell()
        self._synced_offset = self._active_size

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, _segment_name(index))

    def _scan_indices(self) -> list[int]:
        indices = []
        for name in os.listdir(self.directory):
            if name.startswith("seg-") and name.endswith(".log"):
                indices.append(int(name[4:-4]))
        return sorted(indices)

    @property
    def active_index(self) -> int:
        return self._active_index

    def segment_indices(self) -> tuple[int, ...]:
        return tuple(self._scan_indices())

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def arm_fault(self, kind: str, count: int = 1) -> None:
        """Make the next *count* appends suffer the given disk fault."""

        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown disk fault kind {kind!r}")
        self._armed[kind] = self._armed.get(kind, 0) + count

    def _take_fault(self, kind: str) -> bool:
        remaining = self._armed.get(kind, 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            del self._armed[kind]
        else:
            self._armed[kind] = remaining - 1
        return True

    def append(self, payload: bytes) -> None:
        """Append one record, honouring rotation, fsync policy, and faults."""

        if self._take_fault("enospc"):
            raise StorageFullError(
                f"simulated ENOSPC appending to {self.directory}"
            )
        frame = frame_record(payload)
        if self._take_fault("bit_flip"):
            # Flip one payload bit *after* the CRC was computed: the frame
            # lands with a checksum that can never match its contents.
            body = bytearray(frame)
            body[_HEADER.size] ^= 0x01
            frame = bytes(body)
        if self._active_size > 0 and self._active_size + len(frame) > self.segment_max_bytes:
            self._seal_active()
        if self._take_fault("torn_write"):
            # Model a write that never finished: only a prefix of the frame
            # reaches the file.  Replay stops here, so this record and any
            # record appended after it are lost at the next recovery.
            frame = frame[: max(1, len(frame) // 2)]
        self._file.write(frame)
        self._file.flush()
        self._active_size += len(frame)
        if self.fsync == "always":
            os.fsync(self._file.fileno())
            self._synced_offset = self._active_size

    def _seal_active(self) -> None:
        self._file.flush()
        if self.fsync in ("on_seal", "always"):
            os.fsync(self._file.fileno())
        self._file.close()
        self._active_index += 1
        self._file = open(self._segment_path(self._active_index), "ab")
        self._active_size = 0
        self._synced_offset = 0

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _read_segment(
        self, index: int, sealed: bool
    ) -> tuple[list[bytes], Optional[int]]:
        """Return (payloads, valid_prefix_length or None if fully valid)."""

        path = self._segment_path(index)
        with open(path, "rb") as handle:
            data = handle.read()
        payloads: list[bytes] = []
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                break
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break
            payloads.append(payload)
            offset = end
        if offset == len(data):
            return payloads, None
        if sealed:
            raise StorageCorruptionError(
                f"sealed segment {_segment_name(index)} invalid at byte {offset}: "
                "checksum or framing failure"
            )
        return payloads, offset

    def _repair_active_tail(self) -> None:
        """Truncate crash debris off the active segment (torn-tail repair)."""

        path = self._segment_path(self._active_index)
        if not os.path.exists(path):
            return
        _, valid_prefix = self._read_segment(self._active_index, sealed=False)
        if valid_prefix is not None:
            with open(path, "r+b") as handle:
                handle.truncate(valid_prefix)
            self.torn_records_dropped += 1

    def replay(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(segment_index, payload)`` for every durable record.

        Sealed segments that fail validation raise
        :class:`StorageCorruptionError`; the active segment's torn tail was
        already truncated when the log was opened.
        """

        indices = self._scan_indices()
        for index in indices:
            payloads, _ = self._read_segment(index, sealed=index != self._active_index)
            for payload in payloads:
                yield index, payload

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drop_segment(self, index: int) -> None:
        """Delete one sealed segment (snapshot truncation)."""

        if index == self._active_index:
            raise ValueError("cannot drop the active segment")
        os.unlink(self._segment_path(index))

    def simulate_crash(self) -> None:
        """Model a process kill: unsynced active-segment bytes half-survive.

        Everything up to the last fsync is kept; of the bytes written since,
        a deterministic half reach the disk — which is exactly how a torn
        tail (a record cut mid-frame) comes to exist.  The log is closed;
        reopening it replays and repairs.
        """

        self._file.flush()
        keep = self._synced_offset + (self._active_size - self._synced_offset) // 2
        self._file.close()
        with open(self._segment_path(self._active_index), "r+b") as handle:
            handle.truncate(keep)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self.fsync in ("on_seal", "always"):
                os.fsync(self._file.fileno())
            self._file.close()
