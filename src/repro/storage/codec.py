"""Round-trip codec for the protocol values the durable store persists.

The canonical encoder (:mod:`repro.common.encoding`) is one-way by design —
digests and signatures only need ``value -> bytes``.  Durable storage needs
the way back: a segment record or manifest read from disk must become the
same ``Block``/``PhaseOneReceipt``/``BlockProof``/``SignedGlobalRoot``
object it was written from.  This module adds that inverse on top of
``to_jsonable``'s tagged-tree format (``{"__type__": ...}`` for dataclasses,
``{"__bytes__": hex}``, ``{"__enum__": ...}``), against an explicit registry
of the storable classes.

The same codec is the **wire format** of the live service harness
(:mod:`repro.service`): every message a node puts on a socket goes through
:func:`encode_record` and comes back through :func:`decode_record`, so the
registry also covers every class in
:data:`repro.messages.WIRE_MESSAGE_TYPES` together with the statement and
evidence types nested inside them.  ``tests/test_wire_codec_roundtrip.py``
enforces coverage and ``encode → decode → encode`` byte-identity.

Decoding is strict: an unknown ``__type__``, a malformed tree, or a value
that fails its class's own ``__post_init__`` validation raises
:class:`~repro.common.errors.StorageCorruptionError` — storage never hands
back an object the constructors would have refused to build.  All JSON
arrays decode to tuples, matching how every frozen protocol dataclass
declares its sequence fields.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from typing import Any

from ..common.encoding import to_jsonable
from ..common.errors import StorageCorruptionError
from ..common.identifiers import NodeId, NodeRole, OperationId, OperationKind
from ..crypto.signatures import BatchRootStatement, Signature
from ..log.block import Block
from ..log.entry import EntryBody, LogEntry
from ..log.proofs import (
    BatchCertificate,
    BatchedBlockProof,
    BlockProof,
    BlockProofStatement,
    PhaseOneReceipt,
    PhaseOneStatement,
)
from ..lsm.page import Page
from ..lsm.records import KeyFence, KVRecord
from ..lsmerkle.merge import MergeOutcome, MergeProposal
from ..lsmerkle.mlsm import GlobalRootStatement, SignedGlobalRoot
from ..lsmerkle.read_proof import GetProof, LevelPageEvidence, LevelZeroEvidence
from ..merkle.tree import InclusionProof, ProofStep
from ..messages import (
    kv_messages as _kv_messages,
    log_messages as _log_messages,
    shard_messages as _shard_messages,
    txn_messages as _txn_messages,
)

#: Dataclasses the store is allowed to reconstruct.  Every entry decodes
#: through its ordinary (validating) constructor.
_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        NodeId,
        OperationId,
        Signature,
        EntryBody,
        LogEntry,
        Block,
        PhaseOneStatement,
        PhaseOneReceipt,
        BlockProofStatement,
        BlockProof,
        BatchRootStatement,
        BatchCertificate,
        ProofStep,
        InclusionProof,
        BatchedBlockProof,
        GlobalRootStatement,
        SignedGlobalRoot,
        KVRecord,
        KeyFence,
        Page,
        # Nested evidence/proposal types that ride inside wire messages.
        LevelZeroEvidence,
        LevelPageEvidence,
        GetProof,
        MergeProposal,
        MergeOutcome,
    )
}

_ENUMS: dict[str, type[Enum]] = {NodeRole.__name__: NodeRole}

#: Fields whose declared type is a ``str``-subclass enum.  The canonical
#: encoding flattens those to their plain string value (``isinstance(x, str)``
#: wins before the enum check), so the decoder re-wraps them here — an
#: unknown value raises inside the enum constructor, -> corruption.
_ENUM_FIELDS: dict[type, dict[str, type[Enum]]] = {
    NodeId: {"role": NodeRole},
    _log_messages.AppendBatchRequest: {"kind": OperationKind},
}


def register_storable(cls: type) -> type:
    """Register *cls* as decodable; rejects ``__name__`` collisions.

    The codec keys records by class name, so two distinct classes sharing a
    name would silently decode into the wrong one — refuse instead.
    """

    existing = _TYPES.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"storable name collision: {cls.__name__!r} already registered "
            f"for {existing.__module__}.{existing.__qualname__}"
        )
    _TYPES[cls.__name__] = cls
    return cls


# The live transport frames these exact records over sockets, so every
# message dataclass — envelopes and the signed statements nested inside
# them — must decode.  Scanning the defining modules keeps a future message
# class from silently missing the registry (and the round-trip test pins
# coverage of WIRE_MESSAGE_TYPES explicitly).
for _module in (_kv_messages, _log_messages, _shard_messages, _txn_messages):
    for _obj in vars(_module).values():
        if (
            isinstance(_obj, type)
            and dataclasses.is_dataclass(_obj)
            and _obj.__module__ == _module.__name__
        ):
            register_storable(_obj)


def encode_record(value: Any) -> bytes:
    """Encode *value* (a storable object or a plain tree of them) to bytes."""

    tree = to_jsonable(value)
    return json.dumps(tree, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _decode_tree(node: Any) -> Any:
    if isinstance(node, dict):
        if "__bytes__" in node:
            return bytes.fromhex(node["__bytes__"])
        if "__enum__" in node:
            enum_cls = _ENUMS.get(node["__enum__"])
            if enum_cls is None:
                raise StorageCorruptionError(
                    f"record references unknown enum {node['__enum__']!r}"
                )
            return enum_cls(node["value"])
        type_name = node.get("__type__")
        if type_name is not None:
            cls = _TYPES.get(type_name)
            if cls is None:
                raise StorageCorruptionError(
                    f"record references unknown type {type_name!r}"
                )
            fields = {
                key: _decode_tree(value)
                for key, value in node.items()
                if key != "__type__"
            }
            if cls is Page:
                # page_id is a process-local counter, never round-tripped;
                # the validating constructor assigns a fresh one (and, by
                # re-checking sort order and fences, refuses to rebuild a
                # tampered page).
                fields.pop("page_id", None)
            for name, enum_cls in _ENUM_FIELDS.get(cls, {}).items():
                fields[name] = enum_cls(fields[name])
            return cls(**fields)
        return {key: _decode_tree(value) for key, value in node.items()}
    if isinstance(node, list):
        return tuple(_decode_tree(item) for item in node)
    return node


def decode_record(data: bytes) -> Any:
    """Decode bytes written by :func:`encode_record` back into objects.

    Raises :class:`StorageCorruptionError` on any malformation — undecodable
    JSON, unknown tags, or field values the target class rejects.
    """

    try:
        tree = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageCorruptionError(f"undecodable stored record: {exc}") from exc
    try:
        return _decode_tree(tree)
    except StorageCorruptionError:
        raise
    except Exception as exc:
        raise StorageCorruptionError(f"stored record failed to rebuild: {exc}") from exc
