"""Round-trip codec for the protocol values the durable store persists.

The canonical encoder (:mod:`repro.common.encoding`) is one-way by design —
digests and signatures only need ``value -> bytes``.  Durable storage needs
the way back: a segment record or manifest read from disk must become the
same ``Block``/``PhaseOneReceipt``/``BlockProof``/``SignedGlobalRoot``
object it was written from.  This module adds that inverse on top of
``to_jsonable``'s tagged-tree format (``{"__type__": ...}`` for dataclasses,
``{"__bytes__": hex}``, ``{"__enum__": ...}``), against an explicit registry
of the storable classes.

Decoding is strict: an unknown ``__type__``, a malformed tree, or a value
that fails its class's own ``__post_init__`` validation raises
:class:`~repro.common.errors.StorageCorruptionError` — storage never hands
back an object the constructors would have refused to build.  All JSON
arrays decode to tuples, matching how every frozen protocol dataclass
declares its sequence fields.
"""

from __future__ import annotations

import json
from enum import Enum
from typing import Any

from ..common.encoding import to_jsonable
from ..common.errors import StorageCorruptionError
from ..common.identifiers import NodeId, NodeRole
from ..crypto.signatures import BatchRootStatement, Signature
from ..log.block import Block
from ..log.entry import EntryBody, LogEntry
from ..log.proofs import (
    BatchCertificate,
    BatchedBlockProof,
    BlockProof,
    BlockProofStatement,
    PhaseOneReceipt,
    PhaseOneStatement,
)
from ..lsm.page import Page
from ..lsm.records import KeyFence, KVRecord
from ..lsmerkle.mlsm import GlobalRootStatement, SignedGlobalRoot
from ..merkle.tree import InclusionProof, ProofStep

#: Dataclasses the store is allowed to reconstruct.  Every entry decodes
#: through its ordinary (validating) constructor.
_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        NodeId,
        Signature,
        EntryBody,
        LogEntry,
        Block,
        PhaseOneStatement,
        PhaseOneReceipt,
        BlockProofStatement,
        BlockProof,
        BatchRootStatement,
        BatchCertificate,
        ProofStep,
        InclusionProof,
        BatchedBlockProof,
        GlobalRootStatement,
        SignedGlobalRoot,
        KVRecord,
        KeyFence,
        Page,
    )
}

_ENUMS: dict[str, type[Enum]] = {NodeRole.__name__: NodeRole}


def encode_record(value: Any) -> bytes:
    """Encode *value* (a storable object or a plain tree of them) to bytes."""

    tree = to_jsonable(value)
    return json.dumps(tree, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _decode_tree(node: Any) -> Any:
    if isinstance(node, dict):
        if "__bytes__" in node:
            return bytes.fromhex(node["__bytes__"])
        if "__enum__" in node:
            enum_cls = _ENUMS.get(node["__enum__"])
            if enum_cls is None:
                raise StorageCorruptionError(
                    f"record references unknown enum {node['__enum__']!r}"
                )
            return enum_cls(node["value"])
        type_name = node.get("__type__")
        if type_name is not None:
            cls = _TYPES.get(type_name)
            if cls is None:
                raise StorageCorruptionError(
                    f"record references unknown type {type_name!r}"
                )
            fields = {
                key: _decode_tree(value)
                for key, value in node.items()
                if key != "__type__"
            }
            if cls is Page:
                # page_id is a process-local counter, never round-tripped;
                # the validating constructor assigns a fresh one (and, by
                # re-checking sort order and fences, refuses to rebuild a
                # tampered page).
                fields.pop("page_id", None)
            elif cls is NodeId:
                # NodeRole subclasses str, so the canonical encoding
                # flattens it to its plain value — re-wrap it on the way
                # back (an unknown role value raises, -> corruption).
                fields["role"] = NodeRole(fields["role"])
            return cls(**fields)
        return {key: _decode_tree(value) for key, value in node.items()}
    if isinstance(node, list):
        return tuple(_decode_tree(item) for item in node)
    return node


def decode_record(data: bytes) -> Any:
    """Decode bytes written by :func:`encode_record` back into objects.

    Raises :class:`StorageCorruptionError` on any malformation — undecodable
    JSON, unknown tags, or field values the target class rejects.
    """

    try:
        tree = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageCorruptionError(f"undecodable stored record: {exc}") from exc
    try:
        return _decode_tree(tree)
    except StorageCorruptionError:
        raise
    except Exception as exc:
        raise StorageCorruptionError(f"stored record failed to rebuild: {exc}") from exc
