"""One partition's durable store: segment log + manifest + page files.

A :class:`PartitionStore` owns one directory and persists exactly the state
the trust model calls non-volatile: logged blocks with their Phase I
receipts, Phase II certification proofs, the Merkle-tracked level pages, and
the last cloud-signed global root.  Volatile state (the entry buffer,
in-flight certify windows, staged 2PC prepares) is deliberately never
written — a crash is *supposed* to lose it.

Layout::

    <partition dir>/
        seg-00000000.log ...   # append-only record segments (segments.py)
        MANIFEST.json          # atomically-swapped index snapshot
        pages/<digest>.json    # content-addressed level pages
        RETIRED                # marker: this incarnation handed its shard off

Segment records are a small JSON envelope ``{"kind", "bid", "data"}`` so
that snapshot truncation can track the highest block id per segment without
decoding full payloads again.  ``write_manifest`` doubles as the snapshot
point: when ``truncate_on_snapshot`` is set, sealed segments whose every
block lies below the caller's *truncate floor* (nothing uncertified, nothing
still in level 0, all merged into manifest pages) are deleted.

Write failures injected by the chaos suite (or a real full disk) surface as
:class:`~repro.common.errors.StorageError`; the edge treats them as
degraded durability, not as reasons to stop serving.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Optional

from ..common.config import StorageConfig
from ..common.errors import StorageCorruptionError
from ..common.identifiers import BlockId
from ..log.block import Block
from ..log.proofs import AnyBlockProof, PhaseOneReceipt
from ..lsm.page import Page
from ..lsmerkle.mlsm import SignedGlobalRoot
from .codec import decode_record, encode_record
from .manifest import Manifest, load_manifest, load_pages, write_manifest
from .segments import FAULT_KINDS, SegmentLog

RETIRED_MARKER = "RETIRED"


@dataclass
class StoreReplay:
    """Everything a segment replay recovered, in append order."""

    blocks: list[Block] = field(default_factory=list)
    receipts: dict[BlockId, PhaseOneReceipt] = field(default_factory=dict)
    proofs: dict[BlockId, AnyBlockProof] = field(default_factory=dict)
    torn_records_dropped: int = 0


class PartitionStore:
    """Durable backing for one :class:`~repro.nodes.edge.PartitionState`."""

    def __init__(self, directory: str, config: StorageConfig) -> None:
        self.directory = directory
        self.config = config
        self.stats = {
            "blocks_appended": 0,
            "proofs_appended": 0,
            "manifests_written": 0,
            "segments_truncated": 0,
        }
        #: Highest block id appended per segment index (for truncation);
        #: rebuilt from replay after a reopen.
        self._segment_max_bid: dict[int, int] = {}
        self._manifest_version = 0
        if os.path.exists(os.path.join(directory, RETIRED_MARKER)):
            # A previous incarnation handed this shard off; its durable
            # state was transferred away, so a re-adoption starts fresh.
            shutil.rmtree(directory)
        os.makedirs(directory, exist_ok=True)
        self.segments = SegmentLog(
            directory,
            fsync=config.fsync,
            segment_max_bytes=config.segment_max_bytes,
        )

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def _append_envelope(self, kind: str, bid: BlockId, data) -> None:
        payload = encode_record({"kind": kind, "bid": bid, "data": data})
        self.segments.append(payload)
        index = self.segments.active_index
        if bid > self._segment_max_bid.get(index, -1):
            self._segment_max_bid[index] = bid

    def append_block(self, block: Block, receipt: PhaseOneReceipt) -> None:
        """Persist one formed block together with its Phase I receipt."""

        self._append_envelope(
            "block", block.block_id, {"block": block, "receipt": receipt}
        )
        self.stats["blocks_appended"] += 1

    def append_proof(self, proof: AnyBlockProof) -> None:
        """Persist one Phase II certification proof."""

        self._append_envelope("proof", proof.block_id, proof)
        self.stats["proofs_appended"] += 1

    # ------------------------------------------------------------------
    # Manifest / snapshot
    # ------------------------------------------------------------------
    def write_manifest(
        self,
        next_block_id: BlockId,
        level_pages: dict[int, list[Page]],
        level_zero_blocks: tuple[BlockId, ...],
        signed_root: Optional[SignedGlobalRoot],
        truncate_floor: Optional[BlockId] = None,
    ) -> None:
        """Atomically persist the index snapshot; optionally truncate the log.

        *truncate_floor* is the caller-computed lowest block id that must
        stay replayable (min over uncertified blocks, level-0 blocks, and
        the allocator watermark).  Sealed segments entirely below it are
        deleted — every block they held is certified and merged into the
        pages this manifest just made durable.
        """

        self._manifest_version += 1
        manifest = Manifest(
            version=self._manifest_version,
            next_block_id=next_block_id,
            level_zero_blocks=tuple(level_zero_blocks),
            levels={
                index: tuple(page.digest() for page in pages)
                for index, pages in level_pages.items()
            },
            signed_root=signed_root,
        )
        write_manifest(
            self.directory,
            manifest,
            [page for pages in level_pages.values() for page in pages],
        )
        self.stats["manifests_written"] += 1
        if truncate_floor is not None and self.config.truncate_on_snapshot:
            self.truncate_below(truncate_floor)

    def truncate_below(self, floor: BlockId) -> None:
        """Drop sealed segments whose every block id is below *floor*."""

        for index in self.segments.segment_indices():
            if index == self.segments.active_index:
                continue
            if self._segment_max_bid.get(index, floor) < floor:
                self.segments.drop_segment(index)
                self._segment_max_bid.pop(index, None)
                self.stats["segments_truncated"] += 1

    # ------------------------------------------------------------------
    # Recovery-side reads
    # ------------------------------------------------------------------
    def reopen(self) -> None:
        """Re-scan the directory after a (simulated) crash.

        Closes the old handles and revalidates segments from disk — sealed
        corruption raises here, torn active tails are repaired here.
        """

        self.segments.close()
        self._segment_max_bid.clear()
        self.segments = SegmentLog(
            self.directory,
            fsync=self.config.fsync,
            segment_max_bytes=self.config.segment_max_bytes,
        )

    def replay(self) -> StoreReplay:
        """Decode every durable segment record, rebuilding truncation state."""

        replay = StoreReplay(torn_records_dropped=self.segments.torn_records_dropped)
        for segment_index, payload in self.segments.replay():
            envelope = decode_record(payload)
            if not isinstance(envelope, dict) or "kind" not in envelope:
                raise StorageCorruptionError("segment record is not an envelope")
            bid = envelope["bid"]
            if bid > self._segment_max_bid.get(segment_index, -1):
                self._segment_max_bid[segment_index] = bid
            if envelope["kind"] == "block":
                replay.blocks.append(envelope["data"]["block"])
                replay.receipts[bid] = envelope["data"]["receipt"]
            elif envelope["kind"] == "proof":
                replay.proofs[bid] = envelope["data"]
            else:
                raise StorageCorruptionError(
                    f"segment record has unknown kind {envelope['kind']!r}"
                )
        return replay

    def load_manifest(self) -> Optional[Manifest]:
        manifest = load_manifest(self.directory)
        if manifest is not None and manifest.version > self._manifest_version:
            self._manifest_version = manifest.version
        return manifest

    def load_pages(self, manifest: Manifest) -> dict[int, list[Page]]:
        return load_pages(self.directory, manifest)

    # ------------------------------------------------------------------
    # Fault injection and lifecycle
    # ------------------------------------------------------------------
    def arm_fault(self, kind: str, count: int = 1) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown disk fault kind {kind!r}")
        self.segments.arm_fault(kind, count)

    def simulate_crash(self) -> None:
        """Model a process kill against the segment log (see segments.py)."""

        self.segments.simulate_crash()

    def retire(self) -> None:
        """Mark this incarnation done (shard handed off); then close.

        The marker makes the *next* open of this directory wipe it: the
        durable state now lives with the destination edge, and a future
        re-adoption of the shard must start from the transfer, not from
        stale local segments.
        """

        self.close()
        with open(os.path.join(self.directory, RETIRED_MARKER), "w") as handle:
            json.dump({"retired": True}, handle)

    def close(self) -> None:
        self.segments.close()

    def __deepcopy__(self, memo):
        # An OS-backed store cannot be duplicated by value (open file
        # handles, one directory).  Deep copies of a partition state —
        # e.g. the stale-owner malicious variant snapshotting a shard —
        # share the store reference instead.
        return self
