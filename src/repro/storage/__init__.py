"""Durable edge storage: segment log, LSMerkle manifest, crash recovery.

The paper's trust model names the state an edge must keep across restarts —
the certified log, the installed pages, the last signed root — and until
this package existed that survival was an in-memory fiction enforced by
``on_crash`` carefully not deleting attributes.  Here it is real: a
:class:`PartitionStore` persists exactly the non-volatile state to disk
(checksummed append-only segments for blocks/receipts/proofs; page files
plus an atomically-swapped manifest for the index), and
:func:`recover_partition` rebuilds a partition from nothing but that store,
verifying the result against the durable cloud-signed root — or
quarantining the partition when verification fails.

The backend is opt-in through
:class:`~repro.common.config.StorageConfig` (``backend="disk"``); the
default deployment stays purely in-memory and byte-identical to the paper
figures.
"""

from .codec import decode_record, encode_record
from .manifest import Manifest, load_manifest, write_manifest
from .recovery import RecoveryReport, recover_partition
from .segments import FAULT_KINDS, SegmentLog
from .store import PartitionStore, StoreReplay

__all__ = [
    "FAULT_KINDS",
    "Manifest",
    "PartitionStore",
    "RecoveryReport",
    "SegmentLog",
    "StoreReplay",
    "decode_record",
    "encode_record",
    "load_manifest",
    "recover_partition",
    "write_manifest",
]
