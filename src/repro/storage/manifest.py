"""LSMerkle page persistence: page files plus an atomically-swapped manifest.

The durable form of a partition's Merkle-tracked levels.  Pages are written
as content-addressed files (``pages/<digest>.json``) *before* the manifest
that references them; the manifest itself is swapped atomically
(write ``MANIFEST.tmp`` → flush → fsync → ``os.replace``), so the rename is
the commit point.  A crash anywhere in the sequence leaves either the old
manifest referencing the old (still present) pages, or the new manifest
referencing the new pages — never a hybrid level set.  Orphan page files
(referenced by neither) are garbage-collected after a successful swap.

The manifest records everything recovery needs beyond the segment log:

* ``levels`` — the page-digest list of every Merkle-tracked level (1..n-1);
* ``level_zero_blocks`` — which block ids still had level-0 pages when the
  manifest was written (blocks below ``next_block_id`` and absent from this
  list were merged into the levels and need no replayed page);
* ``next_block_id`` — the log's allocator watermark, so a recovered edge
  never re-issues a block id the cloud may already have certified;
* ``signed_root`` — the last cloud-signed global root, the anchor recovery
  verifies the rebuilt index against.

Integrity: the manifest carries a CRC32 over its canonical JSON (sans the
checksum field), and every page file must hash back to the digest that names
it.  Either failing is :class:`~repro.common.errors.StorageCorruptionError`.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Optional

from ..common.errors import StorageCorruptionError
from ..lsm.page import Page
from ..lsmerkle.mlsm import SignedGlobalRoot
from .codec import decode_record, encode_record

MANIFEST_NAME = "MANIFEST.json"
PAGES_DIR = "pages"


@dataclass(frozen=True)
class Manifest:
    """One durable snapshot of a partition's index state."""

    version: int
    next_block_id: int
    level_zero_blocks: tuple[int, ...]
    #: Page digests per Merkle-tracked level, keyed by level index (1..n-1).
    levels: dict[int, tuple[str, ...]] = field(default_factory=dict)
    signed_root: Optional[SignedGlobalRoot] = None

    def referenced_digests(self) -> set[str]:
        return {digest for digests in self.levels.values() for digest in digests}


def _manifest_tree(manifest: Manifest) -> dict:
    return {
        "schema": 1,
        "version": manifest.version,
        "next_block_id": manifest.next_block_id,
        "level_zero_blocks": list(manifest.level_zero_blocks),
        "levels": {
            str(index): list(digests)
            for index, digests in sorted(manifest.levels.items())
        },
        "signed_root": None
        if manifest.signed_root is None
        else json.loads(encode_record(manifest.signed_root)),
    }


def _tree_bytes(tree: dict) -> bytes:
    return json.dumps(tree, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _page_path(directory: str, digest: str) -> str:
    return os.path.join(directory, PAGES_DIR, f"{digest}.json")


def write_pages(directory: str, pages: list[Page]) -> None:
    """Write any page files not already present (content-addressed)."""

    pages_dir = os.path.join(directory, PAGES_DIR)
    os.makedirs(pages_dir, exist_ok=True)
    for page in pages:
        path = _page_path(directory, page.digest())
        if os.path.exists(path):
            continue
        with open(path, "wb") as handle:
            handle.write(encode_record(page))
            handle.flush()
            os.fsync(handle.fileno())


def write_manifest(directory: str, manifest: Manifest, pages: list[Page]) -> None:
    """Persist *manifest* atomically; *pages* are its full referenced set.

    Page files land first, then the manifest swap commits them; page files
    no longer referenced are deleted afterwards.
    """

    write_pages(directory, pages)
    tree = _manifest_tree(manifest)
    body = _tree_bytes(tree)
    tree["crc"] = zlib.crc32(body)
    tmp_path = os.path.join(directory, MANIFEST_NAME + ".tmp")
    with open(tmp_path, "wb") as handle:
        handle.write(_tree_bytes(tree))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, os.path.join(directory, MANIFEST_NAME))
    _collect_orphan_pages(directory, manifest.referenced_digests())


def _collect_orphan_pages(directory: str, referenced: set[str]) -> None:
    pages_dir = os.path.join(directory, PAGES_DIR)
    if not os.path.isdir(pages_dir):
        return
    for name in os.listdir(pages_dir):
        if name.endswith(".json") and name[:-5] not in referenced:
            os.unlink(os.path.join(pages_dir, name))


def load_manifest(directory: str) -> Optional[Manifest]:
    """Load and checksum-verify the manifest; ``None`` if none was written."""

    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        raw = handle.read()
    try:
        tree = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageCorruptionError(f"manifest is not valid JSON: {exc}") from exc
    if not isinstance(tree, dict) or "crc" not in tree:
        raise StorageCorruptionError("manifest carries no checksum")
    stored_crc = tree.pop("crc")
    if zlib.crc32(_tree_bytes(tree)) != stored_crc:
        raise StorageCorruptionError("manifest checksum mismatch")
    signed_root = tree.get("signed_root")
    if signed_root is not None:
        signed_root = decode_record(_tree_bytes(signed_root))
        if not isinstance(signed_root, SignedGlobalRoot):
            raise StorageCorruptionError("manifest signed_root has wrong type")
    return Manifest(
        version=tree["version"],
        next_block_id=tree["next_block_id"],
        level_zero_blocks=tuple(tree["level_zero_blocks"]),
        levels={
            int(index): tuple(digests)
            for index, digests in tree.get("levels", {}).items()
        },
        signed_root=signed_root,
    )


def load_pages(directory: str, manifest: Manifest) -> dict[int, list[Page]]:
    """Load every page the manifest references, verifying each digest.

    A missing page file, an undecodable one, or one whose recomputed digest
    differs from the name the manifest references is corruption.
    """

    loaded: dict[int, list[Page]] = {}
    for level_index, digests in manifest.levels.items():
        pages: list[Page] = []
        for digest in digests:
            path = _page_path(directory, digest)
            if not os.path.exists(path):
                raise StorageCorruptionError(
                    f"manifest references missing page {digest[:12]}…"
                )
            with open(path, "rb") as handle:
                page = decode_record(handle.read())
            if not isinstance(page, Page) or page.digest() != digest:
                raise StorageCorruptionError(
                    f"page file {digest[:12]}… does not hash to its name"
                )
            pages.append(page)
        loaded[level_index] = pages
    return loaded
