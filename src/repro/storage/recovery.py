"""Crash recovery: rebuild a partition from its durable store, verified.

``recover_partition`` replays a :class:`~repro.storage.store.PartitionStore`
into a *fresh* partition state — nothing the pre-crash process held in
memory is trusted — and then proves the rebuild correct: the recovered
index's Merkle-tracked level roots must equal the ``level_roots`` of the
last durable cloud-signed global root, and that signed root must itself
verify against the cloud's key.  An edge that passes resumes exactly where
the trust model says it should: certified blocks certified, uncertified
blocks re-tracked for certification, replay protection intact.

An edge that fails — a sealed segment with a bad checksum, a manifest that
does not hash, a page that does not match its digest, a proof that
contradicts its block, roots that disagree with the signature — is
**quarantined**: the partition refuses every request rather than serve data
it can no longer prove.  Crucially, quarantine is a *local, typed* outcome
(:class:`~repro.common.errors.StorageCorruptionError` recorded on the
partition), never a protocol action: an honest edge with a corrupt disk
stops serving, so the dispute machinery has nothing to convict it for.

Torn tails are the one kind of damage that is *not* corruption: the active
segment legitimately ends mid-record when a crash interrupts an append.
Replay truncates the debris and counts it.  With ``fsync="always"`` nothing
acknowledged is ever in the debris; with the cheaper policies, writes since
the last sync may be lost — the report says how many records were dropped
so operators can see the durability they paid for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import (
    ProtocolError,
    StorageCorruptionError,
    StorageError,
)
from ..common.identifiers import NodeId, ShardId
from ..crypto.signatures import KeyRegistry
from ..lsmerkle.codec import page_from_block
from .store import PartitionStore


@dataclass
class RecoveryReport:
    """What one partition recovery replayed, verified, or refused."""

    shard_id: Optional[ShardId] = None
    blocks_replayed: int = 0
    proofs_replayed: int = 0
    torn_records_dropped: int = 0
    manifest_version: Optional[int] = None
    root_version: Optional[int] = None
    #: ``True`` when a durable signed root existed and the rebuilt index
    #: matched it (a partition that never merged has no root to verify).
    root_verified: bool = False
    #: ``None`` for a healthy recovery; the corruption reason otherwise.
    quarantined: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.quarantined is None


def recover_partition(
    state,
    store: PartitionStore,
    registry: KeyRegistry,
    cloud: NodeId,
) -> RecoveryReport:
    """Rebuild *state* (a fresh ``PartitionState``) from *store*.

    On corruption the partition is marked quarantined (``state.quarantined``
    holds the reason) and the report says why; the caller must refuse to
    serve it.  The function never raises for disk damage — quarantine *is*
    the handling.
    """

    report = RecoveryReport(shard_id=state.shard_id)
    try:
        _rebuild(state, store, registry, cloud, report)
    except (StorageError, ProtocolError) as exc:
        reason = f"{type(exc).__name__}: {exc}"
        state.quarantined = reason
        report.quarantined = reason
    return report


def _rebuild(
    state,
    store: PartitionStore,
    registry: KeyRegistry,
    cloud: NodeId,
    report: RecoveryReport,
) -> None:
    # Re-scan the directory: sealed corruption surfaces here, torn active
    # tails are repaired here.
    store.reopen()

    manifest = store.load_manifest()
    manifest_next = 0
    manifest_l0: frozenset = frozenset()
    if manifest is not None:
        report.manifest_version = manifest.version
        manifest_next = manifest.next_block_id
        manifest_l0 = frozenset(manifest.level_zero_blocks)
        for level_index, pages in sorted(store.load_pages(manifest).items()):
            state.index.install_level_pages(level_index, pages)

    replay = store.replay()
    report.torn_records_dropped = replay.torn_records_dropped
    for block in replay.blocks:
        state.log.append(block)
        receipt = replay.receipts.get(block.block_id)
        if receipt is not None:
            state.receipts[block.block_id] = receipt
        for entry in block.entries:
            state.entry_locations[(entry.producer, entry.sequence)] = block.block_id
    report.blocks_replayed = len(replay.blocks)

    for block_id in sorted(replay.proofs):
        if state.log.try_get(block_id) is None:
            # The proof's block was snapshot-truncated (merged into manifest
            # pages); the proof record simply outlived it in a later segment.
            continue
        # attach_proof re-checks the digest: a durable proof contradicting
        # its durable block is corruption (raises, -> quarantine).
        state.log.attach_proof(replay.proofs[block_id])
        report.proofs_replayed += 1

    # The allocator must clear both everything replayed and everything the
    # manifest says once existed, or a recovered edge could re-issue a block
    # id the cloud already certified under different content.
    state.log.mark_truncated(manifest_next)

    # Level 0 holds the pages of blocks not yet merged into the manifest's
    # levels: the ids the manifest recorded as level 0, plus every block
    # logged after the manifest was written.
    for block in replay.blocks:
        bid = block.block_id
        if bid in manifest_l0 or bid >= manifest_next:
            page = page_from_block(block)
            if page is not None:
                state.index.add_level_zero_page(page)
                state.level_zero_blocks.append(bid)

    signed_root = manifest.signed_root if manifest is not None else None
    if signed_root is not None:
        if not signed_root.verify(registry, cloud):
            raise StorageCorruptionError(
                "durable signed root fails signature verification"
            )
        if not state.index.roots_match(signed_root):
            raise StorageCorruptionError(
                "recovered level roots do not match the durable signed root"
            )
        state.signed_root = signed_root
        state.merge_installed_version = signed_root.statement.version
        report.root_version = signed_root.statement.version
        report.root_verified = True

    # Uncertified blocks go back under the certifier; the restart's overdue
    # scan re-requests them all at timeout zero.
    for block in replay.blocks:
        if state.log.proof_for(block.block_id) is None:
            state.certifier.track(block.block_id, block.digest(), block.created_at)
