"""Workload generation and closed-/open-loop drivers for the evaluation."""

from .arrivals import (
    ArrivalProcess,
    MAPArrivalProcess,
    PoissonArrivalProcess,
    TraceArrivalProcess,
)
from .driver import ClientProgress, ClosedLoopDriver, DriverResult
from .generator import (
    KeySpace,
    KeyValueWorkload,
    Operation,
    ReadOp,
    WriteOp,
    format_key,
)
from .openloop import (
    OpenLoopResult,
    OpenLoopSpec,
    ResponseRecorder,
    ScheduledRequest,
    SimOpenLoopDriver,
    build_request_schedule,
    run_open_loop,
)

__all__ = [
    "ArrivalProcess",
    "ClientProgress",
    "ClosedLoopDriver",
    "DriverResult",
    "KeySpace",
    "KeyValueWorkload",
    "MAPArrivalProcess",
    "OpenLoopResult",
    "OpenLoopSpec",
    "Operation",
    "PoissonArrivalProcess",
    "ReadOp",
    "ResponseRecorder",
    "ScheduledRequest",
    "SimOpenLoopDriver",
    "TraceArrivalProcess",
    "WriteOp",
    "build_request_schedule",
    "format_key",
    "run_open_loop",
]
