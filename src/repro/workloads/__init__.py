"""Workload generation and closed-loop drivers for the evaluation."""

from .driver import ClientProgress, ClosedLoopDriver, DriverResult
from .generator import (
    KeySpace,
    KeyValueWorkload,
    Operation,
    ReadOp,
    WriteOp,
    format_key,
)

__all__ = [
    "ClientProgress",
    "ClosedLoopDriver",
    "DriverResult",
    "KeySpace",
    "KeyValueWorkload",
    "Operation",
    "ReadOp",
    "WriteOp",
    "format_key",
]
