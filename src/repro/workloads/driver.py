"""Closed-loop workload driver.

The paper's throughput experiments use closed-loop clients: each client has
one outstanding request at a time, issues the next one as soon as the current
one commits (Phase I for WedgeChain; the single synchronous commit for the
baselines), buffers writes into batches, and sends reads interactively.  The
driver reproduces that behaviour on top of any of the three systems — they
all expose clients with ``put_batch``/``get`` and a :class:`CommitTracker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..common.config import WorkloadConfig
from ..common.identifiers import OperationId
from ..log.proofs import CommitPhase
from .generator import KeyValueWorkload, ReadOp, WriteOp


@dataclass
class ClientProgress:
    """Per-client driver state."""

    workload: KeyValueWorkload
    operations_left: int
    write_buffer: list[tuple[str, bytes]] = field(default_factory=list)
    #: Operation ids of the in-flight logical request.  One element for the
    #: single-edge client; a shard-aware client's batch may fan out into
    #: one append per owning edge, and the next request is issued when the
    #: last of them completes.
    outstanding: set[OperationId] = field(default_factory=set)
    operations_completed: int = 0
    requests_sent: int = 0
    finished: bool = False
    #: Number of logical operations carried by each in-flight operation.
    in_flight_ops: dict[OperationId, int] = field(default_factory=dict)


@dataclass
class DriverResult:
    """Aggregate outcome of a driver run."""

    operations_completed: int
    requests_sent: int
    started_at: float
    finished_at: float
    all_finished: bool

    @property
    def duration_s(self) -> float:
        return max(self.finished_at - self.started_at, 1e-9)

    @property
    def throughput_ops_per_s(self) -> float:
        return self.operations_completed / self.duration_s


class ClosedLoopDriver:
    """Drives closed-loop clients against a system until quotas are met."""

    def __init__(
        self,
        system,
        workload_config: WorkloadConfig,
        clients: Optional[Sequence] = None,
        commit_phase: CommitPhase = CommitPhase.PHASE_ONE,
    ) -> None:
        self.system = system
        self.env = system.env
        self.workload_config = workload_config
        self.commit_phase = commit_phase
        self.clients = list(clients) if clients is not None else list(system.clients)
        self._progress: dict[int, ClientProgress] = {}
        self._started_at: Optional[float] = None
        self._last_completion_at: float = 0.0

    # ------------------------------------------------------------------
    # Setup and start
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install completion hooks and issue the first request of each client."""

        self._started_at = self.env.now()
        self._last_completion_at = self._started_at
        for index, client in enumerate(self.clients):
            progress = ClientProgress(
                workload=KeyValueWorkload(self.workload_config, client_index=index),
                operations_left=self.workload_config.operations_per_client,
            )
            self._progress[index] = progress
            client.tracker.on_phase_change = self._make_hook(index)
            self._issue_next(index)

    def _make_hook(self, index: int):
        def hook(record, phase: CommitPhase) -> None:
            self._on_phase_change(index, record, phase)

        return hook

    # ------------------------------------------------------------------
    # Closed-loop issue logic
    # ------------------------------------------------------------------
    def _issue_batch(self, progress: ClientProgress, client, items) -> None:
        """Send one logical write batch (possibly fanning out per shard)."""

        result = client.put_batch(items)
        if isinstance(result, tuple):
            # Shard-aware clients return one operation per owning edge.
            progress.outstanding = set(result)
            progress.in_flight_ops = {
                operation_id: client.tracker.get(operation_id).details.get(
                    "num_entries", 0
                )
                for operation_id in result
            }
            progress.requests_sent += len(result)
        else:
            progress.outstanding = {result}
            progress.in_flight_ops = {result: len(items)}
            progress.requests_sent += 1

    def _issue_next(self, index: int) -> None:
        progress = self._progress[index]
        client = self.clients[index]
        batch_size = self.workload_config.batch_size

        while True:
            if progress.operations_left <= 0 and not progress.write_buffer:
                progress.finished = True
                return
            if progress.operations_left <= 0:
                # Flush the remaining buffered writes as a final short batch.
                items = progress.write_buffer
                progress.write_buffer = []
                self._issue_batch(progress, client, items)
                return

            operation = progress.workload.next_operation()
            progress.operations_left -= 1
            if isinstance(operation, WriteOp):
                progress.write_buffer.append((operation.key, operation.value))
                if len(progress.write_buffer) >= batch_size:
                    items = progress.write_buffer
                    progress.write_buffer = []
                    self._issue_batch(progress, client, items)
                    return
                # Buffered write: keep generating until a request goes out.
                continue
            if isinstance(operation, ReadOp):
                operation_id = client.get(operation.key)
                progress.outstanding = {operation_id}
                progress.in_flight_ops = {operation_id: 1}
                progress.requests_sent += 1
                return

    def _on_phase_change(self, index: int, record, phase: CommitPhase) -> None:
        progress = self._progress[index]
        if record.operation_id not in progress.outstanding:
            return
        committed = phase in (CommitPhase.PHASE_ONE, CommitPhase.PHASE_TWO)
        if phase is CommitPhase.FAILED:
            committed = True  # count it as done so the loop does not stall
        if not committed:
            return
        if phase is not CommitPhase.FAILED:
            progress.operations_completed += progress.in_flight_ops.get(
                record.operation_id, 0
            )
        progress.outstanding.discard(record.operation_id)
        progress.in_flight_ops.pop(record.operation_id, None)
        self._last_completion_at = self.env.now()
        if not progress.outstanding:
            self._issue_next(index)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def all_finished(self) -> bool:
        return all(progress.finished for progress in self._progress.values())

    def run(self, max_time_s: float = 600.0) -> DriverResult:
        """Start (if needed) and run the simulation until all clients finish."""

        if self._started_at is None:
            self.start()
        self.env.run_until_condition(
            self.all_finished, self.env.now() + max_time_s
        )
        operations = sum(
            progress.operations_completed for progress in self._progress.values()
        )
        requests = sum(progress.requests_sent for progress in self._progress.values())
        return DriverResult(
            operations_completed=operations,
            requests_sent=requests,
            started_at=self._started_at,
            finished_at=self._last_completion_at,
            all_finished=self.all_finished(),
        )
