"""Open-loop load generation with per-request response-time percentiles.

The open-loop driver fixes every request's arrival time *before* the run
(a seeded arrival process — see :mod:`repro.workloads.arrivals`) and then
measures how long each request takes to reach its target commit phase.
Unlike the closed-loop driver, a slow system cannot slow the offered load,
so queueing delay shows up where it belongs: in the tail percentiles.

The schedule is materialised up front by :func:`build_request_schedule`,
deterministically from the workload seed.  That one schedule can be offered
to either substrate:

* :class:`SimOpenLoopDriver` replays it on the discrete-event simulator
  (arrivals become scheduler events);
* :func:`run_open_loop` replays it against a live
  :class:`~repro.service.harness.LiveFleet` (arrivals become real sleeps).

Response times are recorded in an :class:`~repro.obs.metrics.Histogram`,
whose ``percentile`` is exact nearest-rank over every observation — the
p999 of 1 000 requests is a real observed response time, not an
interpolation artifact.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..common.config import WorkloadConfig
from ..common.errors import ConfigurationError
from ..common.identifiers import OperationId
from ..log.proofs import CommitPhase
from .arrivals import ArrivalProcess, PoissonArrivalProcess
from .generator import KeyValueWorkload, ReadOp

#: The percentiles every report carries, as (label, fraction) pairs.
REPORT_PERCENTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
    ("p999", 0.999),
)

_PHASE_RANK = {
    CommitPhase.PENDING: 0,
    CommitPhase.FAILED: 0,
    CommitPhase.PHASE_ONE: 1,
    CommitPhase.PHASE_TWO: 2,
}


@dataclass(frozen=True)
class ScheduledRequest:
    """One pre-planned request: when, who, and what to issue."""

    at: float
    client_index: int
    kind: str  # "put" | "get"
    items: tuple[tuple[str, bytes], ...] = ()
    key: str = ""


@dataclass(frozen=True)
class OpenLoopSpec:
    """What to offer: workload shape, request count, and arrival law."""

    workload: WorkloadConfig
    num_requests: int
    #: Mean request rate for the default Poisson process (requests/second);
    #: ignored when an explicit ``arrivals`` process is supplied.
    rate: float = 50.0
    arrivals: Optional[ArrivalProcess] = None
    commit_phase: CommitPhase = CommitPhase.PHASE_ONE

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ConfigurationError("num_requests must be positive")
        if self.arrivals is None and self.rate <= 0:
            raise ConfigurationError("rate must be positive")

    def arrival_process(self) -> ArrivalProcess:
        if self.arrivals is not None:
            return self.arrivals
        return PoissonArrivalProcess(rate=self.rate, seed=self.workload.seed)


def build_request_schedule(
    spec: OpenLoopSpec, num_clients: int = 1
) -> tuple[ScheduledRequest, ...]:
    """Materialise the full arrival schedule, deterministically from the seed.

    Requests round-robin over *num_clients*; each client draws from its own
    forked workload stream (same forking as the closed-loop driver), so the
    schedule for a given ``(spec, num_clients)`` is identical on every
    substrate and every run.
    """

    if num_clients <= 0:
        raise ConfigurationError("num_clients must be positive")
    arrivals = spec.arrival_process()
    workloads = [
        KeyValueWorkload(spec.workload, client_index=index)
        for index in range(num_clients)
    ]
    schedule: list[ScheduledRequest] = []
    at = 0.0
    for sequence in range(spec.num_requests):
        try:
            at += arrivals.next_interarrival()
        except StopIteration:
            break  # finite trace: the run ends at the trace's length
        client_index = sequence % num_clients
        workload = workloads[client_index]
        operation = workload.next_operation()
        if isinstance(operation, ReadOp):
            schedule.append(
                ScheduledRequest(
                    at=at, client_index=client_index, kind="get", key=operation.key
                )
            )
            continue
        items = [(operation.key, operation.value)]
        while len(items) < spec.workload.batch_size:
            items.append((workload.next_key(), workload.next_value()))
        schedule.append(
            ScheduledRequest(
                at=at, client_index=client_index, kind="put", items=tuple(items)
            )
        )
    return tuple(schedule)


class ResponseRecorder:
    """Per-request response times with exact nearest-rank percentiles."""

    def __init__(self) -> None:
        # Deferred so the default sim deployment never imports ``repro.obs``
        # (the obs-off stance pinned in tests/test_observability.py); the
        # recorder only exists once an open-loop run is actually requested.
        from ..obs.metrics import Histogram

        self.histogram = Histogram()
        self.failed = 0

    def observe(self, response_s: float) -> None:
        self.histogram.observe(response_s)

    @property
    def completed(self) -> int:
        return self.histogram.count

    def percentiles(self) -> dict[str, float]:
        return {
            label: self.histogram.percentile(fraction)
            for label, fraction in REPORT_PERCENTILES
        }


@dataclass
class OpenLoopResult:
    """Aggregate outcome of one open-loop run."""

    offered: int
    completed: int
    failed: int
    duration_s: float
    percentiles_s: dict[str, float]
    recorder: ResponseRecorder = field(repr=False)

    @property
    def throughput_rps(self) -> float:
        return self.completed / max(self.duration_s, 1e-9)

    def report_lines(self) -> list[str]:
        lines = [
            f"offered={self.offered} completed={self.completed} "
            f"failed={self.failed} duration={self.duration_s:.3f}s "
            f"throughput={self.throughput_rps:.1f} req/s",
        ]
        for label, _ in REPORT_PERCENTILES:
            lines.append(f"{label}={self.percentiles_s[label] * 1000.0:.3f} ms")
        return lines


class _CompletionTracker:
    """Shared bookkeeping: in-flight request ids and their send times."""

    def __init__(self, spec: OpenLoopSpec, recorder: ResponseRecorder) -> None:
        self.spec = spec
        self.recorder = recorder
        self.target_rank = _PHASE_RANK[spec.commit_phase]
        self.sent_at: dict[OperationId, float] = {}
        self.issued = 0
        self.settled = 0

    def register(self, result, sent_at: float) -> None:
        operation_ids = result if isinstance(result, tuple) else (result,)
        self.issued += 1
        for operation_id in operation_ids:
            self.sent_at[operation_id] = sent_at

    def make_hook(self, now):
        def hook(record, phase: CommitPhase) -> None:
            sent = self.sent_at.get(record.operation_id)
            if sent is None:
                return
            if phase is CommitPhase.FAILED:
                del self.sent_at[record.operation_id]
                self.recorder.failed += 1
                self.settled += 1
                return
            if _PHASE_RANK[phase] < self.target_rank:
                return
            del self.sent_at[record.operation_id]
            self.recorder.observe(now() - sent)
            self.settled += 1

        return hook

    def all_settled(self, offered: int) -> bool:
        return self.issued >= offered and not self.sent_at


class SimOpenLoopDriver:
    """Replay an open-loop schedule on the discrete-event simulator."""

    def __init__(
        self,
        system,
        spec: OpenLoopSpec,
        clients: Optional[Sequence] = None,
    ) -> None:
        self.system = system
        self.env = system.env
        self.spec = spec
        self.clients = list(clients) if clients is not None else list(system.clients)
        self.recorder = ResponseRecorder()
        self._tracker = _CompletionTracker(spec, self.recorder)
        self._schedule = build_request_schedule(spec, num_clients=len(self.clients))

    @property
    def schedule(self) -> tuple[ScheduledRequest, ...]:
        return self._schedule

    def run(self, max_time_s: float = 600.0) -> OpenLoopResult:
        start = self.env.now()
        for client in self.clients:
            client.tracker.on_phase_change = self._tracker.make_hook(self.env.now)
        for request in self._schedule:
            self.env.schedule(
                request.at, self._make_issue(request), label="openloop-arrival"
            )
        self.env.run_until_condition(
            lambda: self._tracker.all_settled(len(self._schedule)),
            start + max_time_s,
        )
        return OpenLoopResult(
            offered=len(self._schedule),
            completed=self.recorder.completed,
            failed=self.recorder.failed,
            duration_s=self.env.now() - start,
            percentiles_s=self.recorder.percentiles(),
            recorder=self.recorder,
        )

    def _make_issue(self, request: ScheduledRequest):
        def issue() -> None:
            client = self.clients[request.client_index]
            sent_at = self.env.now()
            if request.kind == "put":
                result = client.put_batch(list(request.items))
            else:
                result = client.get(request.key)
            self._tracker.register(result, sent_at)

        return issue


async def run_open_loop(
    fleet,
    spec: OpenLoopSpec,
    clients: Optional[Sequence] = None,
    drain_timeout_s: float = 30.0,
) -> OpenLoopResult:
    """Offer an open-loop schedule to a live fleet, on real time.

    Arrival gaps become real sleeps; the run ends when every issued request
    settles (or *drain_timeout_s* after the last arrival, whichever comes
    first — laggards are counted as failed so a stalled fleet cannot hang
    the caller).
    """

    chosen = list(clients) if clients is not None else list(fleet.clients)
    recorder = ResponseRecorder()
    tracker = _CompletionTracker(spec, recorder)
    schedule = build_request_schedule(spec, num_clients=len(chosen))
    now = fleet.env.now
    for client in chosen:
        client.tracker.on_phase_change = tracker.make_hook(now)

    loop = asyncio.get_running_loop()
    start_wall = loop.time()
    start = now()
    for request in schedule:
        delay = (start_wall + request.at) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        client = chosen[request.client_index]
        sent_at = now()
        if request.kind == "put":
            result = client.put_batch(list(request.items))
        else:
            result = client.get(request.key)
        tracker.register(result, sent_at)

    await fleet.await_condition(
        lambda: tracker.all_settled(len(schedule)), timeout_s=drain_timeout_s
    )
    unsettled = len(tracker.sent_at)
    if unsettled:
        recorder.failed += unsettled
        tracker.sent_at.clear()
    return OpenLoopResult(
        offered=len(schedule),
        completed=recorder.completed,
        failed=recorder.failed,
        duration_s=now() - start,
        percentiles_s=recorder.percentiles(),
        recorder=recorder,
    )
