"""Seeded arrival processes for open-loop load generation.

Closed-loop clients (the paper's throughput experiments) can never observe
queueing collapse: a slow system slows its own offered load.  Open-loop
load fixes the arrival times in advance and measures how response times
stretch — which is where tail percentiles (p99/p999) become meaningful.

The three processes mirror the ``arrivals`` module of
``grussorusso/faas-offloading-sim`` (SNIPPETS.md §1): Poisson for
memoryless load, traces for replaying recorded inter-arrival gaps, and a
Markovian arrival process (MAP) for bursty load with correlated gaps.  All
draw exclusively from :class:`~repro.sim.rng.DeterministicRng`, so a seed
fixes the entire arrival schedule — the property the transport-equivalence
suite relies on to offer the *same* load to the simulator and the live
fleet.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol, Sequence

from ..common.errors import ConfigurationError
from ..sim.rng import DeterministicRng


class ArrivalProcess(Protocol):
    """Anything that can produce the next inter-arrival gap in seconds."""

    def next_interarrival(self) -> float:
        """Seconds until the next arrival (>= 0)."""


def _exponential(rng: DeterministicRng, rate: float) -> float:
    # Inverse-CDF sampling; random() is in [0, 1) so the log argument
    # stays in (0, 1] and the draw is finite.
    return -math.log(1.0 - rng.random()) / rate


class PoissonArrivalProcess:
    """Memoryless arrivals at a fixed mean *rate* (requests/second)."""

    def __init__(self, rate: float, rng: Optional[DeterministicRng] = None, seed: int = 7) -> None:
        if rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.rate = float(rate)
        self._rng = (rng if rng is not None else DeterministicRng(seed)).fork("poisson")

    def next_interarrival(self) -> float:
        return _exponential(self._rng, self.rate)


class TraceArrivalProcess:
    """Replays a recorded sequence of inter-arrival gaps.

    With ``cycle=True`` the trace wraps around when exhausted; otherwise a
    drained trace raises ``StopIteration`` so callers can end the run at
    the trace's natural length.
    """

    def __init__(self, interarrivals: Sequence[float], cycle: bool = False) -> None:
        gaps = tuple(float(gap) for gap in interarrivals)
        if not gaps:
            raise ConfigurationError("trace must contain at least one gap")
        if any(gap < 0 for gap in gaps):
            raise ConfigurationError("trace gaps must be non-negative")
        self._gaps = gaps
        self._cycle = cycle
        self._index = 0

    def next_interarrival(self) -> float:
        if self._index >= len(self._gaps):
            if not self._cycle:
                raise StopIteration("arrival trace exhausted")
            self._index = 0
        gap = self._gaps[self._index]
        self._index += 1
        return gap


class MAPArrivalProcess:
    """A Markov-modulated Poisson process: bursty, correlated arrivals.

    The process sits in one of several states, each with its own arrival
    rate; after every arrival it transitions according to a row-stochastic
    matrix.  Two states — a slow one and a fast one with sticky self-loops
    — already produce the burst trains that separate p99 from the mean.
    """

    def __init__(
        self,
        rates: Sequence[float],
        transitions: Sequence[Sequence[float]],
        rng: Optional[DeterministicRng] = None,
        seed: int = 7,
        initial_state: int = 0,
    ) -> None:
        self.rates = tuple(float(rate) for rate in rates)
        if not self.rates or any(rate <= 0 for rate in self.rates):
            raise ConfigurationError("MAP rates must be positive")
        self.transitions = tuple(tuple(float(p) for p in row) for row in transitions)
        if len(self.transitions) != len(self.rates) or any(
            len(row) != len(self.rates) for row in self.transitions
        ):
            raise ConfigurationError("MAP transition matrix must be square over states")
        for row in self.transitions:
            if any(p < 0 for p in row) or abs(sum(row) - 1.0) > 1e-9:
                raise ConfigurationError("MAP transition rows must sum to 1")
        if not 0 <= initial_state < len(self.rates):
            raise ConfigurationError("MAP initial state out of range")
        self._state = initial_state
        self._rng = (rng if rng is not None else DeterministicRng(seed)).fork("map")

    @property
    def state(self) -> int:
        return self._state

    def next_interarrival(self) -> float:
        gap = _exponential(self._rng, self.rates[self._state])
        draw = self._rng.random()
        cumulative = 0.0
        row = self.transitions[self._state]
        for state, probability in enumerate(row):
            cumulative += probability
            if draw < cumulative:
                self._state = state
                break
        else:
            self._state = len(row) - 1
        return gap
