"""Workload generation: keys, values, and operation mixes.

The paper's evaluation uses synthetic key-value workloads: batches of 100
put operations with 100-byte values over a partition of 100,000 keys, with
mixes of interactive reads and buffered writes (Section VI).  This module
produces those workloads deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..common.config import WorkloadConfig
from ..common.errors import ConfigurationError
from ..sim.rng import DeterministicRng


def format_key(index: int) -> str:
    """Render a key index as the fixed-width string keys used everywhere."""

    return f"key{index:012d}"


#: Odd multiplier (2^32 / golden ratio) seeding the rank-shuffle stride.
_RANK_SHUFFLE_SEED = 0x9E3779B1


def _coprime_stride(size: int) -> int:
    """Smallest stride at or above the golden-ratio seed coprime to *size*."""

    from math import gcd

    stride = (_RANK_SHUFFLE_SEED % size) or 1
    while gcd(stride, size) != 1:
        stride += 1
    return stride


class KeySpace:
    """A bounded, deterministically sampled key population."""

    def __init__(
        self,
        size: int,
        distribution: str = "uniform",
        zipf_theta: float = 0.99,
        rank_shuffle: bool = False,
    ):
        if size <= 0:
            raise ConfigurationError("key space size must be positive")
        if distribution not in ("uniform", "zipfian"):
            raise ConfigurationError(f"unknown key distribution {distribution!r}")
        self.size = size
        self.distribution = distribution
        self.zipf_theta = zipf_theta
        #: Spread Zipfian popularity ranks over the whole key space via a
        #: fixed affine permutation (rank → (rank * stride) mod size).
        #: Without it the hottest keys are the lowest indices, which under
        #: range partitioning all land in shard 0.
        self.rank_shuffle = rank_shuffle
        self._stride = _coprime_stride(size) if rank_shuffle else 1

    def permute_rank(self, rank: int) -> int:
        """Deterministic position of a popularity rank in the key space."""

        if not self.rank_shuffle:
            return rank
        return (rank * self._stride) % self.size

    def sample(self, rng: DeterministicRng) -> str:
        if self.distribution == "uniform":
            index = rng.randint(0, self.size - 1)
        else:
            index = self.permute_rank(rng.zipf_index(self.size, self.zipf_theta))
        return format_key(index)

    def sequential(self, start: int = 0) -> Iterator[str]:
        """Yield keys in index order, wrapping around the key space."""

        index = start
        while True:
            yield format_key(index % self.size)
            index += 1


@dataclass(frozen=True)
class WriteOp:
    """A single key-value put destined for a client-side batch."""

    key: str
    value: bytes


@dataclass(frozen=True)
class ReadOp:
    """A single interactive get."""

    key: str


Operation = WriteOp | ReadOp


class KeyValueWorkload:
    """Generates the operation stream one simulated client will issue."""

    def __init__(
        self,
        config: WorkloadConfig,
        client_index: int = 0,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.config = config
        self.client_index = client_index
        base_rng = rng if rng is not None else DeterministicRng(config.seed)
        self._rng = base_rng.fork(f"client-{client_index}")
        self._keyspace = KeySpace(
            size=config.key_space,
            distribution=config.key_distribution,
            zipf_theta=config.zipf_theta,
            rank_shuffle=getattr(config, "zipf_rank_shuffle", False),
        )
        self._value_counter = 0

    @property
    def keyspace(self) -> KeySpace:
        return self._keyspace

    # ------------------------------------------------------------------
    # Primitive draws
    # ------------------------------------------------------------------
    def next_key(self) -> str:
        return self._keyspace.sample(self._rng)

    def next_value(self) -> bytes:
        """A value of the configured size, unique per call (versioned data)."""

        self._value_counter += 1
        stamp = f"c{self.client_index}v{self._value_counter}".encode("ascii")
        padding = max(self.config.value_size - len(stamp), 0)
        return stamp + bytes(padding)

    def next_operation(self) -> Operation:
        if self._rng.random() < self.config.read_fraction:
            return ReadOp(key=self.next_key())
        return WriteOp(key=self.next_key(), value=self.next_value())

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def operations(self, count: Optional[int] = None) -> Iterator[Operation]:
        """Yield *count* operations (default: ``operations_per_client``)."""

        total = count if count is not None else self.config.operations_per_client
        for _ in range(total):
            yield self.next_operation()

    def write_batch(self, size: Optional[int] = None) -> list[tuple[str, bytes]]:
        """A ready-to-send batch of put items."""

        batch_size = size if size is not None else self.config.batch_size
        return [(self.next_key(), self.next_value()) for _ in range(batch_size)]

    def preload_items(self, count: int) -> list[tuple[str, bytes]]:
        """Sequential items used to preload a store before read benchmarks."""

        generator = self._keyspace.sequential()
        return [(next(generator), self.next_value()) for _ in range(count)]
