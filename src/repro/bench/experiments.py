"""One experiment function per table/figure of the paper's evaluation.

Every function runs the corresponding experiment on the simulated edge-cloud
environment and returns :class:`~repro.bench.results.ResultTable` objects
whose rows mirror the series the paper plots.  The benchmark modules under
``benchmarks/`` call these functions (with reduced default scales so the
whole suite runs in minutes) and print the tables; ``EXPERIMENTS.md`` records
paper-reported versus measured values.

Scaling note: the paper runs minutes-long experiments on AWS VMs; the
defaults here use fewer batches/operations.  Every function takes explicit
scale parameters so a user can rerun at full paper scale.
"""

from __future__ import annotations

import statistics
from typing import Optional, Sequence

from ..common.config import (
    LoggingConfig,
    PlacementConfig,
    SecurityConfig,
    SystemConfig,
    WorkloadConfig,
)
from ..common.regions import PAPER_REGION_ORDER, Region
from ..core.system import WedgeChainSystem
from ..log.proofs import CommitPhase
from ..nodes.variants import FullDataLazyEdgeNode
from ..sim.parameters import SimulationParameters
from ..sim.topology import Topology, paper_topology
from ..workloads.driver import ClosedLoopDriver
from ..workloads.generator import KeyValueWorkload, format_key
from .results import ResultTable
from .runner import (
    SYSTEM_KINDS,
    SYSTEM_LABELS,
    config_for_batch,
    run_workload,
    write_workload,
)

#: Batch sizes swept by Figure 4.
FIGURE4_BATCH_SIZES = (100, 500, 1000, 1500, 2000)
#: Client counts swept by Figure 5.
FIGURE5_CLIENT_COUNTS = (1, 3, 5, 7, 9)
#: Batch sizes compared in Figure 6.
FIGURE6_BATCH_SIZES = (100, 500, 1000)


# ----------------------------------------------------------------------
# Table I — round-trip times
# ----------------------------------------------------------------------
def table1_rtt(topology: Optional[Topology] = None) -> ResultTable:
    """Table I: average RTTs (ms) between California and the other regions."""

    topology = topology if topology is not None else paper_topology()
    table = ResultTable(
        title="Table I: RTT from California (ms)",
        columns=["origin"] + [region.short_code for region in PAPER_REGION_ORDER],
        notes="California row matches the paper exactly; other pairs are "
        "filled from public AWS measurements (see repro.sim.topology).",
    )
    row = {"origin": Region.CALIFORNIA.short_code}
    row.update(topology.table_row(Region.CALIFORNIA))
    table.add_row(**row)
    return table


# ----------------------------------------------------------------------
# Figure 4 — put latency and throughput vs batch size
# ----------------------------------------------------------------------
def figure4_put_batch_size(
    batch_sizes: Sequence[int] = FIGURE4_BATCH_SIZES,
    num_batches: int = 10,
    systems: Sequence[str] = SYSTEM_KINDS,
    seed: int = 7,
) -> tuple[ResultTable, ResultTable]:
    """Figure 4(a)+(b): put commit latency and throughput vs batch size."""

    latency = ResultTable(
        title="Figure 4(a): Put commit latency vs batch size (ms)",
        columns=["batch_size"] + [SYSTEM_LABELS[kind] for kind in systems],
    )
    throughput = ResultTable(
        title="Figure 4(b): Put throughput vs batch size (K operations/s)",
        columns=["batch_size"] + [SYSTEM_LABELS[kind] for kind in systems],
    )
    for batch_size in batch_sizes:
        config = config_for_batch(batch_size)
        workload = write_workload(batch_size=batch_size, num_batches=num_batches, seed=seed)
        latency_row = {"batch_size": batch_size}
        throughput_row = {"batch_size": batch_size}
        for kind in systems:
            metrics = run_workload(kind, workload, config=config, seed=seed)
            latency_row[SYSTEM_LABELS[kind]] = metrics.mean_commit_latency_ms
            throughput_row[SYSTEM_LABELS[kind]] = metrics.throughput_kops_per_s
        latency.add_row(**latency_row)
        throughput.add_row(**throughput_row)
    return latency, throughput


# ----------------------------------------------------------------------
# Figure 5(a-c) — multi-client and mixed workloads
# ----------------------------------------------------------------------
def figure5_multi_client(
    read_fraction: float,
    client_counts: Sequence[int] = FIGURE5_CLIENT_COUNTS,
    operations_per_client: int = 600,
    batch_size: int = 100,
    systems: Sequence[str] = SYSTEM_KINDS,
    seed: int = 7,
) -> ResultTable:
    """Figures 5(a)-(c): throughput vs number of clients for one read mix."""

    labels = {0.0: "all-write", 0.5: "50% reads", 1.0: "all-read"}
    mix = labels.get(read_fraction, f"{read_fraction:.0%} reads")
    table = ResultTable(
        title=f"Figure 5 ({mix}): throughput vs number of clients (K operations/s)",
        columns=["clients"] + [SYSTEM_LABELS[kind] for kind in systems],
    )
    config = config_for_batch(batch_size)
    for count in client_counts:
        workload = WorkloadConfig(
            num_clients=count,
            batch_size=batch_size,
            read_fraction=read_fraction,
            operations_per_client=operations_per_client,
            key_space=100_000,
            seed=seed,
        )
        row = {"clients": count}
        for kind in systems:
            metrics = run_workload(kind, workload, config=config, seed=seed)
            row[SYSTEM_LABELS[kind]] = metrics.throughput_kops_per_s
        table.add_row(**row)
    return table


# ----------------------------------------------------------------------
# Figure 5(d) — best-case read latency and verification overhead
# ----------------------------------------------------------------------
def figure5d_best_case_read(
    num_preload_batches: int = 5,
    batch_size: int = 100,
    num_reads: int = 50,
    seed: int = 7,
) -> ResultTable:
    """Figure 5(d): best-case read latency with co-located client and server.

    The client, edge, and cloud are placed in the same datacenter so that
    communication is negligible and the measured latency is dominated by the
    lookup, proof construction, and client-side verification costs.
    """

    table = ResultTable(
        title="Figure 5(d): best-case read latency (ms)",
        columns=["system", "read_latency_ms", "verification_overhead_ms"],
        notes="Cloud-only reads need no verification; WedgeChain/Edge-baseline "
        "pay the proof-verification overhead at the client.",
    )
    config = config_for_batch(batch_size)
    params = SimulationParameters(latency_jitter_fraction=0.0)

    def preload_and_read(kind: str) -> tuple[float, float]:
        from .runner import build_system

        topology = Topology(intra_region_rtt_ms=0.1, client_edge_rtt_ms=0.1)
        colocated = config.with_overrides(
            placement=PlacementConfig(
                client_region=Region.CALIFORNIA,
                edge_region=Region.CALIFORNIA,
                cloud_region=Region.CALIFORNIA,
            )
        )
        system = build_system(
            kind, config=colocated, num_clients=1, topology=topology, params=params, seed=seed
        )
        client = system.clients[0]
        workload = KeyValueWorkload(
            WorkloadConfig(batch_size=batch_size, key_space=batch_size * num_preload_batches, seed=seed)
        )
        operations = []
        for _ in range(num_preload_batches):
            operations.append((client, client.put_batch(workload.write_batch(batch_size))))
        system.wait_for_all(operations, CommitPhase.PHASE_TWO, max_time_s=120)
        system.run()

        latencies = []
        verification = []
        for index in range(num_reads):
            key = format_key(index % (batch_size * num_preload_batches))
            verify_before = client.stats.get("verification_seconds", 0.0)
            op = client.get(key)
            system.wait_for_all([(client, op)], CommitPhase.PHASE_ONE, max_time_s=30)
            record = client.tracker.get(op)
            if record.phase_one_latency is not None:
                latencies.append(record.phase_one_latency)
            verification.append(
                max(client.stats.get("verification_seconds", 0.0) - verify_before, 0.0)
            )
        mean_latency = statistics.mean(latencies) * 1000 if latencies else float("nan")
        mean_verify = statistics.mean(verification) * 1000 if verification else 0.0
        return mean_latency, mean_verify

    for kind in SYSTEM_KINDS:
        latency_ms, verify_ms = preload_and_read(kind)
        if kind == "cloud-only":
            verify_ms = 0.0
        table.add_row(
            system=SYSTEM_LABELS[kind],
            read_latency_ms=latency_ms,
            verification_overhead_ms=verify_ms,
        )
    return table


# ----------------------------------------------------------------------
# Figure 6 — Phase I vs Phase II commit rates
# ----------------------------------------------------------------------
def figure6_commit_phases(
    batch_sizes: Sequence[int] = FIGURE6_BATCH_SIZES,
    num_batches: int = 200,
    time_bin_s: float = 2.0,
    seed: int = 7,
) -> tuple[ResultTable, ResultTable]:
    """Figure 6: cumulative Phase I and Phase II commits over time.

    Returns a summary table (time to finish all Phase I vs all Phase II
    commits per batch size) and a series table (cumulative counts per time
    bin) that reproduces the plotted curves.
    """

    summary = ResultTable(
        title="Figure 6 (summary): time to commit all batches (s)",
        columns=["batch_size", "batches", "phase1_done_s", "phase2_done_s", "p2_lag_s"],
    )
    series = ResultTable(
        title="Figure 6 (series): cumulative committed batches over time",
        columns=["batch_size", "time_s", "phase1_batches", "phase2_batches"],
    )
    for batch_size in batch_sizes:
        config = config_for_batch(batch_size)
        workload = write_workload(batch_size=batch_size, num_batches=num_batches, seed=seed)
        system = WedgeChainSystem.build(config=config, num_clients=1, seed=seed)
        driver = ClosedLoopDriver(system, workload)
        driver.run(max_time_s=3600)
        system.run()  # drain all Phase II certifications

        phase_one_times = sorted(
            record.phase_one_at
            for tracker in system.trackers()
            for record in tracker.records()
            if record.is_write and record.phase_one_at is not None
        )
        phase_two_times = sorted(
            record.phase_two_at
            for tracker in system.trackers()
            for record in tracker.records()
            if record.is_write and record.phase_two_at is not None
        )
        p1_done = phase_one_times[-1] if phase_one_times else float("nan")
        p2_done = phase_two_times[-1] if phase_two_times else float("nan")
        summary.add_row(
            batch_size=batch_size,
            batches=len(phase_one_times),
            phase1_done_s=p1_done,
            phase2_done_s=p2_done,
            p2_lag_s=p2_done - p1_done,
        )
        horizon = max(p2_done, p1_done)
        num_bins = int(horizon / time_bin_s) + 1
        for bin_index in range(num_bins + 1):
            edge_time = bin_index * time_bin_s
            series.add_row(
                batch_size=batch_size,
                time_s=edge_time,
                phase1_batches=sum(1 for t in phase_one_times if t <= edge_time),
                phase2_batches=sum(1 for t in phase_two_times if t <= edge_time),
            )
    return summary, series


# ----------------------------------------------------------------------
# Figure 7 — effect of edge and cloud placement
# ----------------------------------------------------------------------
def figure7_vary_cloud_location(
    cloud_regions: Sequence[Region] = (
        Region.OREGON,
        Region.VIRGINIA,
        Region.IRELAND,
        Region.MUMBAI,
    ),
    batch_size: int = 100,
    num_batches: int = 10,
    systems: Sequence[str] = SYSTEM_KINDS,
    seed: int = 7,
) -> ResultTable:
    """Figure 7(a): commit latency while moving the cloud node."""

    table = ResultTable(
        title="Figure 7(a): latency vs cloud datacenter (ms); client+edge in California",
        columns=["cloud"] + [SYSTEM_LABELS[kind] for kind in systems],
    )
    for cloud_region in cloud_regions:
        config = config_for_batch(batch_size).with_overrides(
            placement=PlacementConfig(
                client_region=Region.CALIFORNIA,
                edge_region=Region.CALIFORNIA,
                cloud_region=cloud_region,
            )
        )
        workload = write_workload(batch_size=batch_size, num_batches=num_batches, seed=seed)
        row = {"cloud": cloud_region.short_code}
        for kind in systems:
            metrics = run_workload(kind, workload, config=config, seed=seed)
            row[SYSTEM_LABELS[kind]] = metrics.mean_commit_latency_ms
        table.add_row(**row)
    return table


def figure7_vary_edge_location(
    edge_regions: Sequence[Region] = PAPER_REGION_ORDER,
    cloud_region: Region = Region.MUMBAI,
    batch_size: int = 100,
    num_batches: int = 10,
    systems: Sequence[str] = SYSTEM_KINDS,
    seed: int = 7,
) -> ResultTable:
    """Figure 7(b): commit latency while moving the edge node (cloud in Mumbai)."""

    table = ResultTable(
        title="Figure 7(b): latency vs edge location (ms); client in California, cloud in Mumbai",
        columns=["edge"] + [SYSTEM_LABELS[kind] for kind in systems],
    )
    for edge_region in edge_regions:
        config = config_for_batch(batch_size).with_overrides(
            placement=PlacementConfig(
                client_region=Region.CALIFORNIA,
                edge_region=edge_region,
                cloud_region=cloud_region,
            )
        )
        workload = write_workload(batch_size=batch_size, num_batches=num_batches, seed=seed)
        row = {"edge": edge_region.short_code}
        for kind in systems:
            metrics = run_workload(kind, workload, config=config, seed=seed)
            row[SYSTEM_LABELS[kind]] = metrics.mean_commit_latency_ms
        table.add_row(**row)
    return table


# ----------------------------------------------------------------------
# Section VI-E — dataset size
# ----------------------------------------------------------------------
def section6e_dataset_size(
    key_spaces: Sequence[int] = (10_000, 100_000, 1_000_000),
    batch_size: int = 100,
    num_batches: int = 10,
    systems: Sequence[str] = SYSTEM_KINDS,
    seed: int = 7,
) -> ResultTable:
    """Section VI-E: write latency while growing the key range.

    The paper sweeps 100 K – 100 M keys; the default here sweeps a scaled-down
    range (the claim under test is that latency is flat because communication
    dominates I/O, which does not depend on the absolute sizes).
    """

    table = ResultTable(
        title="Section VI-E: put commit latency vs key-space size (ms)",
        columns=["keys"] + [SYSTEM_LABELS[kind] for kind in systems],
        notes="Paper sweeps 100K-100M keys on disk-backed stores; this "
        "reproduction sweeps a scaled key range in memory.",
    )
    for key_space in key_spaces:
        config = config_for_batch(batch_size)
        workload = write_workload(
            batch_size=batch_size,
            num_batches=num_batches,
            key_space=key_space,
            seed=seed,
        )
        row = {"keys": key_space}
        for kind in systems:
            metrics = run_workload(kind, workload, config=config, seed=seed)
            row[SYSTEM_LABELS[kind]] = metrics.mean_commit_latency_ms
        table.add_row(**row)
    return table


# ----------------------------------------------------------------------
# Batched-protocol variant of the Figure 4/5 experiments (opt-in)
# ----------------------------------------------------------------------
def batched_protocol_ablation(
    batch_sizes: Sequence[int] = (100, 500, 1000),
    client_counts: Sequence[int] = (1, 5, 9),
    num_batches: int = 6,
    operations_per_client: int = 400,
    certify_batch_size: int = 32,
    seed: int = 7,
) -> tuple[ResultTable, ResultTable]:
    """Figure-4/Figure-5 sweeps with signature batching switched on.

    Re-runs the WedgeChain side of the Figure 4 (batch-size) and Figure 5a
    (client-count) sweeps twice: once with the paper-exact per-block
    protocol and once with ``certify_batch_size=32`` plus
    ``gossip_batch=True`` (gossip enabled in both variants so the
    comparison is apples-to-apples), and reports the WAN-byte and
    certification-CPU deltas.  Opt-in by design: the defaults everywhere
    else stay per-block so the simulated figures keep matching the paper's
    wire format byte-exactly.
    """

    def run_variant(
        workload: WorkloadConfig, block_size: int, batched: bool
    ) -> dict:
        logging = LoggingConfig(
            block_size=block_size,
            certify_batch_size=certify_batch_size if batched else 1,
        )
        security = SecurityConfig(gossip_batch=batched)
        config = SystemConfig.paper_default().with_overrides(
            logging=logging, security=security
        )
        system = WedgeChainSystem.build(
            config=config,
            num_clients=workload.num_clients,
            seed=seed,
            enable_gossip=True,
        )
        driver = ClosedLoopDriver(system, workload)
        result = driver.run(max_time_s=900)
        system.cloud.stop_gossip()
        system.run()
        p1 = [l for t in system.trackers() for l in t.phase_one_latencies()]
        p2 = [l for t in system.trackers() for l in t.phase_two_latencies()]
        return {
            "throughput_kops": result.throughput_ops_per_s / 1000.0,
            "commit_ms": statistics.mean(p1) * 1000 if p1 else float("nan"),
            "phase2_ms": statistics.mean(p2) * 1000 if p2 else float("nan"),
            "wan_bytes": system.env.network.stats.wan_bytes,
            "certify_cpu_s": system.cloud.stats.get("certify_cpu_seconds", 0.0),
        }

    figure4 = ResultTable(
        title=(
            "Figure 4 (batched variant): per-block vs certify_batch_size="
            f"{certify_batch_size} + gossip_batch"
        ),
        columns=[
            "batch_size",
            "variant",
            "commit_ms",
            "phase2_ms",
            "wan_bytes",
            "certify_cpu_s",
        ],
        notes="Defaults keep the per-block wire format; this ablation is the "
        "opt-in quantification of the batching savings.",
    )
    for batch_size in batch_sizes:
        workload = write_workload(
            batch_size=batch_size, num_batches=num_batches, seed=seed
        )
        for batched in (False, True):
            metrics = run_variant(workload, batch_size, batched)
            figure4.add_row(
                batch_size=batch_size,
                variant="batched" if batched else "per-block",
                commit_ms=metrics["commit_ms"],
                phase2_ms=metrics["phase2_ms"],
                wan_bytes=metrics["wan_bytes"],
                certify_cpu_s=metrics["certify_cpu_s"],
            )

    figure5 = ResultTable(
        title=(
            "Figure 5a (batched variant): all-write throughput vs clients, "
            "per-block vs batched certification"
        ),
        columns=[
            "clients",
            "variant",
            "throughput_kops",
            "wan_bytes",
            "certify_cpu_s",
        ],
    )
    for count in client_counts:
        workload = WorkloadConfig(
            num_clients=count,
            batch_size=100,
            operations_per_client=operations_per_client,
            key_space=100_000,
            seed=seed,
        )
        for batched in (False, True):
            metrics = run_variant(workload, 100, batched)
            figure5.add_row(
                clients=count,
                variant="batched" if batched else "per-block",
                throughput_kops=metrics["throughput_kops"],
                wan_bytes=metrics["wan_bytes"],
                certify_cpu_s=metrics["certify_cpu_s"],
            )
    return figure4, figure5


# ----------------------------------------------------------------------
# Pipelined-certification depth sweep (opt-in, paper-scale figure 5a)
# ----------------------------------------------------------------------
def pipeline_depth_ablation(
    depths: Sequence[int] = (1, 4, 16),
    client_counts: Sequence[int] = (1, 5, 9),
    operations_per_client: int = 400,
    batch_size: int = 100,
    certify_batch_size: int = 32,
    seed: int = 7,
) -> ResultTable:
    """Figure-5a sweep of ``certify_pipeline_depth`` on the batched protocol.

    Re-runs the all-write client sweep with ``certify_batch_size`` batching
    on and the certification pipeline at each depth.  Phase I numbers
    (throughput, commit latency) must not move — the pipeline lives entirely
    off the client-visible path — while the Phase II drain (how long after
    the last Phase I commit the last certificate lands) shrinks as deeper
    windows overlap certification round-trips instead of parking full
    batches behind one outstanding request.  ``phase2_lag_s`` is that drain
    interval; ``inflight_peak`` shows how much of the window was actually
    used; ``certify_windows`` counts multi-batch envelope dispatches.
    """

    table = ResultTable(
        title=(
            "Figure 5a (pipelined variant): certify_pipeline_depth sweep on "
            f"the batched protocol (certify_batch_size={certify_batch_size})"
        ),
        columns=[
            "clients",
            "depth",
            "throughput_kops",
            "commit_ms",
            "phase2_lag_s",
            "wan_bytes",
            "certify_cpu_s",
            "certify_requests",
            "inflight_peak",
        ],
        notes="Defaults keep depth 1 (and certify_batch_size 1) so the "
        "committed figures keep the paper-exact protocol; this ablation is "
        "the opt-in quantification of pipeline depth.",
    )
    for count in client_counts:
        workload = WorkloadConfig(
            num_clients=count,
            batch_size=batch_size,
            operations_per_client=operations_per_client,
            key_space=100_000,
            seed=seed,
        )
        for depth in depths:
            logging = LoggingConfig(
                block_size=batch_size,
                certify_batch_size=certify_batch_size,
                certify_pipeline_depth=depth,
            )
            config = SystemConfig.paper_default().with_overrides(
                logging=logging, security=SecurityConfig(gossip_batch=True)
            )
            system = WedgeChainSystem.build(
                config=config, num_clients=count, seed=seed, enable_gossip=True
            )
            driver = ClosedLoopDriver(system, workload)
            result = driver.run(max_time_s=900)
            system.cloud.stop_gossip()
            system.run()
            p1 = [l for t in system.trackers() for l in t.phase_one_latencies()]
            phase_one_times = [
                record.phase_one_at
                for tracker in system.trackers()
                for record in tracker.records()
                if record.is_write and record.phase_one_at is not None
            ]
            phase_two_times = [
                record.phase_two_at
                for tracker in system.trackers()
                for record in tracker.records()
                if record.is_write and record.phase_two_at is not None
            ]
            lag = (
                max(phase_two_times) - max(phase_one_times)
                if phase_one_times and phase_two_times
                else float("nan")
            )
            edge = system.edge()
            table.add_row(
                clients=count,
                depth=depth,
                throughput_kops=result.throughput_ops_per_s / 1000.0,
                commit_ms=statistics.mean(p1) * 1000 if p1 else float("nan"),
                phase2_lag_s=lag,
                wan_bytes=system.env.network.stats.wan_bytes,
                certify_cpu_s=system.cloud.stats.get("certify_cpu_seconds", 0.0),
                certify_requests=edge.stats["certify_requests"],
                inflight_peak=edge.stats.get("certify_inflight_peak", 0),
            )
    return table


# ----------------------------------------------------------------------
# Ablations (beyond the paper's figures)
# ----------------------------------------------------------------------
def ablation_data_free_certification(
    batch_sizes: Sequence[int] = (100, 500, 1000),
    num_batches: int = 10,
    seed: int = 7,
) -> ResultTable:
    """Data-free vs full-data lazy certification: WAN traffic and P2 latency."""

    table = ResultTable(
        title="Ablation: data-free vs full-data (lazy) certification",
        columns=[
            "batch_size",
            "variant",
            "commit_latency_ms",
            "phase2_latency_ms",
            "wan_megabytes",
        ],
    )

    def run_variant(batch_size: int, full_data: bool) -> tuple[float, float, float]:
        config = config_for_batch(batch_size)
        workload = write_workload(batch_size=batch_size, num_batches=num_batches, seed=seed)
        factory = None
        if full_data:
            def factory(env, cloud, cfg, name, region):
                return FullDataLazyEdgeNode(
                    env=env, cloud=cloud, config=cfg, name=name, region=region
                )
        system = WedgeChainSystem.build(
            config=config, num_clients=1, seed=seed, edge_factory=factory
        )
        driver = ClosedLoopDriver(system, workload)
        driver.run(max_time_s=600)
        system.run()
        p1 = [
            lat for tracker in system.trackers() for lat in tracker.phase_one_latencies()
        ]
        p2 = [
            lat for tracker in system.trackers() for lat in tracker.phase_two_latencies()
        ]
        wan_mb = system.env.network.stats.wan_bytes / 1e6
        return (
            statistics.mean(p1) * 1000 if p1 else float("nan"),
            statistics.mean(p2) * 1000 if p2 else float("nan"),
            wan_mb,
        )

    for batch_size in batch_sizes:
        for full_data in (False, True):
            commit_ms, p2_ms, wan_mb = run_variant(batch_size, full_data)
            table.add_row(
                batch_size=batch_size,
                variant="full-data" if full_data else "data-free",
                commit_latency_ms=commit_ms,
                phase2_latency_ms=p2_ms,
                wan_megabytes=wan_mb,
            )
    return table


def ablation_gossip_interval(
    intervals_s: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    batch_size: int = 20,
    seed: int = 7,
) -> ResultTable:
    """Omission-attack detection latency as a function of the gossip interval.

    An omitting edge node denies a certified block; the table reports how
    long after certification the reading client is able to prove the omission
    (bounded by the gossip interval, Section IV-E).
    """

    from ..nodes.malicious import OmittingEdgeNode

    table = ResultTable(
        title="Ablation: gossip interval vs omission-detection delay",
        columns=["gossip_interval_s", "detection_delay_s", "edge_punished"],
    )
    for interval in intervals_s:
        config = SystemConfig.paper_default().with_overrides(
            logging=LoggingConfig(block_size=batch_size),
            security=SecurityConfig(gossip_interval_s=interval, dispute_timeout_s=30.0),
        )

        def factory(env, cloud, cfg, name, region):
            return OmittingEdgeNode(env=env, cloud=cloud, config=cfg, name=name, region=region)

        system = WedgeChainSystem.build(
            config=config, num_clients=2, seed=seed, edge_factory=factory, enable_gossip=True
        )
        writer, reader = system.clients[0], system.clients[1]
        workload = KeyValueWorkload(WorkloadConfig(batch_size=batch_size, seed=seed))
        op = writer.put_batch(workload.write_batch(batch_size))
        system.wait_for(writer, op, CommitPhase.PHASE_TWO, max_time_s=60)
        certified_at = system.env.now()

        detection_at = None
        deadline = certified_at + 10 * interval + 30
        while system.env.now() < deadline and detection_at is None:
            read_op = reader.read(0)
            system.wait_for(
                reader, read_op, CommitPhase.PHASE_ONE, max_time_s=min(2.0, interval)
            )
            if any(event["kind"] == "omission" for event in reader.malicious_events):
                detection_at = reader.malicious_events[-1]["at"]
                break
            system.run_for(interval / 2)
        system.run_for(5.0)
        table.add_row(
            gossip_interval_s=interval,
            detection_delay_s=(detection_at - certified_at) if detection_at else float("nan"),
            edge_punished=system.cloud.ledger.is_punished(system.edge(0).node_id),
        )
    return table
