"""Result tables: the common output format of every reproduced experiment.

Each experiment function in :mod:`repro.bench.experiments` returns one or
more :class:`ResultTable` objects whose rows mirror the series the paper
plots.  Tables render as aligned ASCII (for the benchmark console output and
EXPERIMENTS.md) and as CSV (for plotting elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..common.errors import ConfigurationError


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ResultTable:
    """A titled table of experiment results."""

    title: str
    columns: Sequence[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ConfigurationError(f"unknown columns {sorted(unknown)} in {self.title}")
        self.rows.append(values)

    def column(self, name: str) -> list:
        if name not in self.columns:
            raise ConfigurationError(f"no column {name!r} in {self.title}")
        return [row.get(name) for row in self.rows]

    def rows_where(self, **criteria: Any) -> list[dict]:
        """Rows matching every ``column=value`` criterion."""

        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format(self) -> str:
        header = list(self.columns)
        body = [[_format_cell(row.get(col, "")) for col in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        lines = [",".join(str(col) for col in self.columns)]
        for row in self.rows:
            lines.append(",".join(_format_cell(row.get(col, "")) for col in self.columns))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()


def print_tables(tables: Iterable[ResultTable]) -> None:
    """Print tables separated by blank lines (used by benchmark modules)."""

    for table in tables:
        print()
        print(table.format())
