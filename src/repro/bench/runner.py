"""Shared machinery for running one experiment configuration.

Every figure of the paper boils down to: build one of the three systems
(WedgeChain, Cloud-only, Edge-baseline) with some placement and workload,
drive it with closed-loop clients, and collect latency/throughput/commit
statistics.  This module provides that loop once so the per-figure experiment
functions stay short and declarative.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional, Sequence

from ..baselines.cloud_only import CloudOnlySystem
from ..baselines.edge_baseline import EdgeBaselineSystem
from ..common.config import SystemConfig, WorkloadConfig
from ..common.errors import ConfigurationError
from ..core.system import WedgeChainSystem
from ..sim.parameters import SimulationParameters
from ..sim.topology import Topology
from ..workloads.driver import ClosedLoopDriver

#: The three systems compared throughout Section VI.
SYSTEM_KINDS = ("wedgechain", "cloud-only", "edge-baseline")

_SYSTEM_CLASSES = {
    "wedgechain": WedgeChainSystem,
    "cloud-only": CloudOnlySystem,
    "edge-baseline": EdgeBaselineSystem,
}

#: Pretty names used in tables (match the paper's legends).
SYSTEM_LABELS = {
    "wedgechain": "WedgeChain",
    "cloud-only": "Cloud-only",
    "edge-baseline": "Edge-baseline",
}


def build_system(
    kind: str,
    config: Optional[SystemConfig] = None,
    num_clients: int = 1,
    topology: Optional[Topology] = None,
    params: Optional[SimulationParameters] = None,
    seed: int = 7,
    **extra,
):
    """Instantiate one of the three systems by name."""

    if kind not in _SYSTEM_CLASSES:
        raise ConfigurationError(f"unknown system kind {kind!r}; use one of {SYSTEM_KINDS}")
    system_cls = _SYSTEM_CLASSES[kind]
    return system_cls.build(
        config=config,
        num_clients=num_clients,
        topology=topology,
        params=params,
        seed=seed,
        **extra,
    )


@dataclass(frozen=True)
class WorkloadMetrics:
    """Measurements of one (system, workload) run."""

    system: str
    num_clients: int
    operations_completed: int
    requests_sent: int
    duration_s: float
    throughput_ops_per_s: float
    mean_commit_latency_ms: float
    p95_commit_latency_ms: float
    mean_phase_two_latency_ms: Optional[float]
    wan_bytes: int
    lan_bytes: int
    failed_operations: int

    @property
    def throughput_kops_per_s(self) -> float:
        return self.throughput_ops_per_s / 1000.0


def _percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]


def run_workload(
    kind: str,
    workload: WorkloadConfig,
    config: Optional[SystemConfig] = None,
    topology: Optional[Topology] = None,
    params: Optional[SimulationParameters] = None,
    seed: int = 7,
    max_time_s: float = 900.0,
    drain: bool = False,
) -> WorkloadMetrics:
    """Run one closed-loop workload against one system and collect metrics.

    ``drain=True`` keeps running after the workload finishes so that all
    Phase II certifications complete (needed for Phase II latency and the
    commit-rate experiment); throughput is always measured over the workload
    window only.
    """

    config = config if config is not None else SystemConfig.paper_default()
    system = build_system(
        kind,
        config=config,
        num_clients=workload.num_clients,
        topology=topology,
        params=params,
        seed=seed,
    )
    driver = ClosedLoopDriver(system, workload)
    result = driver.run(max_time_s=max_time_s)
    if drain:
        system.run()

    commit_latencies: list[float] = []
    phase_two_latencies: list[float] = []
    failed = 0
    from ..log.proofs import CommitPhase  # local import avoids a cycle at module load

    for tracker in system.trackers():
        commit_latencies.extend(tracker.phase_one_latencies())
        phase_two_latencies.extend(tracker.phase_two_latencies())
        failed += tracker.count_in_phase(CommitPhase.FAILED)

    mean_commit = statistics.mean(commit_latencies) if commit_latencies else float("nan")
    p95_commit = _percentile(commit_latencies, 0.95)
    mean_p2 = (
        statistics.mean(phase_two_latencies) if phase_two_latencies else None
    )
    stats = system.env.network.stats
    return WorkloadMetrics(
        system=kind,
        num_clients=workload.num_clients,
        operations_completed=result.operations_completed,
        requests_sent=result.requests_sent,
        duration_s=result.duration_s,
        throughput_ops_per_s=result.throughput_ops_per_s,
        mean_commit_latency_ms=mean_commit * 1000.0,
        p95_commit_latency_ms=p95_commit * 1000.0,
        mean_phase_two_latency_ms=mean_p2 * 1000.0 if mean_p2 is not None else None,
        wan_bytes=stats.wan_bytes,
        lan_bytes=stats.lan_bytes,
        failed_operations=failed,
    )


def write_workload(
    batch_size: int,
    num_batches: int,
    num_clients: int = 1,
    key_space: int = 100_000,
    value_size: int = 100,
    read_fraction: float = 0.0,
    seed: int = 7,
) -> WorkloadConfig:
    """A workload of ``num_batches`` write batches per client (paper style)."""

    return WorkloadConfig(
        num_clients=num_clients,
        batch_size=batch_size,
        value_size=value_size,
        read_fraction=read_fraction,
        key_space=key_space,
        operations_per_client=batch_size * num_batches,
        seed=seed,
    )


def config_for_batch(
    batch_size: int,
    base: Optional[SystemConfig] = None,
) -> SystemConfig:
    """System config whose block size matches the workload batch size.

    The paper forms one block per client batch ("each batch consists of 100
    put operations" and blocks are certified per batch), so experiments keep
    the two aligned.
    """

    from ..common.config import LoggingConfig

    base = base if base is not None else SystemConfig.paper_default()
    return base.with_overrides(logging=LoggingConfig(block_size=batch_size))
