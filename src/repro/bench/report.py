"""Generate EXPERIMENTS.md: paper-reported vs measured results.

Run with::

    python -m repro.bench.report [output-path] [--scale N]

The report runs every experiment of the evaluation at a configurable scale,
renders the measured tables, and places them next to the values the paper
reports together with the shape criteria that must hold for the reproduction
to count as successful.
"""

from __future__ import annotations

import argparse
import sys
from typing import TextIO

from . import experiments
from .results import ResultTable

PAPER_SUMMARY = {
    "figure4_latency": (
        "WedgeChain 15→20 ms, Cloud-only 78→83 ms, Edge-baseline 109→213 ms "
        "as batches grow from 100 to 2000 operations."
    ),
    "figure4_throughput": (
        "WedgeChain 6.6K→~100K ops/s (≈15×), Cloud-only ≈18.5× increase, "
        "Edge-baseline only ≈2× increase."
    ),
    "figure5a": (
        "All-write: +22–30% for WedgeChain and Edge-baseline from 1→9 clients, "
        "+433% for Cloud-only (which nearly catches up to WedgeChain)."
    ),
    "figure5b": (
        "50% reads: WedgeChain ≈4K ops/s, Edge-baseline ≈1.3K, Cloud-only ≈270 ops/s."
    ),
    "figure5c": (
        "All-read: WedgeChain ≈ Edge-baseline, both far above Cloud-only."
    ),
    "figure5d": (
        "Best-case read latency 0.71 ms at the edge (0.19 ms of which is client "
        "verification) vs 0.5 ms at the cloud with no verification."
    ),
    "figure6": (
        "4000 batches: Phase I completes within ~60 s for every batch size; "
        "Phase II keeps up at B=100 but lags by tens of seconds at B=500/1000."
    ),
    "figure7a": (
        "Moving the cloud (O/V/I/M): WedgeChain stays at 15–17 ms; Cloud-only "
        "37–247 ms; Edge-baseline 59–321 ms."
    ),
    "figure7b": (
        "Moving the edge (cloud in Mumbai): WedgeChain tracks the client-edge RTT "
        "(17–247 ms); Cloud-only is flat; all systems converge when edge = cloud."
    ),
    "section6e": (
        "Growing the key range 100K→100M leaves write latency flat for all systems "
        "(WedgeChain 15–16 ms, Edge-baseline 88–95 ms, Cloud-only 78–79 ms)."
    ),
}


def _emit(out: TextIO, text: str = "") -> None:
    out.write(text + "\n")


def _emit_table(out: TextIO, table: ResultTable) -> None:
    _emit(out, "```")
    _emit(out, table.format())
    _emit(out, "```")
    _emit(out)


def generate_report(out: TextIO, scale: float = 1.0) -> None:
    """Run every experiment and write the markdown report to *out*."""

    batches = max(int(6 * scale), 3)
    ops_small = max(int(300 * scale), 60)

    _emit(out, "# EXPERIMENTS — paper vs. measured")
    _emit(out)
    _emit(
        out,
        "Every table below was produced by this repository's simulator "
        "(`python -m repro.bench.report`). The paper's numbers come from AWS "
        "m5d.xlarge VMs; ours come from a calibrated discrete-event model, so "
        "absolute values are not expected to match — the acceptance criteria "
        "are the *shapes*: orderings between systems, trends across the swept "
        "parameter, and crossover points. Deviations are called out explicitly.",
    )
    _emit(out)

    # ----------------------------------------------------------- Table I
    _emit(out, "## Table I — round-trip times")
    _emit(out)
    _emit(out, "Paper: California to C/O/V/I/M = 0/19/61/141/238 ms.")
    _emit(out, "Measured (simulator topology, used by every experiment below):")
    _emit(out)
    _emit_table(out, experiments.table1_rtt())
    _emit(out, "The California row is embedded verbatim; pairs the paper does not "
               "report are filled from public AWS measurements (DESIGN.md §5).")
    _emit(out)

    # ----------------------------------------------------------- Figure 4
    latency, throughput = experiments.figure4_put_batch_size(num_batches=batches)
    _emit(out, "## Figure 4 — put latency and throughput vs batch size")
    _emit(out)
    _emit(out, f"Paper: {PAPER_SUMMARY['figure4_latency']}")
    _emit(out, f"Paper: {PAPER_SUMMARY['figure4_throughput']}")
    _emit(out)
    _emit_table(out, latency)
    _emit_table(out, throughput)
    _emit(
        out,
        "Shape check: WedgeChain commits at edge latency and is nearly flat; "
        "Cloud-only sits near its round trip; Edge-baseline is the slowest and "
        "degrades the most with batch size; WedgeChain's throughput grows by "
        "roughly an order of magnitude and dominates both baselines. "
        "Deviation: our Edge-baseline throughput still grows with batch size "
        "(the paper reports only ≈2×) because the simulated WAN pipe is the "
        "only shared bottleneck we model.",
    )
    _emit(out)

    # ----------------------------------------------------------- Figure 5
    _emit(out, "## Figure 5 — multi-client and mixed workloads")
    _emit(out)
    for fraction, key in ((0.0, "figure5a"), (0.5, "figure5b"), (1.0, "figure5c")):
        table = experiments.figure5_multi_client(
            fraction, operations_per_client=ops_small
        )
        _emit(out, f"Paper: {PAPER_SUMMARY[key]}")
        _emit(out)
        _emit_table(out, table)
    _emit(
        out,
        "Shape check: every system gains from concurrency; Cloud-only gains the "
        "most in relative terms; with interactive reads in the mix Cloud-only "
        "collapses while WedgeChain and Edge-baseline serve reads from the edge. "
        "Deviations: (1) our WedgeChain scales with clients more than the paper's "
        "22–30% because the paper's edge node saturates on per-request work we "
        "do not model; (2) the WedgeChain-to-Cloud-only gap in the 50% mix is "
        "≈4–5× rather than ≈15× because our calibrated client-edge RTT (12 ms) "
        "is larger than the paper's testbed.",
    )
    _emit(out)

    table5d = experiments.figure5d_best_case_read()
    _emit(out, f"Paper: {PAPER_SUMMARY['figure5d']}")
    _emit(out)
    _emit_table(out, table5d)
    _emit(
        out,
        "Shape check: co-located reads complete in well under 10 ms of simulated "
        "time; Cloud-only needs no verification; the edge systems pay a small, "
        "non-dominant verification overhead at the client.",
    )
    _emit(out)

    # ----------------------------------------------------------- Figure 6
    summary, _series = experiments.figure6_commit_phases(
        num_batches=max(int(120 * scale), 40)
    )
    _emit(out, "## Figure 6 — Phase I vs Phase II commit rates")
    _emit(out)
    _emit(out, f"Paper: {PAPER_SUMMARY['figure6']}")
    _emit(out)
    _emit_table(out, summary)
    _emit(
        out,
        "Shape check: the time to finish Phase I is essentially independent of "
        "the batch size, while the Phase II lag grows with the batch size — the "
        "client-visible commit rate is unaffected by certification falling "
        "behind, which is the point of lazy certification.",
    )
    _emit(out)

    # ----------------------------------------------------------- Figure 7
    table7a = experiments.figure7_vary_cloud_location(num_batches=batches)
    table7b = experiments.figure7_vary_edge_location(num_batches=batches)
    _emit(out, "## Figure 7 — edge and cloud placement")
    _emit(out)
    _emit(out, f"Paper: {PAPER_SUMMARY['figure7a']}")
    _emit(out)
    _emit_table(out, table7a)
    _emit(out, f"Paper: {PAPER_SUMMARY['figure7b']}")
    _emit(out)
    _emit_table(out, table7b)
    _emit(
        out,
        "Shape check: WedgeChain is flat as the cloud moves (the cloud is off the "
        "commit path) and tracks the client-edge RTT as the edge moves; the "
        "baselines track the cloud distance; the three designs converge when the "
        "edge is co-located with the cloud in Mumbai.",
    )
    _emit(out)

    # ----------------------------------------------------------- Section VI-E
    table6e = experiments.section6e_dataset_size(num_batches=batches)
    _emit(out, "## Section VI-E — dataset size")
    _emit(out)
    _emit(out, f"Paper: {PAPER_SUMMARY['section6e']}")
    _emit(out)
    _emit_table(out, table6e)
    _emit(
        out,
        "Shape check: latency is flat across a 100× growth of the key range for "
        "all three systems (communication dominates I/O). The sweep is scaled "
        "down from the paper's 100K–100M keys to 10K–1M in-memory keys.",
    )
    _emit(out)

    # ----------------------------------------------------------- Ablations
    ablation = experiments.ablation_data_free_certification(num_batches=batches)
    gossip = experiments.ablation_gossip_interval()
    _emit(out, "## Ablations (beyond the paper's figures)")
    _emit(out)
    _emit_table(out, ablation)
    _emit(
        out,
        "Data-free certification leaves the client-visible commit latency "
        "untouched but cuts WAN traffic by a factor that grows with the batch "
        "size — the quantitative version of the paper's Section IV-B argument.",
    )
    _emit(out)
    _emit_table(out, gossip)
    _emit(
        out,
        "The omission-attack detection delay is bounded by (a small multiple of) "
        "the gossip interval, matching the Section IV-E analysis.",
    )
    _emit(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args(argv)
    with open(args.output, "w", encoding="utf-8") as handle:
        generate_report(handle, scale=args.scale)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
