"""Hot-path micro-benchmarks with seeded inputs and percentile reporting.

Every simulated experiment spends the bulk of its wall-clock time in a
handful of hot paths: canonical encoding (digests, signatures, ``wire_size``),
Merkle tree (re)builds, page lookups, merges, and read-proof verification.
This module times those paths in isolation with deterministic, seeded inputs
and reports throughput plus per-repeat latency percentiles (the reporting
shape follows the seeded-percentile harness idiom of faas-offloading-sim).

Results are written as ``BENCH_hotpath.json`` so later PRs can diff against
the recorded trajectory; ``benchmarks/BENCH_seed_reference.json`` holds the
numbers measured on the unoptimized seed implementation and is used to
compute the ``speedup_vs_seed`` section.

Run via::

    python benchmarks/perf_baseline.py --mode quick

or programmatically through :func:`run_perf_suite`.
"""

from __future__ import annotations

import json
import os
import platform
import random
import shutil
import tempfile
import time
from dataclasses import asdict, dataclass
from typing import Callable, Optional

from ..common.config import LSMerkleConfig, StorageConfig, SystemConfig
from ..common.encoding import encoded_size
from ..common.identifiers import client_id, cloud_id, edge_id
from ..core.gossip import GossipView, build_gossip, build_gossip_batch, verify_gossip
from ..crypto.signatures import KeyRegistry, Signature
from ..log.block import build_block, compute_block_digest
from ..log.entry import EntryBody, LogEntry
from ..log.proofs import (
    build_certify_batch_tree,
    derive_batched_proofs,
    issue_batch_certificate,
    issue_block_proof,
    issue_phase_one_receipt,
)
from ..lsm.compaction import merge_levels, newest_versions, partition_into_pages
from ..lsm.lsm_tree import LSMTree
from ..lsm.page import build_page
from ..lsm.records import KVRecord
from ..lsmerkle.merge import CloudIndexMirror
from ..lsmerkle.mlsm import MerkleizedLSM, sign_global_root
from ..lsmerkle.read_proof import build_get_proof, verify_get_proof
from ..merkle.tree import MerkleTree
from ..messages.log_messages import CertifyBatchStatement, CertifyStatement

#: Percentiles reported for per-repeat wall times.
PERCENTILES = (0.50, 0.90, 0.99)

#: Default location of the recorded seed measurement (relative to the repo
#: root); captured once from the unoptimized seed implementation.
SEED_REFERENCE_PATH = "benchmarks/BENCH_seed_reference.json"


@dataclass(frozen=True)
class BenchResult:
    """Timing summary of one micro-benchmark."""

    name: str
    ops: int
    repeats: int
    total_s: float
    ops_per_s: float
    p50_ms: float
    p90_ms: float
    p99_ms: float


def _percentile_ms(ordered: list[float], fraction: float) -> float:
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index] * 1000.0


def _time_repeats(
    name: str, fn: Callable[[], None], ops_per_repeat: int, repeats: int
) -> BenchResult:
    """Run *fn* ``repeats`` times and summarise the per-repeat wall times."""

    times: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    total = sum(times)
    ordered = sorted(times)
    total_ops = ops_per_repeat * repeats
    return BenchResult(
        name=name,
        ops=total_ops,
        repeats=repeats,
        total_s=total,
        ops_per_s=total_ops / total if total > 0 else float("inf"),
        p50_ms=_percentile_ms(ordered, PERCENTILES[0]),
        p90_ms=_percentile_ms(ordered, PERCENTILES[1]),
        p99_ms=_percentile_ms(ordered, PERCENTILES[2]),
    )


# ----------------------------------------------------------------------
# Input builders (deterministic for a given seed)
# ----------------------------------------------------------------------
def _make_blocks(rng: random.Random, num_blocks: int, entries_per_block: int):
    edge = edge_id("bench-edge")
    producer = client_id("bench-client")
    blocks = []
    for block_id in range(num_blocks):
        entries = []
        for index in range(entries_per_block):
            payload = bytes(rng.getrandbits(8) for _ in range(64))
            body = EntryBody(
                producer=producer,
                sequence=block_id * entries_per_block + index,
                payload=payload,
                produced_at=float(block_id),
            )
            signature = Signature(
                signer=producer,
                scheme="hmac",
                value=bytes(rng.getrandbits(8) for _ in range(32)),
            )
            entries.append(LogEntry(body=body, signature=signature))
        blocks.append(
            build_block(
                edge=edge,
                block_id=block_id,
                entries=entries,
                created_at=float(block_id),
            )
        )
    return blocks


def _make_records(rng: random.Random, count: int, key_space: int) -> list[KVRecord]:
    return [
        KVRecord(
            key=f"key-{rng.randrange(key_space):08d}",
            sequence=sequence,
            value=bytes(rng.getrandbits(8) for _ in range(32)),
            written_at=float(sequence),
        )
        for sequence in range(count)
    ]


# ----------------------------------------------------------------------
# Individual micro-benchmarks
# ----------------------------------------------------------------------
def bench_digest_encode(rng: random.Random, quick: bool) -> BenchResult:
    """Digest + ``encoded_size`` over blocks: the canonical-encoder hot path.

    This is the micro-benchmark the perf ratchet tracks: every repeat
    recomputes each block's digest from its entries and charges its wire
    size, exactly what certification, gossip, and dispute verification do.
    """

    num_blocks = 10 if quick else 30
    entries_per_block = 60 if quick else 100
    repeats = 12 if quick else 30
    blocks = _make_blocks(rng, num_blocks, entries_per_block)

    def run() -> None:
        for block in blocks:
            compute_block_digest(block.edge, block.block_id, block.entries)
            encoded_size(block)

    # One digest per entry plus one per block, plus one full-block encode.
    ops_per_repeat = num_blocks * (entries_per_block + 2)
    return _time_repeats("digest_encode", run, ops_per_repeat, repeats)


def bench_merkle_roots(rng: random.Random, quick: bool) -> BenchResult:
    """``CloudIndexMirror.level_roots()`` with occasional digest changes."""

    num_digests = 300 if quick else 1000
    calls = 200 if quick else 600
    change_every = 10
    mirror = CloudIndexMirror(
        edge=edge_id("bench-edge"),
        config=LSMerkleConfig.paper_default(),
    )
    mirror.level_page_digests[1] = [
        f"{rng.getrandbits(256):064x}" for _ in range(num_digests)
    ]
    mirror.level_page_digests[2] = [
        f"{rng.getrandbits(256):064x}" for _ in range(num_digests // 2)
    ]
    counter = {"calls": 0}

    def run() -> None:
        counter["calls"] += 1
        if counter["calls"] % change_every == 0:
            slot = rng.randrange(num_digests)
            mirror.level_page_digests[1][slot] = f"{rng.getrandbits(256):064x}"
        mirror.level_roots()

    return _time_repeats("merkle_roots", run, 1, calls)


def bench_merkle_update(rng: random.Random, quick: bool) -> BenchResult:
    """Replace a few leaves of a large tree and read the new root.

    Uses the incremental ``replace_leaf`` API when available and falls back
    to a full rebuild (the seed behaviour) otherwise, so the same workload is
    comparable across implementations.
    """

    num_leaves = 512 if quick else 2048
    updates_per_repeat = 8
    repeats = 60 if quick else 200
    leaves = [f"{rng.getrandbits(256):064x}" for _ in range(num_leaves)]
    state = {"tree": MerkleTree(leaves), "leaves": list(leaves)}
    incremental = hasattr(MerkleTree, "replace_leaf")

    def run() -> None:
        for _ in range(updates_per_repeat):
            slot = rng.randrange(num_leaves)
            digest = f"{rng.getrandbits(256):064x}"
            state["leaves"][slot] = digest
            if incremental:
                state["tree"].replace_leaf(slot, digest)
            else:
                state["tree"] = MerkleTree(state["leaves"])
        assert state["tree"].root

    return _time_repeats("merkle_update", run, updates_per_repeat, repeats)


def bench_page_lookup(rng: random.Random, quick: bool) -> BenchResult:
    """Point lookups (hits and misses) against one large sorted page."""

    num_records = 1000 if quick else 4000
    lookups_per_repeat = 2000
    repeats = 15 if quick else 40
    records = _make_records(rng, num_records, key_space=num_records * 2)
    page = build_page(records, created_at=1.0)
    keys = [record.key for record in records]
    probe_keys = [
        rng.choice(keys) if rng.random() < 0.5 else f"key-{rng.randrange(10**8):08d}"
        for _ in range(lookups_per_repeat)
    ]

    def run() -> None:
        for key in probe_keys:
            page.lookup(key)

    return _time_repeats("page_lookup", run, lookups_per_repeat, repeats)


def bench_merge(rng: random.Random, quick: bool) -> BenchResult:
    """``merge_levels`` of overlapping source and target levels."""

    records_per_side = 2000 if quick else 6000
    page_capacity = 100
    repeats = 20 if quick else 50
    source = partition_into_pages(
        newest_versions(_make_records(rng, records_per_side, key_space=records_per_side)),
        page_capacity=page_capacity,
        created_at=1.0,
    )
    target = partition_into_pages(
        newest_versions(_make_records(rng, records_per_side, key_space=records_per_side)),
        page_capacity=page_capacity,
        created_at=0.5,
    )

    def run() -> None:
        merge_levels(source, target, created_at=2.0, page_capacity=page_capacity)

    return _time_repeats("merge", run, records_per_side * 2, repeats)


def bench_put_pipeline(rng: random.Random, quick: bool) -> BenchResult:
    """Build level-0 pages from records and compact through the LSM tree."""

    batches = 40 if quick else 120
    batch_size = 100
    repeats = 6 if quick else 12
    batches_of_records = [
        _make_records(rng, batch_size, key_space=batch_size * batches)
        for _ in range(batches)
    ]

    def run() -> None:
        tree = LSMTree(config=LSMerkleConfig(level_thresholds=(4, 8, 64, 512)))
        for index, records in enumerate(batches_of_records):
            page = build_page(records, created_at=float(index))
            if tree.add_level_zero_page(page):
                tree.compact_all(created_at=float(index))

    return _time_repeats("put_pipeline", run, batches * batch_size, repeats)


def bench_get_verify(rng: random.Random, quick: bool) -> BenchResult:
    """End-to-end read proofs: ``build_get_proof`` + ``verify_get_proof``."""

    gets_per_repeat = 30 if quick else 60
    repeats = 10 if quick else 25
    registry = KeyRegistry()
    cloud = cloud_id("bench-cloud")
    edge = edge_id("bench-edge")
    registry.register(cloud)
    registry.register(edge)

    index = MerkleizedLSM(
        config=LSMerkleConfig(level_thresholds=(4, 8, 64, 512)), page_capacity=50
    )
    merged_records = _make_records(rng, 2000, key_space=4000)
    known_keys = sorted({record.key for record in merged_records})
    for start in range(0, len(merged_records), 200):
        chunk = merged_records[start : start + 200]
        page = build_page(chunk, created_at=1.0)
        if index.add_level_zero_page(page):
            for level_index in index.levels_needing_merge():
                source, target = index.tree.plan_merge(level_index)
                result = merge_levels(
                    source, target, created_at=2.0, page_capacity=50
                )
                index.apply_merge(level_index, result.pages)
    signed_root = sign_global_root(
        registry=registry,
        cloud=cloud,
        edge=edge,
        level_roots=index.level_roots(),
        version=1,
        timestamp=3.0,
    )
    probe_keys = [
        rng.choice(known_keys)
        if rng.random() < 0.7
        else f"key-{rng.randrange(10**8):08d}"
        for _ in range(gets_per_repeat)
    ]

    def run() -> None:
        for key in probe_keys:
            result = index.get(key)
            proof = build_get_proof(
                key=key,
                index=index,
                level_zero_blocks=(),
                signed_root=signed_root,
                found_level=result.level_index,
            )
            verified = verify_get_proof(
                registry=registry,
                cloud=cloud,
                edge=edge,
                key=key,
                proof=proof,
            )
            assert verified.found == result.found

    return _time_repeats("get_verify", run, gets_per_repeat, repeats)


#: Batch size used by the batched-certification micro-benchmark (the
#: acceptance target compares certified-blocks/s at this batch size).
CERTIFY_BENCH_BATCH_SIZE = 32


def _certification_registry(scheme: str = "hmac") -> tuple[KeyRegistry, object, object]:
    registry = KeyRegistry(scheme)
    cloud = cloud_id("bench-cloud")
    edge = edge_id("bench-edge")
    registry.register(cloud)
    registry.register(edge)
    return registry, cloud, edge


def _make_digest_pairs(rng: random.Random, count: int) -> list[tuple[int, str]]:
    return [
        (block_id, f"{rng.getrandbits(256):064x}") for block_id in range(count)
    ]


def bench_certify_per_block(rng: random.Random, quick: bool) -> BenchResult:
    """The unbatched certification round: one signature per block each way.

    Per block: the edge signs a ``CertifyStatement``, the cloud verifies it
    and signs a ``BlockProof``, and the edge verifies the proof — four
    signature operations per certified block.  Uses the Schnorr scheme: the
    point of batch certification is amortizing genuinely asymmetric
    signatures on the WAN path (a real deployment cannot use the HMAC
    oracle), so the signature-bound rows are measured with the scheme whose
    cost batching actually amortizes.  Reported as certified-blocks/s.
    """

    num_blocks = 8 if quick else 16
    repeats = 3 if quick else 5
    registry, cloud, edge = _certification_registry("schnorr")
    pairs = _make_digest_pairs(rng, num_blocks)
    counter = {"repeat": 0}

    def run() -> None:
        counter["repeat"] += 1
        now = float(counter["repeat"])
        for block_id, digest in pairs:
            statement = CertifyStatement(
                edge=edge, block_id=block_id, block_digest=digest, num_entries=100
            )
            signature = registry.sign(edge, statement)
            assert registry.verify(signature, statement)
            proof = issue_block_proof(
                registry=registry,
                cloud=cloud,
                edge=edge,
                block_id=block_id,
                block_digest=digest,
                certified_at=now,
            )
            assert proof.verify(registry)

    return _time_repeats("certify_per_block", run, num_blocks, repeats)


def bench_certify_batch(rng: random.Random, quick: bool) -> BenchResult:
    """Batched certification: one signature per batch amortized over N blocks.

    Per batch of ``CERTIFY_BENCH_BATCH_SIZE``: the edge signs one
    ``CertifyBatchStatement``, the cloud verifies it, builds the Merkle tree
    over the block digests and signs the single batch root, and the edge
    derives every per-block proof locally and verifies each one (leaf digest
    + membership path; the root signature is checked once and memoized).
    Same Schnorr scheme and reporting unit (certified-blocks/s) as
    ``certify_per_block``, so the two rows compare directly.
    """

    batch_size = CERTIFY_BENCH_BATCH_SIZE
    num_blocks = batch_size if quick else batch_size * 2
    repeats = 3 if quick else 5
    registry, cloud, edge = _certification_registry("schnorr")
    pairs = _make_digest_pairs(rng, num_blocks)
    counter = {"repeat": 0}

    def run() -> None:
        counter["repeat"] += 1
        now = float(counter["repeat"])
        for start in range(0, len(pairs), batch_size):
            chunk = tuple(pairs[start : start + batch_size])
            items = tuple(
                CertifyStatement(
                    edge=edge, block_id=bid, block_digest=d, num_entries=100
                )
                for bid, d in chunk
            )
            batch_statement = CertifyBatchStatement(edge=edge, items=items)
            signature = registry.sign(edge, batch_statement)
            assert registry.verify(signature, batch_statement)
            tree = build_certify_batch_tree(chunk)
            certificate = issue_batch_certificate(
                registry=registry,
                cloud=cloud,
                edge=edge,
                batch_root=tree.root,
                num_blocks=len(chunk),
                certified_at=now,
            )
            for proof in derive_batched_proofs(certificate, chunk):
                assert proof.verify(registry)

    return _time_repeats("certify_batch", run, num_blocks, repeats)


def _make_pipeline_cloud():
    """A real CloudNode on a co-located Schnorr environment (built once).

    The pipeline rows measure the full windowed certify protocol — edge
    request signing, the cloud's window verify/sign path, edge certificate
    absorption — in wall-clock time, so they need genuine asymmetric
    signatures and the actual :meth:`CloudNode.certify_batch_window` code.
    """

    from ..nodes.cloud import CloudNode
    from ..sim.environment import local_environment

    env = local_environment(signature_scheme="schnorr", seed=7)
    cloud = CloudNode(env=env, name="bench-cloud")
    edge = edge_id("bench-edge")
    env.registry.register(edge)
    return env, cloud, edge


def _bench_cert_pipeline(
    rng: random.Random, quick: bool, depth: int, name: str
) -> BenchResult:
    from ..core.certify_pipeline import EdgeCertifyPipeline, run_certify_pipeline

    batch_size = CERTIFY_BENCH_BATCH_SIZE
    batches_per_repeat = depth
    repeats = (3 if quick else 5) if depth == 1 else (2 if quick else 4)
    env, cloud, edge = _make_pipeline_cloud()
    # Fresh block ids every repeat (generated outside the timed region): the
    # cloud's certified-digest map is append-only, so re-certifying old ids
    # would hit the idempotent path instead of the full pipeline.
    per_repeat_pairs = [
        [
            (
                repeat * batches_per_repeat * batch_size + index,
                f"{rng.getrandbits(256):064x}",
            )
            for index in range(batches_per_repeat * batch_size)
        ]
        for repeat in range(repeats)
    ]
    counter = {"repeat": 0}

    def run() -> None:
        pairs = per_repeat_pairs[counter["repeat"]]
        counter["repeat"] += 1
        pipeline = EdgeCertifyPipeline(
            registry=env.registry,
            edge=edge,
            cloud=cloud.node_id,
            depth=depth,
            batch_size=batch_size,
        )
        rounds = run_certify_pipeline(pipeline, cloud, pairs, max_rounds=64)
        assert pipeline.absorbed == len(pairs) and rounds >= 1

    return _time_repeats(name, run, batches_per_repeat * batch_size, repeats)


def bench_cert_pipeline_d1(rng: random.Random, quick: bool) -> BenchResult:
    """Pipelined certification at depth 1: the serial baseline.

    One batch in flight at a time — each round is exactly the per-batch
    exchange of ``certify_batch`` (edge signs the request, cloud verifies
    it and signs the batch root, edge verifies the certificate and derives
    every proof), so this row must track ``certify_batch`` within noise.
    Reported as certified-blocks/s.
    """

    return _bench_cert_pipeline(rng, quick, depth=1, name="cert_pipeline_d1")


def bench_cert_pipeline_d8(rng: random.Random, quick: bool) -> BenchResult:
    """Pipelined certification at depth 8: the windowed fast path.

    Eight batches in flight mean the cloud verifies eight same-edge request
    signatures per burst and the edge verifies eight same-cloud certificate
    roots per burst — both collapse into one Schnorr batch verification
    (~2 exponentiations per burst instead of 2 per batch), leaving only the
    two unavoidable signing exponentiations per batch.  Same reporting unit
    as ``cert_pipeline_d1``; the acceptance target is ≥ 2x over it.
    """

    return _bench_cert_pipeline(rng, quick, depth=8, name="cert_pipeline_d8")


def bench_gossip_per_edge(rng: random.Random, quick: bool) -> BenchResult:
    """Unbatched gossip: one signed message per edge per interval."""

    num_edges = 12 if quick else 24
    repeats = 40 if quick else 120
    registry, cloud, _ = _certification_registry()
    edges = [edge_id(f"bench-edge-{index}") for index in range(num_edges)]
    views = {edge: GossipView(edge=edge) for edge in edges}
    counter = {"repeat": 0}

    def run() -> None:
        counter["repeat"] += 1
        now = float(counter["repeat"])
        for index, edge in enumerate(edges):
            message = build_gossip(registry, cloud, edge, counter["repeat"] + index, now)
            assert verify_gossip(registry, message, cloud=cloud)
            views[edge].update(message)

    return _time_repeats("gossip_per_edge", run, num_edges, repeats)


def bench_gossip_batch(rng: random.Random, quick: bool) -> BenchResult:
    """Batched gossip: one signed multi-edge statement per interval.

    Per repeat: the cloud signs one ``GossipBatchStatement`` covering every
    edge, and each edge's view verifies the one signature and applies its
    own entry.  Reported as edge-statements/s — comparable against
    ``gossip_per_edge``.
    """

    num_edges = 12 if quick else 24
    repeats = 40 if quick else 120
    registry, cloud, _ = _certification_registry()
    edges = [edge_id(f"bench-edge-{index}") for index in range(num_edges)]
    views = {edge: GossipView(edge=edge) for edge in edges}
    counter = {"repeat": 0}

    def run() -> None:
        counter["repeat"] += 1
        now = float(counter["repeat"])
        sizes = {
            edge: counter["repeat"] + index for index, edge in enumerate(edges)
        }
        message = build_gossip_batch(registry, cloud, sizes, now)
        for edge in edges:
            assert verify_gossip(registry, message, cloud=cloud)
            views[edge].update(message)

    return _time_repeats("gossip_batch", run, num_edges, repeats)


def bench_shard_route(rng: random.Random, quick: bool) -> BenchResult:
    """Key → shard → owning edge resolution: the shard-aware client hot path.

    Per routed key: one partitioner hash (consistent-hash ring walk) plus
    one verified-shard-map owner lookup, exactly what every put/get of a
    sharded fleet pays before it leaves the client.  Reported as routed
    keys/s.
    """

    from ..sharding.partitioner import HashRingPartitioner
    from ..sharding.router import ShardRouter
    from ..sharding.shard_map import ShardMapView, build_shard_map_message

    num_shards = 16
    num_edges = 4
    routes_per_repeat = 2000 if quick else 8000
    repeats = 15 if quick else 40
    registry, cloud, _ = _certification_registry()
    edges = [edge_id(f"bench-edge-{index}") for index in range(num_edges)]
    assignments = {
        shard_id: edges[shard_id % num_edges] for shard_id in range(num_shards)
    }
    message = build_shard_map_message(
        registry, cloud, 1, num_shards, "hash-ring", assignments, 1.0
    )
    view = ShardMapView(cloud=cloud)
    assert view.update(registry, message)
    router = ShardRouter(HashRingPartitioner(num_shards), view)
    keys = [f"key{rng.randrange(10**8):012d}" for _ in range(routes_per_repeat)]

    def run() -> None:
        for key in keys:
            route = router.route(key)
            assert route.owner is not None

    return _time_repeats("shard_route", run, routes_per_repeat, repeats)


def bench_shard_handoff(rng: random.Random, quick: bool) -> BenchResult:
    """The certified shard-handoff crypto pipeline, end to end.

    Per handoff of a 32-block shard: the source signs the offer (certified
    log prefix + state digest), the cloud verifies it, recomputes the state
    digest from its mirror digests, and countersigns the grant plus the
    refreshed shard map, and the destination verifies the certificate and
    recomputes the state digest from the transferred digests.  Reported as
    handoffs/s.
    """

    from ..messages.shard_messages import (
        HandoffGrantStatement,
        ShardHandoffCertificate,
        ShardHandoffStatement,
    )
    from ..sharding.handoff import shard_state_digest
    from ..sharding.shard_map import build_shard_map_message

    num_blocks = 32
    repeats = 30 if quick else 100
    registry, cloud, source = _certification_registry()
    dest = edge_id("bench-edge-dest")
    registry.register(dest)
    blocks = tuple(_make_digest_pairs(rng, num_blocks))
    level_roots = tuple(f"{rng.getrandbits(256):064x}" for _ in range(3))
    assignments = {0: source, 1: dest}
    counter = {"repeat": 0}

    def run() -> None:
        counter["repeat"] += 1
        now = float(counter["repeat"])
        digest = shard_state_digest(0, level_roots, blocks)
        offer = ShardHandoffStatement(
            edge=source,
            dest=dest,
            shard_id=0,
            blocks=blocks,
            state_digest=digest,
            issued_at=now,
        )
        offer_sig = registry.sign(source, offer)
        # Cloud side: verify the offer, recompute, countersign, re-sign map.
        assert registry.verify(offer_sig, offer)
        assert shard_state_digest(0, level_roots, offer.blocks) == offer.state_digest
        grant = HandoffGrantStatement(
            cloud=cloud,
            source=source,
            dest=dest,
            shard_id=0,
            map_version=counter["repeat"] + 1,
            state_digest=digest,
            num_blocks=num_blocks,
            issued_at=now,
        )
        certificate = ShardHandoffCertificate(
            statement=grant, signature=registry.sign(cloud, grant)
        )
        build_shard_map_message(
            registry, cloud, counter["repeat"] + 1, 2, "hash-ring", assignments, now
        )
        # Destination side: verify the certificate and the received digests.
        assert certificate.verify(registry)
        assert shard_state_digest(0, level_roots, blocks) == certificate.state_digest

    return _time_repeats("shard_handoff", run, 1, repeats)


def bench_txn_cross_shard(rng: random.Random, quick: bool) -> BenchResult:
    """The cross-shard 2PC crypto pipeline, end to end (HMAC substrate).

    Per transaction spanning 2 participant shards: the coordinator signs
    the client entries and one prepare statement per shard, each
    participant verifies the statement and signs a prepare receipt bound to
    the staged write set, the coordinator verifies both receipts and signs
    the commit decision, and each participant verifies the decision.  That
    is every signature the protocol adds on top of the ordinary put path
    (the commit block's Phase I receipt and certification are charged to
    the existing rows).  Reported as transactions/s.
    """

    from ..crypto.hashing import digest_value
    from ..log.entry import make_entry
    from ..lsmerkle.codec import encode_put
    from ..messages.txn_messages import (
        TXN_COMMIT,
        TxnDecisionMessage,
        TxnDecisionStatement,
        TxnId,
        TxnPrepareReceipt,
        TxnPrepareReceiptStatement,
        TxnPrepareStatement,
        TxnWrite,
    )

    num_shards = 2
    writes_per_shard = 4
    repeats = 40 if quick else 150
    txns_per_repeat = 5
    registry, cloud, edge_a = _certification_registry()
    edge_b = edge_id("bench-edge-b")
    coordinator = client_id("bench-coordinator")
    registry.register(edge_b)
    registry.register(coordinator)
    edges = (edge_a, edge_b)
    items = [
        [
            (f"key{rng.randrange(10**8):012d}", bytes(rng.getrandbits(8) for _ in range(64)))
            for _ in range(writes_per_shard)
        ]
        for _ in range(num_shards)
    ]
    counter = {"txn": 0, "entry": 0}

    def run() -> None:
        for _ in range(txns_per_repeat):
            counter["txn"] += 1
            txn_id = TxnId(coordinator=coordinator, sequence=counter["txn"])
            now = float(counter["txn"])
            receipts: list[TxnPrepareReceipt] = []
            for shard_id, edge in enumerate(edges):
                entries = []
                writes = []
                for key, value in items[shard_id]:
                    counter["entry"] += 1
                    entries.append(
                        make_entry(
                            registry, coordinator, counter["entry"],
                            encode_put(key, value), now,
                        )
                    )
                    writes.append(TxnWrite(key=key, value_digest=digest_value(value)))
                statement = TxnPrepareStatement(
                    coordinator=coordinator,
                    txn_id=txn_id,
                    shard_id=shard_id,
                    writes=tuple(writes),
                    participant_shards=(0, 1),
                    staged_floor=counter["txn"],
                    issued_at=now,
                )
                signature = registry.sign(coordinator, statement)
                # Participant side: verify the prepare, sign the receipt.
                assert registry.verify(signature, statement)
                receipt_statement = TxnPrepareReceiptStatement(
                    edge=edge,
                    txn_id=txn_id,
                    shard_id=shard_id,
                    log_position=counter["txn"],
                    writes=statement.writes,
                    prepare_digest=digest_value(statement),
                    prepared_at=now,
                    expires_at=now + 5.0,
                )
                receipts.append(
                    TxnPrepareReceipt(
                        statement=receipt_statement,
                        signature=registry.sign(edge, receipt_statement),
                    )
                )
            # Coordinator side: verify every receipt, sign the decision.
            for receipt in receipts:
                assert receipt.verify(registry)
            decision_statement = TxnDecisionStatement(
                coordinator=coordinator,
                txn_id=txn_id,
                decision=TXN_COMMIT,
                participant_shards=(0, 1),
                decided_at=now,
            )
            decision = TxnDecisionMessage(
                statement=decision_statement,
                signature=registry.sign(coordinator, decision_statement),
            )
            # Each participant verifies the decision before applying.
            for _edge in edges:
                assert decision.verify(registry)

    return _time_repeats("txn_cross_shard", run, txns_per_repeat, repeats)


def bench_durable_put(rng: random.Random, quick: bool) -> BenchResult:
    """Durable Phase I append rate: block + receipt into the segment log.

    Each repeat opens a fresh :class:`~repro.storage.store.PartitionStore`
    and appends pre-built blocks with their Phase I receipts under the
    benchmarked default fsync policy (``"on_seal"``) — the disk cost a
    durable edge pays on top of the in-memory put pipeline.  Reported as
    puts (log entries)/s.
    """

    from ..storage.store import PartitionStore

    num_blocks = 16 if quick else 64
    entries_per_block = 4
    repeats = 5 if quick else 10
    registry, _cloud, edge = _certification_registry()
    blocks = _make_blocks(rng, num_blocks, entries_per_block)
    receipts = [
        issue_phase_one_receipt(registry, edge, block, block.created_at)
        for block in blocks
    ]
    root = tempfile.mkdtemp(prefix="bench-durable-put-")
    storage = StorageConfig(
        backend="disk", root_dir=root, fsync="on_seal", segment_max_bytes=1 << 18
    )
    counter = {"run": 0}

    def run() -> None:
        directory = os.path.join(root, f"run-{counter['run']:04d}")
        counter["run"] += 1
        store = PartitionStore(directory, storage)
        for block, receipt in zip(blocks, receipts):
            store.append_block(block, receipt)
        store.close()

    try:
        return _time_repeats(
            "durable_put", run, num_blocks * entries_per_block, repeats
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_recovery_replay(rng: random.Random, quick: bool) -> BenchResult:
    """Crash-recovery rate: segment replay into a root-verified partition.

    A store is populated once (blocks, receipts, certification proofs, and
    a manifest carrying a cloud-signed root); each repeat then runs the
    real :func:`~repro.storage.recovery.recover_partition` path — directory
    rescan, decode, log rebuild, proof re-attachment, signed-root
    verification — into a fresh partition state.  Reported as blocks/s
    replayed to a verified root.
    """

    from ..nodes.edge import PartitionState
    from ..storage.recovery import recover_partition
    from ..storage.store import PartitionStore

    num_blocks = 16 if quick else 64
    entries_per_block = 4
    repeats = 5 if quick else 10
    registry, cloud, edge = _certification_registry()
    blocks = _make_blocks(rng, num_blocks, entries_per_block)
    config = SystemConfig()
    root = tempfile.mkdtemp(prefix="bench-recovery-")
    store = PartitionStore(
        os.path.join(root, "partition"),
        StorageConfig(backend="disk", root_dir=root, fsync="never"),
    )
    for block in blocks:
        store.append_block(
            block, issue_phase_one_receipt(registry, edge, block, block.created_at)
        )
        store.append_proof(
            issue_block_proof(
                registry,
                cloud,
                edge,
                block.block_id,
                block.digest(),
                block.created_at + 1.0,
            )
        )
    signed = sign_global_root(
        registry,
        cloud,
        edge,
        PartitionState(owner=edge, config=config).index.level_roots(),
        version=1,
        timestamp=float(num_blocks),
    )
    store.write_manifest(
        next_block_id=num_blocks,
        level_pages={},
        level_zero_blocks=(),
        signed_root=signed,
    )

    def run() -> None:
        state = PartitionState(owner=edge, config=config)
        report = recover_partition(state, store, registry, cloud)
        assert report.ok and report.root_verified
        assert report.blocks_replayed == num_blocks

    try:
        return _time_repeats("recovery_replay", run, num_blocks, repeats)
    finally:
        store.close()
        shutil.rmtree(root, ignore_errors=True)


def bench_obs_overhead(rng: random.Random, quick: bool) -> BenchResult:
    """The ``put_pipeline`` workload with live observability bookkeeping.

    Same record batches and LSM compaction as ``put_pipeline``, plus the
    per-batch work an observability-enabled edge performs: registry-mirrored
    :class:`~repro.obs.metrics.StatsDict` counter updates, a pipeline gauge
    set, and one histogram observation.  Read the instrumentation overhead
    by comparing ops/s against the ``put_pipeline`` row; the chaos suite
    separately asserts the enabled overhead stays under 5% and that
    disabled observability adds zero work to the hot path.
    """

    from ..obs.metrics import MetricsRegistry, StatsDict

    batches = 40 if quick else 120
    batch_size = 100
    repeats = 6 if quick else 12
    batches_of_records = [
        _make_records(rng, batch_size, key_space=batch_size * batches)
        for _ in range(batches)
    ]

    def run() -> None:
        registry = MetricsRegistry("bench-edge")
        stats = StatsDict(registry, {"entries_logged": 0, "blocks_formed": 0})
        latency = registry.histogram("certify_latency_s")
        in_flight = registry.gauge("certify_in_flight", shard="default")
        tree = LSMTree(config=LSMerkleConfig(level_thresholds=(4, 8, 64, 512)))
        for index, records in enumerate(batches_of_records):
            page = build_page(records, created_at=float(index))
            stats["entries_logged"] += len(records)
            stats["blocks_formed"] += 1
            in_flight.set(index % 8)
            latency.observe(0.001 * (index % 50))
            if tree.add_level_zero_page(page):
                tree.compact_all(created_at=float(index))
        assert registry.snapshot()["counters"]["entries_logged"] == batches * batch_size

    return _time_repeats("obs_overhead", run, batches * batch_size, repeats)


def bench_replica_read(rng: random.Random, quick: bool) -> BenchResult:
    """Leased replica reads: route, sticky member pick, lease validation.

    A ``replication_factor=3`` shard map (one certifying writer plus k=2
    read replicas per shard) serves a Zipfian(0.99) read stream.  Per
    read: the client routes the key, picks its sticky replica-set member
    (the crc32 spread that pins a session to one member), and — when the
    pick is a replica — validates the member's freshness lease: the cloud
    signature plus the replica/shard/expiry pins.  That is exactly the
    work a replica read adds on top of the ``get_verify`` proof path; the
    k=0 cost of the same stream is the ``shard_route`` row (route only,
    no member pick, no lease), so the replica-set overhead is the ratio
    of the two.  Reported as reads/s.
    """

    import zlib

    from ..messages.shard_messages import ReplicaLease, ReplicaLeaseStatement
    from ..sharding.partitioner import HashRingPartitioner
    from ..sharding.router import ShardRouter
    from ..sharding.shard_map import ShardMapView, build_shard_map_message
    from ..sim.rng import DeterministicRng
    from ..workloads.generator import KeySpace

    num_shards = 16
    num_edges = 4
    reads_per_repeat = 2000 if quick else 8000
    repeats = 15 if quick else 40
    registry, cloud, _ = _certification_registry()
    client = client_id("bench-client")
    edges = [edge_id(f"bench-edge-{index}") for index in range(num_edges)]
    assignments = {
        shard_id: edges[shard_id % num_edges] for shard_id in range(num_shards)
    }
    replicas = {
        shard_id: (
            edges[(shard_id + 1) % num_edges],
            edges[(shard_id + 2) % num_edges],
        )
        for shard_id in range(num_shards)
    }
    message = build_shard_map_message(
        registry, cloud, 1, num_shards, "hash-ring", assignments, 1.0,
        replicas=replicas,
    )
    view = ShardMapView(cloud=cloud)
    assert view.update(registry, message)
    router = ShardRouter(HashRingPartitioner(num_shards), view)
    leases = {}
    for shard_id in range(num_shards):
        for member in (assignments[shard_id], *replicas[shard_id]):
            statement = ReplicaLeaseStatement(
                cloud=cloud,
                replica=member,
                shard_id=shard_id,
                map_version=1,
                issued_at=1.0,
                expires_at=10.0,
            )
            leases[(shard_id, member)] = ReplicaLease(
                statement=statement, signature=registry.sign(cloud, statement)
            )
    key_space = KeySpace(10_000, distribution="zipfian", zipf_theta=0.99)
    sampler = DeterministicRng(rng.randrange(2**31))
    keys = [key_space.sample(sampler) for _ in range(reads_per_repeat)]

    def run() -> None:
        for key in keys:
            route = router.route(key)
            members = (route.owner, *view.replicas_of(route.shard_id))
            pick = members[
                zlib.crc32(f"{client}:{route.shard_id}".encode())
                % len(members)
            ]
            if pick != route.owner:
                lease = leases[(route.shard_id, pick)]
                assert lease.verify(registry)
                assert lease.statement.cloud == cloud
                assert lease.statement.replica == pick
                assert lease.statement.shard_id == route.shard_id
                assert lease.statement.issued_at <= lease.statement.expires_at

    return _time_repeats("replica_read", run, reads_per_repeat, repeats)


def bench_live_put_p99(rng: random.Random, quick: bool) -> BenchResult:
    """Open-loop Poisson puts against a live 1-edge asyncio fleet.

    The only row measured under real time: a seeded Poisson arrival stream
    of put batches is offered to a 1-cloud/1-edge fleet running on the
    wall-clock asyncio transport (unix sockets, codec-framed messages),
    and per-request Phase I response times are recorded.  ``ops_per_s`` is
    settled requests per second of wall time; the percentile columns are
    the *response-time* percentiles (p50/p90/p99), not per-repeat harness
    times — this is the tail-latency-under-load row the simulator cannot
    produce.  Wall-clock numbers vary with the host, so the row rides in
    ``non_gating`` first, per convention.
    """

    import asyncio

    from ..common.config import WorkloadConfig
    from ..service import LiveFleet
    from ..workloads.openloop import OpenLoopSpec, run_open_loop
    from .runner import config_for_batch

    # ~40 req/s of 100-put batches saturates the single edge on a typical
    # host; offer well below that so the row tracks the service-time tail
    # rather than unbounded saturation queueing.
    batch_size = 100
    num_requests = 50 if quick else 200
    rate = 20.0 if quick else 25.0
    workload = WorkloadConfig(
        num_clients=1,
        batch_size=batch_size,
        value_size=100,
        read_fraction=0.0,
        key_space=10_000,
        operations_per_client=batch_size,
        seed=7,
    )
    spec = OpenLoopSpec(workload=workload, num_requests=num_requests, rate=rate)
    config = config_for_batch(batch_size)

    async def offered_run():
        async with LiveFleet(config=config, num_clients=1) as fleet:
            return await run_open_loop(fleet, spec)

    result = asyncio.run(offered_run())
    percentiles = result.percentiles_s
    return BenchResult(
        name="live_put_p99",
        ops=result.completed,
        repeats=1,
        total_s=result.duration_s,
        ops_per_s=result.throughput_rps,
        p50_ms=percentiles["p50"] * 1000.0,
        p90_ms=percentiles["p90"] * 1000.0,
        p99_ms=percentiles["p99"] * 1000.0,
    )


#: All registered micro-benchmarks, in reporting order.
BENCHMARKS = (
    bench_digest_encode,
    bench_merkle_roots,
    bench_merkle_update,
    bench_page_lookup,
    bench_merge,
    bench_put_pipeline,
    bench_get_verify,
    bench_certify_per_block,
    bench_certify_batch,
    bench_cert_pipeline_d1,
    bench_cert_pipeline_d8,
    bench_gossip_per_edge,
    bench_gossip_batch,
    bench_shard_route,
    bench_shard_handoff,
    bench_txn_cross_shard,
    bench_durable_put,
    bench_recovery_replay,
    bench_obs_overhead,
    bench_replica_read,
    bench_live_put_p99,
)


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
def run_perf_suite(mode: str = "quick", seed: int = 7) -> dict:
    """Run every micro-benchmark and return a JSON-compatible summary."""

    quick = mode != "full"
    results: dict[str, dict] = {}
    for bench in BENCHMARKS:
        rng = random.Random(seed)
        result = bench(rng, quick)
        results[result.name] = asdict(result)
    return {
        "schema": 1,
        "suite": "hotpath",
        "mode": "quick" if quick else "full",
        "seed": seed,
        "python": platform.python_version(),
        "results": results,
    }


def load_seed_reference(path: str = SEED_REFERENCE_PATH) -> Optional[dict]:
    """Load the recorded seed measurement, or ``None`` when absent."""

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def attach_speedups(summary: dict, reference: Optional[dict]) -> dict:
    """Add a ``speedup_vs_seed`` section comparing against *reference*."""

    if not reference or reference.get("mode") != summary.get("mode"):
        summary["speedup_vs_seed"] = None
        return summary
    speedups: dict[str, float] = {}
    for name, result in summary["results"].items():
        ref = reference.get("results", {}).get(name)
        if not ref or not ref.get("ops_per_s"):
            continue
        speedups[name] = round(result["ops_per_s"] / ref["ops_per_s"], 2)
    summary["speedup_vs_seed"] = speedups
    return summary


def format_summary(summary: dict) -> str:
    """Render the suite summary as an aligned text table."""

    lines = [
        f"hot-path perf suite — mode={summary['mode']} seed={summary['seed']} "
        f"python={summary['python']}",
        f"{'benchmark':<16}{'ops/s':>14}{'p50 ms':>10}{'p90 ms':>10}"
        f"{'p99 ms':>10}{'vs seed':>10}",
    ]
    speedups = summary.get("speedup_vs_seed") or {}
    for name, result in summary["results"].items():
        speedup = speedups.get(name)
        lines.append(
            f"{name:<16}{result['ops_per_s']:>14,.0f}{result['p50_ms']:>10.3f}"
            f"{result['p90_ms']:>10.3f}{result['p99_ms']:>10.3f}"
            f"{(f'{speedup:.2f}x' if speedup is not None else '—'):>10}"
        )
    return "\n".join(lines)
