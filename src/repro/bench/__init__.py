"""Benchmark harness: experiment functions, result tables, and the runner."""

from .experiments import (
    FIGURE4_BATCH_SIZES,
    FIGURE5_CLIENT_COUNTS,
    FIGURE6_BATCH_SIZES,
    ablation_data_free_certification,
    ablation_gossip_interval,
    figure4_put_batch_size,
    figure5_multi_client,
    figure5d_best_case_read,
    figure6_commit_phases,
    figure7_vary_cloud_location,
    figure7_vary_edge_location,
    section6e_dataset_size,
    table1_rtt,
)
from .perf import (
    BenchResult,
    attach_speedups,
    format_summary,
    load_seed_reference,
    run_perf_suite,
)
from .results import ResultTable, print_tables
from .runner import (
    SYSTEM_KINDS,
    SYSTEM_LABELS,
    WorkloadMetrics,
    build_system,
    config_for_batch,
    run_workload,
    write_workload,
)

__all__ = [
    "BenchResult",
    "FIGURE4_BATCH_SIZES",
    "FIGURE5_CLIENT_COUNTS",
    "FIGURE6_BATCH_SIZES",
    "ResultTable",
    "attach_speedups",
    "format_summary",
    "load_seed_reference",
    "run_perf_suite",
    "SYSTEM_KINDS",
    "SYSTEM_LABELS",
    "WorkloadMetrics",
    "ablation_data_free_certification",
    "ablation_gossip_interval",
    "build_system",
    "config_for_batch",
    "figure4_put_batch_size",
    "figure5_multi_client",
    "figure5d_best_case_read",
    "figure6_commit_phases",
    "figure7_vary_cloud_location",
    "figure7_vary_edge_location",
    "print_tables",
    "run_workload",
    "section6e_dataset_size",
    "table1_rtt",
    "write_workload",
]
