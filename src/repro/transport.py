"""The explicit node/network boundary shared by every substrate.

Protocol code (nodes, clients, the sharded fleet) never talks to a network
implementation directly — it sends messages and schedules timers through the
small runtime surface its environment exposes.  This module names that
boundary explicitly so the *same* node code runs under two substrates:

* the discrete-event simulator (:class:`repro.sim.network.SimNetwork` under
  :class:`repro.sim.environment.Environment`), which reproduces the paper's
  calibrated latency/bandwidth model byte-exactly; and
* the wall-clock asyncio service harness
  (:class:`repro.service.transport.AsyncioTransport` under
  :class:`repro.service.runtime.LiveEnvironment`), which frames the same
  canonical-encoded messages over real TCP or unix-domain sockets.

Two protocols define the boundary:

:class:`Transport`
    What an environment needs from a message-delivery substrate: endpoint
    registration, ``send``, traffic stats, composable send hooks, and the
    offline (crash) gate.  ``SimNetwork`` conforms structurally — its
    behaviour is pinned byte-identical by the figure-4/5 regression tests —
    and ``AsyncioTransport`` implements the same surface over sockets.

:class:`NodeRuntime`
    What a node needs from its environment: ``send``, ``schedule``,
    ``schedule_periodic``, ``now``, ``charge``, the shared key registry,
    the calibration parameters, ``attach``, and ``ensure_observability``.
    This is the *entire* surface the node implementations use (grep-audited:
    message handlers never reach into the scheduler or the network), which
    is what makes them transport-agnostic.

The boundary types that both substrates share — :class:`NetworkEndpoint`,
:class:`NetworkStats`, :func:`message_wire_size`, :data:`SendHook` — live
here as well; :mod:`repro.sim.network` re-exports them for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from .common.encoding import encoded_size
from .common.identifiers import NodeId
from .common.regions import Region


class NetworkEndpoint(Protocol):
    """The minimal interface a node must expose to be attached to a transport."""

    node_id: NodeId
    region: Region

    def deliver(self, sender: NodeId, message: Any) -> None:
        """Called by the transport when a message arrives at this node."""


def message_wire_size(message: Any) -> int:
    """Size in bytes a message occupies on the wire."""

    size = getattr(message, "wire_size", None)
    if size is not None:
        return int(size)
    return encoded_size(message)


@dataclass
class NetworkStats:
    """Aggregate traffic counters, split by link class.

    The data-free certification claim of the paper is fundamentally a
    bandwidth claim, so every transport keeps byte counters that the
    ablation benchmarks report.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    wan_messages: int = 0
    wan_bytes: int = 0
    lan_messages: int = 0
    lan_bytes: int = 0
    #: Sends vetoed by a hook plus deliveries dropped at an offline node.
    dropped_sends: int = 0
    dropped_deliveries: int = 0
    per_link_bytes: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def record(self, src: NodeId, dst: NodeId, size: int, wan: bool) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        if wan:
            self.wan_messages += 1
            self.wan_bytes += size
        else:
            self.lan_messages += 1
            self.lan_bytes += size
        key = (str(src), str(dst))
        self.per_link_bytes[key] = self.per_link_bytes.get(key, 0) + size


#: A send hook: ``(src, dst, message) -> deliver?``.  Returning ``False``
#: vetoes the delivery; the send is reported as never arriving.
SendHook = Callable[[NodeId, NodeId, Any], bool]


@runtime_checkable
class Transport(Protocol):
    """What an environment needs from a message-delivery substrate."""

    stats: NetworkStats

    def register(self, node: NetworkEndpoint) -> None:
        """Attach *node* so it can send and receive messages."""

    def node(self, node_id: NodeId) -> NetworkEndpoint:
        """The registered endpoint for *node_id* (raises on unknown ids)."""

    def knows(self, node_id: NodeId) -> bool:
        """Whether *node_id* is registered."""

    def send(
        self,
        src_id: NodeId,
        dst_id: NodeId,
        message: Any,
        depart_at: Optional[float] = None,
    ) -> float:
        """Deliver *message* from *src_id* to *dst_id*.

        Returns the (estimated) delivery time on the transport's clock, or
        ``inf`` when the send was vetoed or the sender is offline.
        """

    def add_send_hook(self, name: str, hook: SendHook) -> None:
        """Register a named, composable send predicate (fault injection)."""

    def remove_send_hook(self, name: str) -> None:
        """Unregister a hook by name (idempotent)."""

    def set_offline(self, node_id: NodeId, offline: bool = True) -> None:
        """Mark a node crashed (or back up); offline nodes lose all traffic."""

    def is_offline(self, node_id: NodeId) -> bool:
        """Whether *node_id* is currently marked crashed."""


class NodeRuntime(Protocol):
    """The environment surface node implementations are written against.

    Both :class:`repro.sim.environment.Environment` (simulated clock,
    charged CPU model) and :class:`repro.service.runtime.LiveEnvironment`
    (wall clock, real CPU) satisfy this protocol, which is the precise
    sense in which ``CloudNode``/``EdgeNode``/``ShardedEdgeNode``/``Client``
    are transport-agnostic.
    """

    registry: Any
    params: Any
    obs: Any

    def attach(self, node: Any) -> None:
        """Register a node with the transport and the key registry."""

    def ensure_observability(self, config: Any) -> Optional[Any]:
        """Shared observability bundle, or ``None`` when disabled."""

    def now(self) -> float:
        """Current time in seconds on this substrate's clock."""

    def charge(self, seconds: float) -> None:
        """Account CPU time (simulated substrate) or no-op (wall clock)."""

    def send(self, src: NodeId, dst: NodeId, message: Any) -> float:
        """Send a message from *src* to *dst*."""

    def schedule(self, delay: float, callback: Callable[[], None], label: str = ""):
        """Run *callback* after *delay* seconds; returns a cancellable handle."""

    def schedule_periodic(
        self, interval: float, callback: Callable[[], None], label: str = ""
    ) -> Callable[[], None]:
        """Run *callback* every *interval* seconds; returns a stopper."""
