"""Reproduction of *WedgeChain: A Trusted Edge-Cloud Store With Asynchronous
(Lazy) Trust* (Faisal Nawab, ICDE 2021).

The package is organised as a set of substrates (crypto, simulation, log,
Merkle, LSM), the WedgeChain core (lazy certification, commits, disputes,
the system facade), the LSMerkle index, the two baselines the paper compares
against, workload generators, and a benchmark harness that regenerates every
table and figure of the evaluation.

Quick start::

    from repro import WedgeChainSystem

    system = WedgeChainSystem.build(num_clients=1)
    client = system.client()
    op = client.put_batch([("sensor-42", b"21.5C")])
    system.wait_for(client, op)          # runs the simulation to Phase II
    print(client.operation(op).phase)    # CommitPhase.PHASE_TWO
"""

from .baselines import CloudOnlySystem, EdgeBaselineSystem
from .common import (
    LoggingConfig,
    LSMerkleConfig,
    PlacementConfig,
    Region,
    SecurityConfig,
    SystemConfig,
    WorkloadConfig,
)
from .core import CommitTracker, PunishmentLedger, WedgeChainSystem
from .log import CommitPhase
from .nodes import Client, CloudNode, EdgeNode
from .sim import Environment, SimulationParameters, Topology, paper_topology
from .workloads import ClosedLoopDriver, KeyValueWorkload

__version__ = "1.0.0"

__all__ = [
    "Client",
    "ClosedLoopDriver",
    "CloudNode",
    "CloudOnlySystem",
    "CommitPhase",
    "CommitTracker",
    "EdgeBaselineSystem",
    "EdgeNode",
    "Environment",
    "KeyValueWorkload",
    "LSMerkleConfig",
    "LoggingConfig",
    "PlacementConfig",
    "PunishmentLedger",
    "Region",
    "SecurityConfig",
    "SimulationParameters",
    "SystemConfig",
    "Topology",
    "WedgeChainSystem",
    "WorkloadConfig",
    "__version__",
    "paper_topology",
]
