"""Freshness windows for LSMerkle reads (Section V-D).

LSMerkle guarantees that a read returns a value from *some* consistent
snapshot, but a lazy edge node could serve an arbitrarily stale snapshot.
The freshness extension bounds this staleness: the cloud timestamps every
signed global root, and the client rejects responses whose root is older
than the configured window, retrying the request instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import ConfigurationError, FreshnessViolationError
from .mlsm import SignedGlobalRoot


@dataclass(frozen=True)
class FreshnessPolicy:
    """Client-side policy for accepting or rejecting read responses."""

    #: Maximum acceptable age of the signed global root, in seconds.
    #: ``None`` disables freshness checking entirely.
    window_s: Optional[float] = None
    #: Assumed bound on clock synchronization error between client and cloud
    #: (Section V-D discusses 10s–100s of milliseconds); added to the window.
    clock_skew_s: float = 0.1

    def __post_init__(self) -> None:
        if self.window_s is not None and self.window_s <= 0:
            raise ConfigurationError("freshness window must be positive")
        if self.clock_skew_s < 0:
            raise ConfigurationError("clock skew bound must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.window_s is not None

    def effective_window(self) -> Optional[float]:
        if self.window_s is None:
            return None
        return self.window_s + self.clock_skew_s

    def age_of(self, signed_root: SignedGlobalRoot, now: float) -> float:
        return now - signed_root.statement.timestamp

    def is_fresh(self, signed_root: Optional[SignedGlobalRoot], now: float) -> bool:
        """Whether a response carrying *signed_root* satisfies the window."""

        if not self.enabled:
            return True
        if signed_root is None:
            return False
        return self.age_of(signed_root, now) <= self.effective_window()

    def require_fresh(self, signed_root: Optional[SignedGlobalRoot], now: float) -> None:
        """Raise :class:`FreshnessViolationError` for stale responses."""

        if self.is_fresh(signed_root, now):
            return
        if signed_root is None:
            raise FreshnessViolationError(
                "freshness window configured but the response has no signed root"
            )
        raise FreshnessViolationError(
            f"signed root is {self.age_of(signed_root, now):.3f}s old, window is "
            f"{self.effective_window():.3f}s"
        )
