"""Construction and verification of LSMerkle read (get) proofs.

A get response must convince the client that the returned value is the most
recent version of the key (Section V-B "Reading"):

* every level-0 page is returned (as its source block plus, when available,
  the cloud's block proof), because any of them could hold a newer version;
* for each Merkle-tracked level between level 0 and the level where the value
  was found, the single page whose key fence covers the key is returned with
  a Merkle inclusion proof against the cloud-signed level root;
* the cloud-signed global root statement authenticates the level roots and
  carries the timestamp used by the freshness window (Section V-D).

If some level-0 blocks are not yet certified the read is only Phase I
committed — the client keeps the signed response as dispute evidence and
upgrades to Phase II when the block proofs arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..common.errors import ProofVerificationError
from ..common.identifiers import BlockId, NodeId
from ..crypto.signatures import KeyRegistry
from ..log.block import Block
from ..log.proofs import BlockProof, CommitPhase
from ..lsm.page import Page
from ..lsm.records import KVRecord
from ..merkle.tree import InclusionProof
from .codec import records_from_block
from .mlsm import MerkleizedLSM, SignedGlobalRoot, empty_level_root


@dataclass(frozen=True)
class LevelZeroEvidence:
    """One level-0 page, presented as its source block plus certification."""

    block: Block
    proof: Optional[BlockProof] = None

    @property
    def block_id(self) -> BlockId:
        return self.block.block_id

    @property
    def is_certified(self) -> bool:
        return self.proof is not None

    @property
    def wire_size(self) -> int:
        size = self.block.wire_size
        if self.proof is not None:
            size += self.proof.wire_size
        return size


@dataclass(frozen=True)
class LevelPageEvidence:
    """The intersecting page of one Merkle-tracked level plus its proof."""

    level_index: int
    page: Page
    inclusion: InclusionProof

    @property
    def wire_size(self) -> int:
        return self.page.wire_size + self.inclusion.wire_size


@dataclass(frozen=True)
class GetProof:
    """Everything attached to a get response besides the value itself."""

    key: str
    level_zero: tuple[LevelZeroEvidence, ...]
    level_pages: tuple[LevelPageEvidence, ...]
    signed_root: Optional[SignedGlobalRoot]

    @property
    def wire_size(self) -> int:
        size = 64
        size += sum(item.wire_size for item in self.level_zero)
        size += sum(item.wire_size for item in self.level_pages)
        if self.signed_root is not None:
            size += self.signed_root.wire_size
        return size

    @property
    def uncertified_block_ids(self) -> tuple[BlockId, ...]:
        return tuple(
            evidence.block_id for evidence in self.level_zero if not evidence.is_certified
        )


@dataclass(frozen=True)
class VerifiedGet:
    """Result of verifying a get proof at the client."""

    found: bool
    record: Optional[KVRecord]
    phase: CommitPhase
    uncertified_block_ids: tuple[BlockId, ...]
    root_timestamp: Optional[float]
    #: Version of the signed global root the response was verified against
    #: (``None`` before the first merge).  Clients implementing session
    #: consistency (Section V-D alternative) reject responses whose version
    #: is older than one they have already observed.
    root_version: Optional[int] = None


# ----------------------------------------------------------------------
# Proof construction (edge side)
# ----------------------------------------------------------------------
def build_get_proof(
    key: str,
    index: MerkleizedLSM,
    level_zero_blocks: Sequence[tuple[Block, Optional[BlockProof]]],
    signed_root: Optional[SignedGlobalRoot],
    found_level: Optional[int],
) -> GetProof:
    """Assemble a get proof at the edge node.

    ``level_zero_blocks`` are the blocks backing the current level-0 pages in
    arrival order.  ``found_level`` is the level where the newest version was
    found (``None`` when the key was found in level 0 or not found at all —
    in the not-found case evidence from every level is attached).
    """

    level_zero = tuple(
        LevelZeroEvidence(block=block, proof=proof)
        for block, proof in level_zero_blocks
    )

    level_pages: list[LevelPageEvidence] = []
    if found_level == 0:
        deepest = 0
    elif found_level is None:
        deepest = index.num_levels - 1
    else:
        deepest = found_level
    for level in index.tree.levels[1:]:
        if level.index > deepest:
            break
        page = level.intersecting_page(key)
        if page is None:
            continue
        inclusion = index.prove_page(level.index, page)
        level_pages.append(
            LevelPageEvidence(level_index=level.index, page=page, inclusion=inclusion)
        )
    return GetProof(
        key=key,
        level_zero=level_zero,
        level_pages=tuple(level_pages),
        signed_root=signed_root,
    )


# ----------------------------------------------------------------------
# Proof verification (client side)
# ----------------------------------------------------------------------
def _verify_level_zero(
    registry: KeyRegistry,
    edge: NodeId,
    evidence: Sequence[LevelZeroEvidence],
    provenance: Sequence[NodeId] = (),
) -> None:
    """Pin every level-0 block (and its proof) to a permitted writer.

    ``provenance`` extends the single expected writer with prior writers of
    a replicated shard: after a failover promotion the certified blocks of
    the deposed writer legitimately remain in the promoted state, and a
    replica serves the current writer's blocks.  Each block's certificate
    must still name the block's own writer — provenance widens *which*
    writers are acceptable, never the binding between block and proof.
    """

    allowed = {edge, *provenance}
    for item in evidence:
        if item.block.edge not in allowed:
            raise ProofVerificationError(
                f"level-0 block {item.block_id} belongs to {item.block.edge}, "
                f"expected one of {sorted(allowed)}"
            )
        if item.proof is None:
            continue
        recomputed = item.block.digest()
        if item.proof.block_digest != recomputed:
            raise ProofVerificationError(
                f"block proof digest mismatch for block {item.block_id}"
            )
        if item.proof.edge != item.block.edge or item.proof.block_id != item.block_id:
            raise ProofVerificationError(
                f"block proof identity mismatch for block {item.block_id}"
            )
        if not item.proof.verify_cached(registry):
            raise ProofVerificationError(
                f"block proof signature invalid for block {item.block_id}"
            )


def _verify_level_pages(
    key: str,
    evidence: Sequence[LevelPageEvidence],
    signed_root: Optional[SignedGlobalRoot],
) -> None:
    if not evidence:
        return
    if signed_root is None:
        raise ProofVerificationError(
            "level pages presented without a signed global root"
        )
    level_roots = signed_root.statement.level_roots
    for item in evidence:
        root_index = item.level_index - 1
        if not 0 <= root_index < len(level_roots):
            raise ProofVerificationError(
                f"level {item.level_index} outside the signed root's levels"
            )
        if item.inclusion.leaf_digest != item.page.digest():
            raise ProofVerificationError(
                f"inclusion proof leaf does not match page digest at level "
                f"{item.level_index}"
            )
        if not item.inclusion.verifies_against(level_roots[root_index]):
            raise ProofVerificationError(
                f"inclusion proof does not verify against level "
                f"{item.level_index} root"
            )
        if not item.page.could_contain(key):
            raise ProofVerificationError(
                f"returned page at level {item.level_index} does not cover key "
                f"{key!r}"
            )


def _coverage_satisfied(
    key: str,
    found_level: Optional[int],
    evidence_by_level: dict[int, LevelPageEvidence],
    signed_root: Optional[SignedGlobalRoot],
) -> None:
    """Check that every level that could hide a newer version was disclosed."""

    if signed_root is None:
        # Before the first merge there are no Merkle-tracked levels to cover.
        if evidence_by_level:
            raise ProofVerificationError(
                "level evidence requires a signed global root"
            )
        return
    level_roots = signed_root.statement.level_roots
    deepest_required = (
        len(level_roots) if found_level is None else max(found_level - 1, 0)
    )
    for level_index in range(1, deepest_required + 1):
        if level_index in evidence_by_level:
            continue
        root = level_roots[level_index - 1]
        if root != empty_level_root():
            raise ProofVerificationError(
                f"no evidence for non-empty level {level_index}"
            )


def verify_get_proof(
    registry: KeyRegistry,
    cloud: Optional[NodeId],
    edge: NodeId,
    key: str,
    proof: GetProof,
    now: Optional[float] = None,
    freshness_window_s: Optional[float] = None,
    provenance: Sequence[NodeId] = (),
) -> VerifiedGet:
    """Verify a get proof and independently derive the correct answer.

    The function *recomputes* the newest version of the key from the returned
    evidence rather than trusting any value field in the response; the caller
    compares the derived record with the value the edge claimed.
    """

    if proof.key != key:
        raise ProofVerificationError(
            f"proof is for key {proof.key!r}, expected {key!r}"
        )

    if proof.signed_root is not None and not proof.signed_root.verify_cached(
        registry, cloud
    ):
        raise ProofVerificationError("signed global root failed verification")

    _verify_level_zero(registry, edge, proof.level_zero, provenance=provenance)

    # Newest version present in level 0, derived from the blocks themselves.
    level_zero_best: Optional[KVRecord] = None
    for item in proof.level_zero:
        for record in records_from_block(item.block):
            if record.key != key:
                continue
            if level_zero_best is None or record.is_newer_than(level_zero_best):
                level_zero_best = record

    _verify_level_pages(key, proof.level_pages, proof.signed_root)
    evidence_by_level = {item.level_index: item for item in proof.level_pages}

    derived: Optional[KVRecord] = level_zero_best
    found_level: Optional[int] = 0 if level_zero_best is not None else None
    if derived is None:
        for level_index in sorted(evidence_by_level):
            record = evidence_by_level[level_index].page.lookup(key)
            if record is not None:
                derived = record
                found_level = level_index
                break

    _coverage_satisfied(key, found_level, evidence_by_level, proof.signed_root)

    if freshness_window_s is not None:
        if proof.signed_root is None:
            raise ProofVerificationError(
                "freshness window requested but no signed root returned"
            )
        if now is None:
            raise ProofVerificationError("freshness check requires the current time")
        age = now - proof.signed_root.statement.timestamp
        if age > freshness_window_s:
            raise ProofVerificationError(
                f"signed root is {age:.3f}s old, beyond the freshness window of "
                f"{freshness_window_s:.3f}s"
            )

    uncertified = proof.uncertified_block_ids
    phase = CommitPhase.PHASE_TWO if not uncertified else CommitPhase.PHASE_ONE
    root_timestamp = (
        proof.signed_root.statement.timestamp if proof.signed_root is not None else None
    )
    root_version = (
        proof.signed_root.statement.version if proof.signed_root is not None else None
    )
    return VerifiedGet(
        found=derived is not None,
        record=derived,
        phase=phase,
        uncertified_block_ids=uncertified,
        root_timestamp=root_timestamp,
        root_version=root_version,
    )
