"""The cloud-coordinated merge (compaction) protocol of LSMerkle.

When a level of the edge's LSMerkle tree exceeds its threshold, the edge
sends the pages undergoing the merge to the cloud node (Section V-B
"Merging").  The cloud:

1. verifies the authenticity of the received state — level-0 pages are
   checked against the block digests it certified earlier, higher-level pages
   against the page digests it produced in previous merges;
2. performs the LSM merge (dropping stale versions);
3. recomputes the affected level's Merkle tree, re-signs the global root, and
   returns the merged pages plus the new :class:`SignedGlobalRoot`.

The cloud keeps only digests of the index state (:class:`CloudIndexMirror`),
never the data itself, preserving the data-free spirit for everything except
the merge traffic the paper explicitly accounts for.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..common.config import LSMerkleConfig
from ..common.errors import MergeProtocolError
from ..common.identifiers import BlockId, NodeId
from ..crypto.signatures import KeyRegistry
from ..log.block import Block
from ..lsm.compaction import merge_levels
from ..lsm.page import Page
from ..merkle.tree import MerkleTree
from .codec import page_from_block
from .mlsm import SignedGlobalRoot, sign_global_root


@dataclass(frozen=True)
class MergeProposal:
    """What the edge sends to the cloud to request a merge.

    For a level-0 merge the source state is the list of *blocks* backing the
    level-0 pages (the cloud verifies them against certified digests and
    derives the pages itself).  For higher levels the source state is the
    pages, verified against the cloud's digest mirror.
    """

    edge: NodeId
    level_index: int
    source_blocks: tuple[Block, ...] = ()
    source_pages: tuple[Page, ...] = ()
    target_pages: tuple[Page, ...] = ()
    #: Shard the merge concerns (sharded fleets keep one index — and one
    #: cloud mirror — per shard; ``None`` for the single-partition system).
    shard_id: Optional[int] = None

    @property
    def wire_size(self) -> int:
        size = 64
        size += sum(block.wire_size for block in self.source_blocks)
        size += sum(page.wire_size for page in self.source_pages)
        size += sum(page.wire_size for page in self.target_pages)
        return size


@dataclass(frozen=True)
class MergeOutcome:
    """What the cloud returns: the merged pages and the fresh signed root."""

    edge: NodeId
    level_index: int
    merged_pages: tuple[Page, ...]
    signed_root: SignedGlobalRoot
    records_in: int
    records_out: int
    #: Echoed from the proposal so the edge routes the outcome to the
    #: right shard's index (``None`` for the single-partition system).
    shard_id: Optional[int] = None

    @property
    def wire_size(self) -> int:
        return (
            96
            + sum(page.wire_size for page in self.merged_pages)
            + self.signed_root.wire_size
        )


@dataclass
class CloudIndexMirror:
    """The cloud's digest-level view of one edge node's LSMerkle tree."""

    edge: NodeId
    config: LSMerkleConfig
    page_capacity: int = 100
    #: Page digests per level (index 0 unused — level 0 is covered by block
    #: certification, not by the mirror).
    level_page_digests: list[list[str]] = field(default_factory=list)
    version: int = 0
    #: Block ids already consumed by a level-0 merge (prevents replaying the
    #: same blocks into the index twice).
    merged_block_ids: set[BlockId] = field(default_factory=set)
    #: Memoized per-level Merkle roots, keyed by level index and guarded by a
    #: fingerprint of the digest list so direct mutation of
    #: ``level_page_digests`` can never serve a stale root.
    _root_cache: dict[int, tuple[tuple[str, ...], str]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.level_page_digests:
            self.level_page_digests = [[] for _ in range(self.config.num_levels)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def level_roots(self) -> tuple[str, ...]:
        roots: list[str] = []
        for level_index, digests in enumerate(self.level_page_digests[1:], start=1):
            fingerprint = tuple(digests)
            cached = self._root_cache.get(level_index)
            if cached is not None and cached[0] == fingerprint:
                roots.append(cached[1])
                continue
            root = MerkleTree(fingerprint).root
            self._root_cache[level_index] = (fingerprint, root)
            roots.append(root)
        return tuple(roots)

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------
    def _verify_level_zero_sources(
        self,
        proposal: MergeProposal,
        certified_digests: dict[BlockId, str],
    ) -> list[Page]:
        pages: list[Page] = []
        for block in proposal.source_blocks:
            recomputed = block.digest()
            certified = certified_digests.get(block.block_id)
            if certified is None:
                raise MergeProtocolError(
                    f"block {block.block_id} from {proposal.edge} was never certified"
                )
            if certified != recomputed:
                raise MergeProtocolError(
                    f"block {block.block_id} content does not match its certified "
                    "digest — edge node flagged as malicious"
                )
            if block.block_id in self.merged_block_ids:
                raise MergeProtocolError(
                    f"block {block.block_id} was already merged into the index"
                )
            page = page_from_block(block)
            if page is not None:
                pages.append(page)
        return pages

    def _verify_page_digests(
        self, pages: Sequence[Page], level_index: int, label: str
    ) -> None:
        expected = Counter(self.level_page_digests[level_index])
        received = Counter(page.digest() for page in pages)
        if received != expected:
            raise MergeProtocolError(
                f"{label} pages for level {level_index} of {self.edge} do not match "
                "the cloud's digest mirror"
            )

    # ------------------------------------------------------------------
    # Merge execution
    # ------------------------------------------------------------------
    def execute_merge(
        self,
        proposal: MergeProposal,
        certified_digests: dict[BlockId, str],
        registry: KeyRegistry,
        cloud: NodeId,
        now: float,
    ) -> MergeOutcome:
        """Verify a merge proposal, perform the merge, and sign the new root."""

        level_index = proposal.level_index
        if not 0 <= level_index < self.config.num_levels - 1:
            raise MergeProtocolError(
                f"cannot merge level {level_index} of {self.config.num_levels}"
            )

        if level_index == 0:
            source_pages = self._verify_level_zero_sources(proposal, certified_digests)
        else:
            self._verify_page_digests(proposal.source_pages, level_index, "source")
            source_pages = list(proposal.source_pages)

        self._verify_page_digests(proposal.target_pages, level_index + 1, "target")

        result = merge_levels(
            source_pages,
            proposal.target_pages,
            created_at=now,
            page_capacity=self.page_capacity,
        )

        # Update the digest mirror.
        if level_index == 0:
            self.merged_block_ids.update(
                block.block_id for block in proposal.source_blocks
            )
        else:
            self.level_page_digests[level_index] = []
        self.level_page_digests[level_index + 1] = [
            page.digest() for page in result.pages
        ]
        self.version += 1

        signed_root = sign_global_root(
            registry=registry,
            cloud=cloud,
            edge=self.edge,
            level_roots=self.level_roots(),
            version=self.version,
            timestamp=now,
        )
        return MergeOutcome(
            edge=self.edge,
            level_index=level_index,
            merged_pages=result.pages,
            signed_root=signed_root,
            records_in=result.records_in,
            records_out=result.records_out,
            shard_id=proposal.shard_id,
        )

    def sign_current_root(
        self, registry: KeyRegistry, cloud: NodeId, now: float
    ) -> SignedGlobalRoot:
        """Re-sign the current roots with a fresh timestamp (no-op merge).

        Used to refresh the freshness window when updates are infrequent
        (Section V-D: the edge can trigger no-op root refreshes).
        """

        self.version += 1
        return sign_global_root(
            registry=registry,
            cloud=cloud,
            edge=self.edge,
            level_roots=self.level_roots(),
            version=self.version,
            timestamp=now,
        )
