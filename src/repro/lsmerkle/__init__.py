"""LSMerkle: the trusted, fast-ingestion key-value index of WedgeChain."""

from .codec import (
    SEQUENCE_STRIDE,
    decode_put,
    encode_put,
    is_put_payload,
    page_from_block,
    record_sequence,
    records_from_block,
)
from .freshness import FreshnessPolicy
from .merge import CloudIndexMirror, MergeOutcome, MergeProposal
from .mlsm import (
    GlobalRootStatement,
    MerkleizedLSM,
    SignedGlobalRoot,
    compute_global_root,
    empty_level_root,
    sign_global_root,
)
from .read_proof import (
    GetProof,
    LevelPageEvidence,
    LevelZeroEvidence,
    VerifiedGet,
    build_get_proof,
    verify_get_proof,
)

__all__ = [
    "CloudIndexMirror",
    "FreshnessPolicy",
    "GetProof",
    "GlobalRootStatement",
    "LevelPageEvidence",
    "LevelZeroEvidence",
    "MergeOutcome",
    "MergeProposal",
    "MerkleizedLSM",
    "SEQUENCE_STRIDE",
    "SignedGlobalRoot",
    "VerifiedGet",
    "build_get_proof",
    "compute_global_root",
    "decode_put",
    "empty_level_root",
    "encode_put",
    "is_put_payload",
    "page_from_block",
    "record_sequence",
    "records_from_block",
    "sign_global_root",
    "verify_get_proof",
]
