"""The merkleized LSM structure (mLSM) and cloud-signed global roots.

mLSM (Raju et al., HotStorage'18) combines an LSM tree with Merkle trees: the
pages of every level above 0 are leaves of a per-level Merkle tree, and a
*global root* commits to all level roots.  LSMerkle adopts this structure at
the edge and replaces the memory component (level 0) with the WedgeChain
log/buffer whose pages are certified lazily through block proofs.

The trusted cloud node signs a :class:`GlobalRootStatement` whenever it
performs a merge; that signed statement is what read proofs are verified
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..common.config import LSMerkleConfig
from ..common.errors import ProofVerificationError
from ..common.identifiers import NodeId
from ..crypto.hashing import digest_chain
from ..crypto.signatures import KeyRegistry, Signature
from ..lsm.lsm_tree import LSMTree
from ..lsm.page import Page
from ..merkle.tree import InclusionProof, MerkleTree


@dataclass(frozen=True)
class GlobalRootStatement:
    """What the cloud signs after every merge: all level roots + global root.

    ``version`` increases with every merge so stale roots can be recognised;
    ``timestamp`` enables the freshness window of Section V-D.
    """

    edge: NodeId
    level_roots: tuple[str, ...]
    global_root: str
    version: int
    timestamp: float

    @property
    def num_indexed_levels(self) -> int:
        """Number of Merkle-tracked levels (levels 1..n of the LSM tree)."""

        return len(self.level_roots)


@dataclass(frozen=True)
class SignedGlobalRoot:
    """A cloud-signed global root statement."""

    statement: GlobalRootStatement
    signature: Signature

    @property
    def wire_size(self) -> int:
        return 96 + 72 * len(self.statement.level_roots)

    def verify(self, registry: KeyRegistry, cloud: Optional[NodeId] = None) -> bool:
        """Check the cloud's signature (and optionally the signer identity)."""

        if cloud is not None and self.signature.signer != cloud:
            return False
        if not registry.verify(self.signature, self.statement):
            return False
        expected = compute_global_root(self.statement.level_roots)
        return expected == self.statement.global_root

    def verify_cached(self, registry: KeyRegistry, cloud: Optional[NodeId] = None) -> bool:
        """Like :meth:`verify`, memoized per signer identity.

        Every get between two merges verifies the same signed root; the
        statement, signature, and registry keys are immutable, so the result
        can be reused within one simulation.  The verdict lives in the
        registry's cache, never on this (edge-relayed) object, so a
        malicious edge cannot attach a forged verdict.
        """

        memo = registry.verdict_memo(self)
        verdict = memo.get(cloud)
        if verdict is None:
            verdict = self.verify(registry, cloud)
            memo[cloud] = verdict
        return verdict


def compute_global_root(level_roots: Sequence[str]) -> str:
    """The global root is the hash chain over all per-level Merkle roots."""

    return digest_chain(level_roots)


def empty_level_root() -> str:
    """Merkle root of a level with no pages."""

    return MerkleTree([]).root


def sign_global_root(
    registry: KeyRegistry,
    cloud: NodeId,
    edge: NodeId,
    level_roots: Sequence[str],
    version: int,
    timestamp: float,
) -> SignedGlobalRoot:
    """Build and sign a global root statement on behalf of the cloud."""

    statement = GlobalRootStatement(
        edge=edge,
        level_roots=tuple(level_roots),
        global_root=compute_global_root(level_roots),
        version=version,
        timestamp=timestamp,
    )
    return SignedGlobalRoot(statement=statement, signature=registry.sign(cloud, statement))


class MerkleizedLSM:
    """An LSM tree whose levels above 0 carry Merkle trees over page digests.

    This class is pure data structure: it does not know about the cloud or
    certification.  The edge node holds one (driven by certified merges), and
    the cloud node holds a digest-level mirror per edge to validate merges.
    """

    def __init__(
        self,
        config: Optional[LSMerkleConfig] = None,
        page_capacity: int = 100,
    ) -> None:
        self.tree = LSMTree(config=config, page_capacity=page_capacity)
        self._level_merkles: dict[int, MerkleTree] = {}
        self._rebuild_all_merkles()

    # ------------------------------------------------------------------
    # Merkle maintenance
    # ------------------------------------------------------------------
    def _rebuild_all_merkles(self) -> None:
        for level in self.tree.levels[1:]:
            self._level_merkles[level.index] = MerkleTree(level.page_digests())

    def _rebuild_level_merkle(self, level_index: int) -> None:
        level = self.tree.levels[level_index]
        existing = self._level_merkles.get(level_index)
        if existing is None:
            self._level_merkles[level_index] = MerkleTree(level.page_digests())
        else:
            # Incremental: only the pages that actually changed are re-hashed.
            existing.update_leaves(level.page_digests())

    def level_merkle(self, level_index: int) -> MerkleTree:
        """The Merkle tree of a level above 0."""

        if level_index <= 0 or level_index >= self.tree.num_levels:
            raise ProofVerificationError(
                f"level {level_index} has no Merkle tree"
            )
        return self._level_merkles[level_index]

    def level_roots(self) -> tuple[str, ...]:
        """Merkle roots of levels 1..n, in level order."""

        return tuple(
            self._level_merkles[level.index].root for level in self.tree.levels[1:]
        )

    def global_root(self) -> str:
        return compute_global_root(self.level_roots())

    def roots_match(self, signed_root: SignedGlobalRoot) -> bool:
        """Whether this index's Merkle-tracked roots equal the signed ones.

        Level 0 is deliberately outside the comparison: the signed root only
        ever covers levels 1..n (level 0 is the uncertified WedgeChain
        buffer), so blocks logged after the root was signed do not disturb
        the match.  Used by crash recovery to check a rebuilt index against
        the last durable :class:`SignedGlobalRoot`.
        """

        return self.level_roots() == signed_root.statement.level_roots

    # ------------------------------------------------------------------
    # Structure updates
    # ------------------------------------------------------------------
    def add_level_zero_page(self, page: Page) -> bool:
        """Append a level-0 page; returns whether a merge is now due."""

        return self.tree.add_level_zero_page(page)

    def apply_merge(self, level_index: int, merged_pages: Sequence[Page]) -> None:
        """Install merge results and refresh the affected Merkle tree."""

        self.tree.apply_merge(level_index, merged_pages)
        self._rebuild_level_merkle(level_index + 1)
        if level_index >= 1:
            self._rebuild_level_merkle(level_index)

    def install_level_pages(self, level_index: int, pages: Sequence[Page]) -> None:
        """Install the full page list of one Merkle-tracked level.

        Used when adopting a shard through the certified handoff protocol:
        the destination edge receives every level's pages from the source
        and installs them wholesale, then verifies the resulting level
        roots against the cloud-countersigned state digest.
        """

        if level_index <= 0 or level_index >= self.tree.num_levels:
            raise ProofVerificationError(
                f"level {level_index} cannot be installed wholesale"
            )
        self.tree.levels[level_index].replace_pages(pages)
        self._rebuild_level_merkle(level_index)

    def install_merge(
        self,
        level_index: int,
        merged_pages: Sequence[Page],
        remaining_source_pages: Sequence[Page] = (),
    ) -> None:
        """Install a cloud-computed merge, keeping unmerged source pages.

        Because certification is lazy, a level-0 merge may cover only the
        *certified* prefix of level 0; pages whose blocks are still awaiting
        certification stay behind (``remaining_source_pages``).
        """

        self.tree.levels[level_index + 1].replace_pages(merged_pages)
        self.tree.levels[level_index].replace_pages(remaining_source_pages)
        self._rebuild_level_merkle(level_index + 1)
        if level_index >= 1:
            self._rebuild_level_merkle(level_index)

    # ------------------------------------------------------------------
    # Proof helpers
    # ------------------------------------------------------------------
    def prove_page(self, level_index: int, page: Page) -> InclusionProof:
        """Inclusion proof of *page* under its level's Merkle root."""

        level = self.tree.levels[level_index]
        digests = level.page_digests()
        try:
            leaf_index = digests.index(page.digest())
        except ValueError as exc:
            raise ProofVerificationError(
                f"page {page.page_id} not present in level {level_index}"
            ) from exc
        return self.level_merkle(level_index).prove(leaf_index)

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return self.tree.num_levels

    def get(self, key: str):
        return self.tree.get(key)

    def levels_needing_merge(self) -> tuple[int, ...]:
        return self.tree.levels_needing_merge()

    def level_page_counts(self) -> tuple[int, ...]:
        return self.tree.level_page_counts()

    def total_records(self) -> int:
        return self.tree.total_records()
