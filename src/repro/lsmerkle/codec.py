"""Encoding of key-value put operations inside WedgeChain log entries.

LSMerkle reuses the logging layer as its level-0 buffer: every ``put`` is a
log entry whose payload encodes the key and value.  Both the edge node and
the clients derive the level-0 *page* for a block deterministically from the
block itself (``page_from_block``), so the digest certified for the block by
the cloud also authenticates the page — exactly the "same block-certify and
block-proof message exchange" described in Section V-B.

Record recency is a global sequence number derived from ``(block id, index
within block)``; later blocks therefore always carry newer versions, and two
records never share a sequence number.
"""

from __future__ import annotations

from typing import Optional

from ..common.errors import SerializationError
from ..log.block import Block
from ..lsm.page import Page, build_page
from ..lsm.records import KVRecord

#: Maximum number of entries per block assumed by the sequence numbering.
SEQUENCE_STRIDE = 1_000_000

_PUT_PREFIX = b"kvput\x00"


def encode_put(key: str, value: bytes) -> bytes:
    """Encode a put operation as a log entry payload."""

    if "\x00" in key:
        raise SerializationError("keys must not contain NUL characters")
    key_bytes = key.encode("utf-8")
    return _PUT_PREFIX + len(key_bytes).to_bytes(4, "big") + key_bytes + value


def is_put_payload(payload: bytes) -> bool:
    """Whether a log entry payload encodes a put operation."""

    return payload.startswith(_PUT_PREFIX)


def decode_put(payload: bytes) -> tuple[str, bytes]:
    """Decode a put payload into ``(key, value)``."""

    if not is_put_payload(payload):
        raise SerializationError("payload does not encode a put operation")
    offset = len(_PUT_PREFIX)
    key_length = int.from_bytes(payload[offset : offset + 4], "big")
    key_start = offset + 4
    key_end = key_start + key_length
    if key_end > len(payload):
        raise SerializationError("truncated put payload")
    key = payload[key_start:key_end].decode("utf-8")
    value = payload[key_end:]
    return key, value


def record_sequence(block_id: int, index_in_block: int) -> int:
    """Global sequence number of the ``index_in_block``-th put of a block."""

    if index_in_block >= SEQUENCE_STRIDE:
        raise SerializationError(
            f"block index {index_in_block} exceeds sequence stride {SEQUENCE_STRIDE}"
        )
    return block_id * SEQUENCE_STRIDE + index_in_block


def records_from_block(block: Block) -> tuple[KVRecord, ...]:
    """Decode every put entry of *block* into key-value records.

    Blocks are immutable and read proofs decode the same level-0 blocks on
    every get, so the decoded records are memoized on the block instance.
    """

    cached = block.__dict__.get("_records_cache")
    if cached is not None:
        return cached
    records: list[KVRecord] = []
    for index, entry in enumerate(block.entries):
        if not is_put_payload(entry.payload):
            continue
        key, value = decode_put(entry.payload)
        records.append(
            KVRecord(
                key=key,
                sequence=record_sequence(block.block_id, index),
                value=value,
                written_at=entry.produced_at,
            )
        )
    result = tuple(records)
    object.__setattr__(block, "_records_cache", result)
    return result


def page_from_block(block: Block) -> Optional[Page]:
    """Derive the level-0 page corresponding to a block of put operations.

    Returns ``None`` when the block contains no put entries (pure logging
    blocks never enter the index).  The derivation is deterministic, so any
    party holding the block can reproduce the page and, transitively, trust
    it through the block's certification.
    """

    records = records_from_block(block)
    if not records:
        return None
    return build_page(
        records,
        created_at=block.created_at,
        source_block_id=block.block_id,
    )
