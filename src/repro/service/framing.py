"""Length-prefixed framing of canonical codec records.

A frame is ``4-byte big-endian length || payload`` where the payload is the
:func:`repro.storage.codec.encode_record` bytes of the envelope
``{"sender": NodeId, "message": <wire message>}``.  The destination is
implied by the socket the frame arrives on (each node owns one server), so
the envelope carries only what the receiver cannot infer.

Decoding reuses the storage codec's strict validating round-trip: a frame
whose payload names an unknown type, fails a constructor's validation, or
is not canonical JSON raises — the live path inherits exactly the
"storage never hands back an object the constructors would refuse"
guarantee, now applied to the network.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Tuple

from ..common.errors import TransportError
from ..common.identifiers import NodeId
from ..storage.codec import decode_record, encode_record

#: Upper bound on a single frame's payload.  Generous — the largest
#: protocol artifacts (shard transfers carrying pages and certified
#: blocks) are far below this — but finite, so a corrupt or hostile
#: length prefix cannot make a reader allocate unboundedly.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(TransportError):
    """A frame violated the length/shape contract (not a clean EOF)."""


def encode_frame(sender: NodeId, message: Any) -> bytes:
    """Frame *message* from *sender* for the wire."""

    payload = encode_record({"sender": sender, "message": message})
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Tuple[NodeId, Any]:
    """Decode a frame payload back into ``(sender, message)``."""

    envelope = decode_record(payload)
    if not isinstance(envelope, dict) or set(envelope) != {"sender", "message"}:
        raise FrameError(f"malformed frame envelope: {type(envelope).__name__}")
    sender = envelope["sender"]
    if not isinstance(sender, NodeId):
        raise FrameError("frame sender is not a NodeId")
    return sender, envelope["message"]


async def read_frame(reader: asyncio.StreamReader) -> Tuple[NodeId, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    A connection that ends mid-frame, or a length prefix above the cap,
    raises :class:`FrameError` — silent truncation never looks like a
    delivered message.
    """

    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-length-prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_payload(payload)
