"""A live WedgeChain fleet: cloud + edges + clients as asyncio tasks.

:class:`LiveFleet` is the wall-clock twin of
:class:`repro.core.system.WedgeChainSystem`: the same wiring (clients
assigned to edges round-robin, gossip targets registered on the cloud, an
``edge_factory`` hook for sharded or adversarial edge variants), but nodes
exchange frames over real sockets and timers fire on real time.

Usage is a start → load → report → clean-shutdown story::

    fleet = LiveFleet(num_edges=2, num_clients=2)
    await fleet.start()
    op = fleet.client(0).put_batch([("k", b"v")])
    await fleet.wait_for(fleet.client(0), op, CommitPhase.PHASE_TWO)
    await fleet.stop()

``async with LiveFleet(...)`` handles start/stop; see
``examples/live_fleet.py`` for the full walk-through with open-loop load.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..common.config import SystemConfig
from ..common.errors import ConfigurationError
from ..common.identifiers import NodeId, OperationId
from ..common.regions import Region
from ..log.proofs import CommitPhase
from ..nodes.client import Client
from ..nodes.cloud import CloudNode
from ..nodes.edge import EdgeNode
from ..sim.parameters import SimulationParameters
from .runtime import LiveEnvironment
from .transport import AsyncioTransport

#: Edge factory signature — same shape as the sim system's, so sharded or
#: malicious variants plug into either substrate unchanged.
LiveEdgeFactory = Callable[[LiveEnvironment, NodeId, SystemConfig, str, Region], EdgeNode]

_POLL_S = 0.002


def _default_edge_factory(
    env: LiveEnvironment,
    cloud: NodeId,
    config: SystemConfig,
    name: str,
    region: Region,
) -> EdgeNode:
    return EdgeNode(env=env, cloud=cloud, config=config, name=name, region=region)


@dataclass
class LiveFleetStats:
    """Counters collected from a live run (same shape as the sim's)."""

    phase_one_commits: int
    phase_two_commits: int
    failed_operations: int
    blocks_formed: int
    certifications: int
    wan_bytes: int
    lan_bytes: int
    frames_sent: int
    frame_bytes_sent: int

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class LiveFleet:
    """A full live deployment with clean start/stop lifecycle."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        num_clients: int = 1,
        num_edges: Optional[int] = None,
        params: Optional[SimulationParameters] = None,
        edge_factory: Optional[LiveEdgeFactory] = None,
        seed: int = 7,
        enable_gossip: bool = False,
        transport_mode: str = "unix",
        socket_dir: Optional[str] = None,
        host: str = "127.0.0.1",
    ) -> None:
        if num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        self.config = config if config is not None else SystemConfig.paper_default()
        if num_edges is not None:
            self.config = self.config.with_overrides(num_edge_nodes=num_edges)
        self._num_clients = num_clients
        self._params = params
        self._edge_factory = (
            edge_factory if edge_factory is not None else _default_edge_factory
        )
        self._seed = seed
        self._enable_gossip = enable_gossip
        self._transport_mode = transport_mode
        self._socket_dir = socket_dir
        self._host = host
        self.env: Optional[LiveEnvironment] = None
        self.cloud: Optional[CloudNode] = None
        self.edges: list[EdgeNode] = []
        self.clients: list[Client] = []
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "LiveFleet":
        """Construct the fleet and bring sockets, workers, and timers up."""

        if self._running:
            return self
        transport = AsyncioTransport(
            mode=self._transport_mode,
            socket_dir=self._socket_dir,
            host=self._host,
        )
        self.env = LiveEnvironment(
            transport=transport,
            params=self._params,
            signature_scheme=self.config.security.signature_scheme,
            seed=self._seed,
        )
        self.cloud = CloudNode(env=self.env, config=self.config, name="cloud-0")
        self.edges = [
            self._edge_factory(
                self.env,
                self.cloud.node_id,
                self.config,
                f"edge-{index}",
                self.config.placement.edge_region,
            )
            for index in range(self.config.num_edge_nodes)
        ]
        self.clients = []
        for index in range(self._num_clients):
            edge = self.edges[index % len(self.edges)]
            client = Client(
                env=self.env,
                edge=edge.node_id,
                cloud=self.cloud.node_id,
                config=self.config,
                name=f"client-{index}",
                region=self.config.placement.client_region,
            )
            self.clients.append(client)
            self.cloud.register_gossip_target(client.node_id)
        await self.env.start()
        if self._enable_gossip:
            self.cloud.start_gossip()
        self._running = True
        return self

    async def stop(self) -> None:
        if self.env is not None:
            await self.env.stop()
        self._running = False

    async def __aenter__(self) -> "LiveFleet":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    def client(self, index: int = 0) -> Client:
        return self.clients[index]

    def edge(self, index: int = 0) -> EdgeNode:
        return self.edges[index]

    # ------------------------------------------------------------------
    # Waiting (wall-clock analogue of the sim's run_until_condition)
    # ------------------------------------------------------------------
    async def await_condition(
        self, condition: Callable[[], bool], timeout_s: float = 30.0
    ) -> bool:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while True:
            if condition():
                return True
            if loop.time() >= deadline:
                return condition()
            await asyncio.sleep(_POLL_S)

    async def wait_for(
        self,
        client: Client,
        operation_id: OperationId,
        phase: CommitPhase = CommitPhase.PHASE_TWO,
        timeout_s: float = 30.0,
    ) -> CommitPhase:
        target = _phase_rank(phase)

        def done() -> bool:
            current = client.tracker.get(operation_id).phase
            return _phase_rank(current) >= target or current is CommitPhase.FAILED

        await self.await_condition(done, timeout_s)
        return client.tracker.get(operation_id).phase

    async def wait_for_all(
        self,
        operations: Iterable[tuple[Client, OperationId]],
        phase: CommitPhase = CommitPhase.PHASE_TWO,
        timeout_s: float = 60.0,
    ) -> bool:
        pairs = list(operations)
        target = _phase_rank(phase)

        def done() -> bool:
            for client, operation_id in pairs:
                current = client.tracker.get(operation_id).phase
                if current is CommitPhase.FAILED:
                    continue
                if _phase_rank(current) < target:
                    return False
            return True

        return await self.await_condition(done, timeout_s)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def trackers(self) -> list:
        return [client.tracker for client in self.clients]

    def stats(self) -> LiveFleetStats:
        transport = self.env.transport
        return LiveFleetStats(
            phase_one_commits=sum(
                tracker.count_in_phase(CommitPhase.PHASE_ONE)
                for tracker in self.trackers()
            ),
            phase_two_commits=sum(
                tracker.count_in_phase(CommitPhase.PHASE_TWO)
                for tracker in self.trackers()
            ),
            failed_operations=sum(
                tracker.count_in_phase(CommitPhase.FAILED)
                for tracker in self.trackers()
            ),
            blocks_formed=sum(edge.stats["blocks_formed"] for edge in self.edges),
            certifications=self.cloud.stats["certifications"],
            wan_bytes=transport.stats.wan_bytes,
            lan_bytes=transport.stats.lan_bytes,
            frames_sent=transport.frames_sent,
            frame_bytes_sent=transport.frame_bytes_sent,
        )


def _phase_rank(phase: CommitPhase) -> int:
    order = {
        CommitPhase.PENDING: 0,
        CommitPhase.FAILED: 0,
        CommitPhase.PHASE_ONE: 1,
        CommitPhase.PHASE_TWO: 2,
    }
    return order[phase]
