"""The wall-clock socket transport behind the ``Transport`` boundary.

Every registered node owns one server socket (unix-domain by default, TCP
optionally).  A send from ``src`` to ``dst`` enqueues a frame on the
``(src, dst)`` link; a writer pump per link keeps one outgoing connection
to the destination's server and writes frames in order, so per-sender-pair
FIFO delivery matches the simulator's single uplink lane.  ``send`` itself
is synchronous — node handlers run inside the event loop and never await —
which is what lets the exact same protocol code drive both substrates.

Semantics mirror :class:`repro.sim.network.SimNetwork` where the boundary
demands it:

* send hooks run in registration order before any bytes move; a veto counts
  a ``dropped_send`` and the send reports ``inf``;
* an offline source emits nothing (``dropped_send``); frames addressed to a
  node that is offline when they *arrive* are counted as
  ``dropped_deliveries`` and discarded — in-flight traffic to a crashed
  node is lost, exactly like the sim;
* :class:`~repro.transport.NetworkStats` records the same modeled
  ``wire_size`` bytes the simulator accounts (so live and sim byte counters
  are comparable); the real framed byte count is kept separately in
  :attr:`AsyncioTransport.frame_bytes_sent`.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..common.errors import TransportError
from ..common.identifiers import NodeId
from ..transport import NetworkEndpoint, NetworkStats, SendHook, message_wire_size
from .framing import FrameError, encode_frame, read_frame

#: How long a writer pump keeps retrying to reach a destination server
#: before declaring the link broken.
_CONNECT_TIMEOUT_S = 5.0
_CONNECT_RETRY_S = 0.02


@dataclass
class _Link:
    """One FIFO outgoing link from a source node to a destination node."""

    queue: asyncio.Queue
    task: Optional[asyncio.Task] = None


class AsyncioTransport:
    """Socket-backed implementation of :class:`repro.transport.Transport`."""

    def __init__(
        self,
        mode: str = "unix",
        socket_dir: Optional[str] = None,
        host: str = "127.0.0.1",
    ) -> None:
        if mode not in ("unix", "tcp"):
            raise TransportError(f"unknown transport mode {mode!r}")
        self._mode = mode
        self._host = host
        self._socket_dir = socket_dir
        self._owns_socket_dir = False
        self._nodes: Dict[NodeId, NetworkEndpoint] = {}
        self._addresses: Dict[NodeId, Any] = {}
        self._servers: Dict[NodeId, asyncio.AbstractServer] = {}
        self._links: Dict[Tuple[NodeId, NodeId], _Link] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._send_hooks: Dict[str, SendHook] = {}
        self._offline: set[NodeId] = set()
        self._started = False
        self._stopping = False
        self.stats = NetworkStats()
        #: Real framed bytes written to sockets (prefix + payload); the
        #: ``stats`` counters carry the modeled ``wire_size`` for parity
        #: with the simulator's accounting.
        self.frames_sent = 0
        self.frame_bytes_sent = 0
        self._obs = None
        self._obs_registry = None

    # ------------------------------------------------------------------
    # Registration and lifecycle
    # ------------------------------------------------------------------
    def register(self, node: NetworkEndpoint) -> None:
        if self._started:
            raise TransportError("register before the transport is started")
        if node.node_id in self._nodes:
            raise TransportError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: NodeId) -> NetworkEndpoint:
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise TransportError(f"unknown node {node_id}") from exc

    def knows(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    async def start(self) -> None:
        """Bind one server per registered node; must run inside the loop."""

        if self._started:
            return
        if self._mode == "unix" and self._socket_dir is None:
            self._socket_dir = tempfile.mkdtemp(prefix="wedge-fleet-")
            self._owns_socket_dir = True
        for index, (node_id, endpoint) in enumerate(self._nodes.items()):
            handler = self._make_connection_handler(endpoint)
            if self._mode == "unix":
                path = os.path.join(self._socket_dir, f"n{index}.sock")
                server = await asyncio.start_unix_server(handler, path=path)
                self._addresses[node_id] = path
            else:
                server = await asyncio.start_server(handler, host=self._host, port=0)
                port = server.sockets[0].getsockname()[1]
                self._addresses[node_id] = (self._host, port)
            self._servers[node_id] = server
        self._started = True

    async def stop(self) -> None:
        """Tear down pumps, servers, and (owned) socket paths."""

        self._stopping = True
        for link in self._links.values():
            if link.task is not None:
                link.task.cancel()
        for link in self._links.values():
            if link.task is not None:
                try:
                    await link.task
                except (asyncio.CancelledError, Exception):
                    pass
        self._links.clear()
        for task in tuple(self._conn_tasks):
            task.cancel()
        for task in tuple(self._conn_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._conn_tasks.clear()
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()
        if self._mode == "unix":
            for address in self._addresses.values():
                try:
                    os.unlink(address)
                except OSError:
                    pass
            if self._owns_socket_dir and self._socket_dir is not None:
                try:
                    os.rmdir(self._socket_dir)
                except OSError:
                    pass
        self._addresses.clear()
        self._started = False
        self._stopping = False

    def address_of(self, node_id: NodeId):
        """The bound socket address of *node_id* (after :meth:`start`)."""

        try:
            return self._addresses[node_id]
        except KeyError as exc:
            raise TransportError(f"no address for {node_id}") from exc

    # ------------------------------------------------------------------
    # Observability (same surface SimNetwork offers the environment)
    # ------------------------------------------------------------------
    def attach_observability(self, obs) -> None:
        self._obs = obs
        self._obs_registry = obs.registry_for("network")

    def _obs_traffic(self, message: Any, size: int, wan: bool) -> None:
        registry = self._obs_registry
        if registry is None:
            return
        link = "wan" if wan else "lan"
        mtype = type(message).__name__
        registry.counter("net_bytes", link=link, type=mtype).inc(size)
        registry.counter("net_messages", link=link, type=mtype).inc()

    # ------------------------------------------------------------------
    # Send hooks and liveness (fault-injection parity with the sim)
    # ------------------------------------------------------------------
    def add_send_hook(self, name: str, hook: SendHook) -> None:
        if not name:
            raise TransportError("send hook name must be non-empty")
        if name in self._send_hooks:
            raise TransportError(f"send hook {name!r} already registered")
        self._send_hooks[name] = hook

    def remove_send_hook(self, name: str) -> None:
        self._send_hooks.pop(name, None)

    def set_offline(self, node_id: NodeId, offline: bool = True) -> None:
        self.node(node_id)
        if offline:
            self._offline.add(node_id)
        else:
            self._offline.discard(node_id)

    def is_offline(self, node_id: NodeId) -> bool:
        return node_id in self._offline

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        src_id: NodeId,
        dst_id: NodeId,
        message: Any,
        depart_at: Optional[float] = None,
    ) -> float:
        """Frame and enqueue *message* on the ``(src, dst)`` link.

        Returns the wall-clock enqueue time as the delivery estimate (the
        real delivery completes asynchronously), or ``inf`` when vetoed.
        ``depart_at`` is accepted for interface parity and ignored — real
        CPU time has already elapsed by the time the handler sends.
        """

        src = self.node(src_id)
        dst = self.node(dst_id)
        if not self._started:
            raise TransportError("transport not started")
        if self._offline and src_id in self._offline:
            self.stats.dropped_sends += 1
            return float("inf")
        if self._send_hooks:
            for hook in tuple(self._send_hooks.values()):
                if not hook(src_id, dst_id, message):
                    self.stats.dropped_sends += 1
                    return float("inf")

        size = message_wire_size(message)
        wan = src.region != dst.region
        self.stats.record(src_id, dst_id, size, wan)
        if self._obs is not None:
            self._obs_traffic(message, size, wan)

        frame = encode_frame(src_id, message)
        link = self._links.get((src_id, dst_id))
        if link is None:
            link = _Link(queue=asyncio.Queue())
            link.task = asyncio.get_running_loop().create_task(
                self._pump(src_id, dst_id, link.queue),
                name=f"pump:{src_id}->{dst_id}",
            )
            self._links[(src_id, dst_id)] = link
        link.queue.put_nowait(frame)
        self.frames_sent += 1
        self.frame_bytes_sent += len(frame)
        return asyncio.get_running_loop().time()

    async def _connect(self, dst_id: NodeId):
        address = self.address_of(dst_id)
        deadline = asyncio.get_running_loop().time() + _CONNECT_TIMEOUT_S
        while True:
            try:
                if self._mode == "unix":
                    return await asyncio.open_unix_connection(path=address)
                return await asyncio.open_connection(
                    host=address[0], port=address[1]
                )
            except OSError:
                if (
                    self._stopping
                    or asyncio.get_running_loop().time() >= deadline
                ):
                    raise
                await asyncio.sleep(_CONNECT_RETRY_S)

    async def _pump(
        self, src_id: NodeId, dst_id: NodeId, queue: asyncio.Queue
    ) -> None:
        """Write queued frames to the destination's server, in order."""

        writer = None
        try:
            _, writer = await self._connect(dst_id)
            while True:
                frame = await queue.get()
                writer.write(frame)
                await writer.drain()
        except (asyncio.CancelledError, OSError, ConnectionError):
            pass
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):
                    pass

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _make_connection_handler(self, endpoint: NetworkEndpoint):
        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            task = asyncio.current_task()
            self._conn_tasks.add(task)
            try:
                while True:
                    decoded = await read_frame(reader)
                    if decoded is None:
                        break
                    sender, message = decoded
                    if endpoint.node_id in self._offline:
                        # The destination crashed while this was in flight.
                        self.stats.dropped_deliveries += 1
                        continue
                    endpoint.deliver(sender, message)
            except (FrameError, asyncio.CancelledError, ConnectionError):
                pass
            finally:
                self._conn_tasks.discard(task)
                writer.close()

        return handle
