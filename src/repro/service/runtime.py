"""The wall-clock :class:`~repro.transport.NodeRuntime` implementation.

:class:`LiveEnvironment` exposes the exact environment surface node code is
written against (``send`` / ``schedule`` / ``schedule_periodic`` / ``now`` /
``charge`` / ``attach`` / ``ensure_observability`` / ``registry`` /
``params`` / ``obs``) on top of a running asyncio event loop:

* time is an :class:`~repro.sim.clock.AnchoredWallClock` — real seconds,
  re-based to zero at construction so lease expiries, dispute deadlines and
  gossip ages keep their seconds-since-start semantics;
* ``charge`` validates and discards — live handlers pay real CPU;
* timers are ``loop.call_later`` behind handles with the same ``cancel()``
  surface as the simulator's :class:`~repro.sim.events.EventHandle`.
  Timers scheduled before :meth:`LiveEnvironment.start` (nodes arm some in
  their constructors) are buffered and armed at start;
* each attached node gets a FIFO inbox drained by one worker task, which
  reproduces the simulator's single-server handling model: one message
  handler at a time per node, in arrival order.

Trace-context sidecars do not cross real sockets (by design the wire bytes
carry no trace state), so live traces are per-node; metrics and counters
work identically to the sim.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..common.errors import SimulationError, TransportError
from ..common.identifiers import NodeId
from ..crypto.signatures import KeyRegistry
from ..sim.clock import AnchoredWallClock
from ..sim.environment import EnvironmentNode
from ..sim.parameters import SimulationParameters
from ..sim.rng import DeterministicRng
from .transport import AsyncioTransport


class LiveTimerHandle:
    """Cancellable timer with the :class:`~repro.sim.events.EventHandle` surface."""

    def __init__(self, env: "LiveEnvironment", when: float, label: str) -> None:
        self._env = env
        self._when = when
        self._label = label
        self._cancelled = False
        self._loop_handle: Optional[asyncio.TimerHandle] = None

    @property
    def time(self) -> float:
        return self._when

    @property
    def label(self) -> str:
        return self._label

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        if self._loop_handle is not None:
            self._loop_handle.cancel()
        self._env._timers.discard(self)


class _LiveNodeAdapter:
    """Endpoint adapter inserting the per-node FIFO inbox before handling."""

    def __init__(self, env: "LiveEnvironment", node: EnvironmentNode) -> None:
        self._env = env
        self.node = node
        self.node_id = node.node_id
        self.region = node.region
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.worker: Optional[asyncio.Task] = None

    def deliver(self, sender: NodeId, message: Any) -> None:
        self.inbox.put_nowait((sender, message))

    def start_worker(self) -> None:
        if self.worker is None:
            self.worker = asyncio.get_running_loop().create_task(
                self._drain(), name=f"node:{self.node_id}"
            )

    async def _drain(self) -> None:
        while True:
            sender, message = await self.inbox.get()
            try:
                self.node.on_message(sender, message)
            except Exception as exc:
                # A handler crash must be loud, not a silently-dead worker:
                # record it for the harness and keep serving so the rest of
                # the fleet can make progress (mirrors a real service where
                # one bad request does not kill the process).
                self._env.failures.append((self.node_id, exc))


class LiveEnvironment:
    """Wall-clock runtime: transport + key registry + timers, in one place."""

    def __init__(
        self,
        transport: Optional[AsyncioTransport] = None,
        params: Optional[SimulationParameters] = None,
        signature_scheme: str = "hmac",
        seed: int = 7,
    ) -> None:
        self.params = params if params is not None else SimulationParameters()
        self.clock = AnchoredWallClock()
        self.transport = transport if transport is not None else AsyncioTransport()
        #: Alias so code written against ``env.network.stats`` keeps working.
        self.network = self.transport
        self.registry = KeyRegistry(signature_scheme)
        self.rng = DeterministicRng(seed)
        self.obs = None
        #: ``(node_id, exception)`` pairs from crashed handlers; timer
        #: callbacks record ``(None, exception)``.
        self.failures: List[Tuple[Optional[NodeId], Exception]] = []
        self._adapters: Dict[NodeId, _LiveNodeAdapter] = {}
        self._pending_timers: List[Tuple[float, Callable[[], None], LiveTimerHandle]] = []
        self._timers: set[LiveTimerHandle] = set()
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Node management (NodeRuntime surface)
    # ------------------------------------------------------------------
    def attach(self, node: EnvironmentNode) -> None:
        adapter = _LiveNodeAdapter(self, node)
        self.transport.register(adapter)
        self._adapters[node.node_id] = adapter
        self.registry.register(node.node_id)
        if self._started:
            adapter.start_worker()

    def ensure_observability(self, config) -> Optional[Any]:
        if config is None or not config.enabled:
            return None
        if self.obs is None:
            from ..obs import Observability

            self.obs = Observability(config, clock=self.now)
            self.transport.attach_observability(self.obs)
        return self.obs

    def node(self, node_id: NodeId) -> EnvironmentNode:
        try:
            return self._adapters[node_id].node
        except KeyError as exc:
            raise TransportError(f"unknown node {node_id}") from exc

    def node_ids(self) -> tuple:
        return tuple(self._adapters)

    # ------------------------------------------------------------------
    # Time and CPU
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.clock.now()

    def charge(self, seconds: float) -> None:
        """Validate and discard: live handlers pay real CPU time."""

        if seconds < 0:
            raise SimulationError("cannot charge negative CPU time")

    # ------------------------------------------------------------------
    # Communication and timers
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, message: Any) -> float:
        return self.transport.send(src, dst, message)

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> LiveTimerHandle:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        handle = LiveTimerHandle(self, self.now() + delay, label)
        if self._stopped:
            handle.cancel()
            return handle
        if not self._started:
            self._pending_timers.append((delay, callback, handle))
            return handle
        self._arm(delay, callback, handle)
        return handle

    def _arm(
        self, delay: float, callback: Callable[[], None], handle: LiveTimerHandle
    ) -> None:
        def fire() -> None:
            self._timers.discard(handle)
            if handle.cancelled or self._stopped:
                return
            try:
                callback()
            except Exception as exc:
                self.failures.append((None, exc))

        self._timers.add(handle)
        handle._loop_handle = asyncio.get_running_loop().call_later(delay, fire)

    def schedule_periodic(
        self, interval: float, callback: Callable[[], None], label: str = ""
    ) -> Callable[[], None]:
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        stopped = {"value": False}

        def tick() -> None:
            if stopped["value"] or self._stopped:
                return
            callback()
            self.schedule(interval, tick, label)

        self.schedule(interval, tick, label)

        def stop() -> None:
            stopped["value"] = True

        return stop

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the transport, start node workers, arm buffered timers."""

        if self._started:
            return
        await self.transport.start()
        self._started = True
        for adapter in self._adapters.values():
            adapter.start_worker()
        pending, self._pending_timers = self._pending_timers, []
        for delay, callback, handle in pending:
            if not handle.cancelled:
                self._arm(delay, callback, handle)

    async def stop(self) -> None:
        """Cancel timers and workers, then tear the transport down."""

        self._stopped = True
        for handle in tuple(self._timers):
            handle.cancel()
        workers = [
            adapter.worker
            for adapter in self._adapters.values()
            if adapter.worker is not None
        ]
        for worker in workers:
            worker.cancel()
        for worker in workers:
            try:
                await worker
            except (asyncio.CancelledError, Exception):
                pass
        await self.transport.stop()

    async def drain_inboxes(self, timeout_s: float = 5.0) -> bool:
        """Wait until every node inbox is empty (best-effort quiescence)."""

        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while loop.time() < deadline:
            if all(adapter.inbox.empty() for adapter in self._adapters.values()):
                return True
            await asyncio.sleep(0.001)
        return False
