"""Wall-clock asyncio service harness.

The second implementation of the :class:`repro.transport.Transport`
boundary: the same node code that runs under the discrete-event simulator
runs here as asyncio tasks, exchanging the same canonical-encoded protocol
messages as length-prefixed frames over real TCP or unix-domain sockets.
Nothing new is signed or encoded — the wire format *is* the
:mod:`repro.storage.codec` record format, so every receipt, certificate,
and proof produced live verifies exactly as its simulated twin does.

Layers:

* :mod:`repro.service.framing` — length-prefixed frames around codec records;
* :mod:`repro.service.transport` — :class:`AsyncioTransport`, sockets +
  per-link FIFO writer pumps behind the ``Transport`` protocol;
* :mod:`repro.service.runtime` — :class:`LiveEnvironment`, the wall-clock
  :class:`repro.transport.NodeRuntime` (timers on the event loop, per-node
  FIFO inboxes reproducing the simulator's single-server handling);
* :mod:`repro.service.harness` — :class:`LiveFleet`, cloud + edges +
  clients wired like :class:`repro.core.system.WedgeChainSystem` but live.
"""

from .framing import FrameError, MAX_FRAME_BYTES, encode_frame, read_frame
from .harness import LiveFleet, LiveFleetStats
from .runtime import LiveEnvironment, LiveTimerHandle
from .transport import AsyncioTransport

__all__ = [
    "AsyncioTransport",
    "FrameError",
    "LiveEnvironment",
    "LiveFleet",
    "LiveFleetStats",
    "LiveTimerHandle",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_frame",
]
