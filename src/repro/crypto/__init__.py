"""Cryptographic substrate: hashing, signatures, key registry, envelopes."""

from .envelopes import Envelope, SignedChannel, seal_envelope, verify_envelope
from .hashing import (
    DIGEST_HEX_LENGTH,
    EMPTY_DIGEST,
    digest_chain,
    digest_leaf,
    digest_pair,
    digest_value,
    is_hex_digest,
    sha256_hex,
)
from .signatures import (
    BatchRootStatement,
    HmacSignatureScheme,
    KeyPair,
    KeyRegistry,
    SchnorrSignatureScheme,
    Signature,
    SignatureScheme,
    batch_item_leaf,
    batch_leaves,
    get_scheme,
    sign_batch_root,
    verify_batch_root,
)

__all__ = [
    "BatchRootStatement",
    "DIGEST_HEX_LENGTH",
    "EMPTY_DIGEST",
    "Envelope",
    "HmacSignatureScheme",
    "KeyPair",
    "KeyRegistry",
    "SchnorrSignatureScheme",
    "Signature",
    "SignatureScheme",
    "SignedChannel",
    "batch_item_leaf",
    "batch_leaves",
    "sign_batch_root",
    "verify_batch_root",
    "digest_chain",
    "digest_leaf",
    "digest_pair",
    "digest_value",
    "get_scheme",
    "is_hex_digest",
    "seal_envelope",
    "sha256_hex",
    "verify_envelope",
]
