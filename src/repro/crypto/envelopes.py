"""Signed envelopes: the unit of communication between WedgeChain nodes.

"All message exchanges are signed by the sender" (Section IV-A).  An
:class:`Envelope` carries an arbitrary payload message, the sender identity,
and the sender's signature over the payload.  Receivers call
:func:`verify_envelope` (or :meth:`SignedChannel.open`) before acting on the
payload; forged or tampered envelopes raise
:class:`~repro.common.errors.InvalidMessageError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..common.errors import InvalidMessageError, SignatureError, UnknownSignerError
from ..common.identifiers import NodeId
from .signatures import KeyRegistry, Signature


@dataclass(frozen=True)
class Envelope:
    """A signed payload travelling from ``sender`` to some destination."""

    sender: NodeId
    payload: Any
    signature: Signature

    def __post_init__(self) -> None:
        if self.signature.signer != self.sender:
            raise InvalidMessageError(
                f"envelope sender {self.sender} does not match signer "
                f"{self.signature.signer}"
            )


def seal_envelope(registry: KeyRegistry, sender: NodeId, payload: Any) -> Envelope:
    """Sign *payload* as *sender* and wrap it in an :class:`Envelope`."""

    signature = registry.sign(sender, payload)
    return Envelope(sender=sender, payload=payload, signature=signature)


def verify_envelope(registry: KeyRegistry, envelope: Envelope) -> Any:
    """Verify an envelope and return its payload.

    Raises
    ------
    InvalidMessageError
        If the signature does not verify or the signer is unknown.
    """

    try:
        valid = registry.verify(envelope.signature, envelope.payload)
    except (SignatureError, UnknownSignerError) as exc:
        raise InvalidMessageError(str(exc)) from exc
    if not valid:
        raise InvalidMessageError(
            f"envelope from {envelope.sender} failed signature verification"
        )
    return envelope.payload


class SignedChannel:
    """Convenience wrapper binding a registry and a local identity.

    Each node owns a :class:`SignedChannel`; it seals outgoing payloads with
    the node's key and opens (verifies) incoming envelopes.
    """

    def __init__(self, registry: KeyRegistry, me: NodeId) -> None:
        self._registry = registry
        self._me = me
        registry.register(me)

    @property
    def identity(self) -> NodeId:
        return self._me

    @property
    def registry(self) -> KeyRegistry:
        return self._registry

    def seal(self, payload: Any) -> Envelope:
        """Sign *payload* with this node's key."""

        return seal_envelope(self._registry, self._me, payload)

    def open(self, envelope: Envelope) -> Any:
        """Verify an incoming envelope and return its payload."""

        return verify_envelope(self._registry, envelope)

    def sign_value(self, value: Any) -> Signature:
        """Produce a detached signature over *value* (used for receipts)."""

        return self._registry.sign(self._me, value)

    def verify_value(self, signature: Signature, value: Any) -> bool:
        """Verify a detached signature produced by any registered node."""

        try:
            return self._registry.verify(signature, value)
        except (SignatureError, UnknownSignerError):
            return False
