"""Hashing helpers used for block digests and Merkle trees.

The paper's data-free certification relies on a one-way hash: if all clients
agree on the digest of a block, they agree on its content (Section IV-B).
Everything in this module is a thin, well-named wrapper around SHA-256 so the
rest of the code base never touches :mod:`hashlib` directly and all digests go
through the canonical encoder.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

from ..common.encoding import canonical_encode

#: Length of a hex digest produced by this module.
DIGEST_HEX_LENGTH = 64

#: Digest of the empty byte string; used as the root of empty Merkle trees.
EMPTY_DIGEST = hashlib.sha256(b"").hexdigest()


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of *data* as a lowercase hex string."""

    return hashlib.sha256(data).hexdigest()


def digest_value(value: Any) -> str:
    """Digest an arbitrary protocol value via the canonical encoding."""

    return sha256_hex(canonical_encode(value))


def digest_pair(left: str, right: str) -> str:
    """Digest two child digests into a parent digest (Merkle interior node).

    A domain-separation prefix distinguishes interior nodes from leaves so a
    leaf value can never be confused with an interior combination.
    """

    return sha256_hex(b"node:" + left.encode("ascii") + b"|" + right.encode("ascii"))


def digest_leaf(data: bytes) -> str:
    """Digest raw leaf bytes with leaf domain separation."""

    return sha256_hex(b"leaf:" + data)


def digest_chain(digests: Iterable[str]) -> str:
    """Fold an ordered sequence of digests into one digest.

    Used for the LSMerkle *global root*, which is "the hash of all Merkle
    roots" (Section V-B).
    """

    hasher = hashlib.sha256(b"chain:")
    for digest in digests:
        hasher.update(digest.encode("ascii"))
        hasher.update(b"|")
    return hasher.hexdigest()


#: Exactly the characters a digest produced by this module may contain
#: (``int(value, 16)`` would also accept ``0x`` prefixes, sign characters,
#: underscores, and surrounding whitespace — none of which appear in a
#: ``hexdigest()``).
_HEX_DIGEST_CHARS = frozenset("0123456789abcdefABCDEF")


def is_hex_digest(value: str) -> bool:
    """Return ``True`` if *value* looks like a digest produced here."""

    if not isinstance(value, str) or len(value) != DIGEST_HEX_LENGTH:
        return False
    return all(char in _HEX_DIGEST_CHARS for char in value)
